//! Property tests for the zero-allocation frontier pipeline: across random
//! graphs, thread counts, and Δ choices, the scan-compaction lazy and eager
//! paths must produce distances identical to `serial::dijkstra`.
//!
//! Graph sizes are chosen so both pipeline regimes are exercised: small
//! frontiers take the inline serial rounds, while the large-Δ R-MAT cases
//! push whole-graph frontiers through the parallel per-worker-buffer merge
//! (the `filter_map_compact_into` path with its 4096-item cutoff).

use priograph::algorithms::serial::{dijkstra, kcore_serial};
use priograph::algorithms::{kcore, sssp, wbfs};
use priograph::core::schedule::Schedule;
use priograph::graph::gen::GraphGen;
use priograph::parallel::Pool;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn lazy_sssp_matches_dijkstra_on_random_social_graphs(
        seed in 0u64..1_000,
        scale in 6u32..10,
        edge_factor in 4u32..10,
        threads in 1usize..=4,
        delta_exp in 0u32..8,
    ) {
        let graph = GraphGen::rmat(scale, edge_factor)
            .seed(seed)
            .weights_uniform(1, 1000)
            .build();
        let reference = dijkstra(&graph, 0);
        let pool = Pool::new(threads);
        let lazy = sssp::delta_stepping_on(&pool, &graph, 0, &Schedule::lazy(1i64 << delta_exp))
            .unwrap()
            .dist;
        prop_assert_eq!(lazy, reference);
    }

    #[test]
    fn eager_sssp_matches_dijkstra_on_random_social_graphs(
        seed in 0u64..1_000,
        scale in 6u32..10,
        edge_factor in 4u32..10,
        threads in 1usize..=4,
        delta_exp in 0u32..8,
        fusion in proptest::bool::ANY,
    ) {
        let graph = GraphGen::rmat(scale, edge_factor)
            .seed(seed)
            .weights_uniform(1, 1000)
            .build();
        let reference = dijkstra(&graph, 0);
        let pool = Pool::new(threads);
        let schedule = if fusion {
            Schedule::eager_with_fusion(1i64 << delta_exp)
        } else {
            Schedule::eager(1i64 << delta_exp)
        };
        let eager = sssp::delta_stepping_on(&pool, &graph, 0, &schedule)
            .unwrap()
            .dist;
        prop_assert_eq!(eager, reference);
    }

    #[test]
    fn both_engines_match_dijkstra_on_random_road_grids(
        seed in 0u64..1_000,
        side in 8usize..28,
        threads in 1usize..=4,
        delta_exp in 4u32..14,
    ) {
        let graph = GraphGen::road_grid(side, side).seed(seed).build();
        let reference = dijkstra(&graph, 0);
        let pool = Pool::new(threads);
        let delta = 1i64 << delta_exp;
        let lazy = sssp::delta_stepping_on(&pool, &graph, 0, &Schedule::lazy(delta))
            .unwrap()
            .dist;
        prop_assert_eq!(&lazy, &reference);
        let eager =
            sssp::delta_stepping_on(&pool, &graph, 0, &Schedule::eager_with_fusion(delta))
                .unwrap()
                .dist;
        prop_assert_eq!(&eager, &reference);
    }

    #[test]
    fn parallel_compaction_regime_matches_dijkstra(
        seed in 0u64..1_000,
        threads in 2usize..=4,
    ) {
        // Scale-12 R-MAT with a huge Δ: the whole reachable set churns
        // through one bucket, so round frontiers exceed the 4096-item
        // parallel cutoff and every merge takes the per-worker-buffer path.
        let graph = GraphGen::rmat(12, 8)
            .seed(seed)
            .weights_uniform(1, 100)
            .build();
        let reference = dijkstra(&graph, 0);
        let pool = Pool::new(threads);
        let lazy = sssp::delta_stepping_on(&pool, &graph, 0, &Schedule::lazy(1 << 20))
            .unwrap()
            .dist;
        prop_assert_eq!(&lazy, &reference);
        let wbfs_run = wbfs::wbfs_on(&pool, &graph, 0, &Schedule::lazy(1)).unwrap().dist;
        prop_assert_eq!(&wbfs_run, &reference);
    }

    #[test]
    fn kcore_constant_sum_matches_serial_across_threads(
        seed in 0u64..1_000,
        scale in 6u32..9,
        threads in 1usize..=4,
    ) {
        let graph = GraphGen::rmat(scale, 6).seed(seed).build().symmetrize();
        let reference = kcore_serial(&graph);
        let pool = Pool::new(threads);
        let coreness = kcore::kcore_on(&pool, &graph, &Schedule::lazy_constant_sum())
            .unwrap()
            .coreness;
        prop_assert_eq!(coreness, reference);
    }
}
