//! Integration tests asserting the paper's *qualitative* results — the
//! shapes that must hold at any scale (the quantitative tables live in the
//! bench binaries and `EXPERIMENTS.md`).

use priograph::algorithms::{kcore, ppsp, sssp};
use priograph::core::schedule::Schedule;
use priograph::graph::gen::GraphGen;
use priograph::parallel::Pool;

/// §3.3 / Table 6: bucket fusion slashes synchronized rounds on
/// high-diameter graphs without changing results.
#[test]
fn fusion_cuts_rounds_on_road_networks() {
    let pool = Pool::new(2);
    let road = GraphGen::road_grid(60, 60).seed(1).build();
    let delta = 1 << 11;
    let fused =
        sssp::delta_stepping_on(&pool, &road, 0, &Schedule::eager_with_fusion(delta)).unwrap();
    let plain = sssp::delta_stepping_on(&pool, &road, 0, &Schedule::eager(delta)).unwrap();
    assert_eq!(fused.dist, plain.dist);
    assert!(
        fused.stats.rounds * 3 < plain.stats.rounds,
        "expected >=3x round reduction: {} vs {}",
        fused.stats.rounds,
        plain.stats.rounds
    );
}

/// Table 7: the eager strategy performs strictly more bucket insertions on
/// k-core than the histogram-reduced lazy strategy.
#[test]
fn eager_kcore_inserts_exceed_lazy() {
    let pool = Pool::new(2);
    let graph = GraphGen::rmat(10, 8).seed(3).build().symmetrize();
    let eager = kcore::kcore_on(&pool, &graph, &Schedule::eager(1)).unwrap();
    let lazy = kcore::kcore_on(&pool, &graph, &Schedule::lazy_constant_sum()).unwrap();
    assert_eq!(eager.coreness, lazy.coreness);
    assert!(
        eager.stats.bucket_inserts > lazy.stats.bucket_inserts,
        "eager {} vs lazy {}",
        eager.stats.bucket_inserts,
        lazy.stats.bucket_inserts
    );
}

/// §6.2: PPSP terminates early and does a fraction of full-SSSP work for
/// nearby targets.
#[test]
fn ppsp_early_termination_saves_work() {
    let pool = Pool::new(2);
    let road = GraphGen::road_grid(50, 50).seed(5).build();
    let near_target = road.out_edges(0)[0].dst;
    let schedule = Schedule::eager_with_fusion(1 << 10);
    let point = ppsp::ppsp_on(&pool, &road, 0, near_target, &schedule).unwrap();
    let full = sssp::delta_stepping_on(&pool, &road, 0, &schedule).unwrap();
    assert_eq!(point.distance, Some(full.dist[near_target as usize]));
    assert!(point.stats.relaxations * 2 < full.stats.relaxations);
}

/// §6.2 delta selection: road networks need large Δ (rounds explode with
/// Δ = 1), social networks tolerate small Δ.
#[test]
fn road_networks_need_coarsening() {
    let pool = Pool::new(2);
    let road = GraphGen::road_grid(40, 40).seed(7).build();
    let fine = sssp::delta_stepping_on(&pool, &road, 0, &Schedule::eager_with_fusion(1)).unwrap();
    let coarse =
        sssp::delta_stepping_on(&pool, &road, 0, &Schedule::eager_with_fusion(1 << 12)).unwrap();
    assert_eq!(fine.dist, coarse.dist);
    assert!(
        coarse.stats.total_rounds() * 4 < fine.stats.total_rounds(),
        "coarse {} vs fine {}",
        coarse.stats.total_rounds(),
        fine.stats.total_rounds()
    );
}

/// The six algorithms all run through the public facade re-exports.
#[test]
fn facade_reexports_cover_the_api() {
    let pool = Pool::new(1);
    let g = GraphGen::rmat(7, 6).seed(1).weights_uniform(1, 50).build();
    let sym = g.symmetrize();
    let road = GraphGen::road_grid(8, 8).seed(1).build();

    assert!(sssp::delta_stepping_on(&pool, &g, 0, &Schedule::default()).is_ok());
    assert!(priograph::algorithms::wbfs::wbfs_on(&pool, &g, 0, &Schedule::default()).is_ok());
    assert!(ppsp::ppsp_on(&pool, &g, 0, 5, &Schedule::default()).is_ok());
    let h = priograph::algorithms::astar::euclidean_heuristic(&road, 10, 100.0).unwrap();
    assert!(
        priograph::algorithms::astar::astar_on(&pool, &road, 0, 10, &Schedule::default(), &h)
            .is_ok()
    );
    assert!(kcore::kcore_on(&pool, &sym, &Schedule::lazy_constant_sum()).is_ok());
    let inst = priograph::algorithms::setcover::SetCoverInstance::new(3, vec![vec![0, 1], vec![2]]);
    assert!(
        priograph::algorithms::setcover::set_cover_on(&pool, &inst, &Schedule::lazy(1)).is_ok()
    );
}
