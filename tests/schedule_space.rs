//! Property-based integration tests: random graphs × random schedules must
//! always produce reference-correct results (the "schedules never change
//! semantics" guarantee of the scheduling-language design).

use priograph::algorithms::serial::dijkstra;
use priograph::algorithms::sssp;
use priograph::algorithms::validate::validate_sssp;
use priograph::autotune::ScheduleSpace;
use priograph::graph::gen::GraphGen;
use priograph::parallel::Pool;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_schedules_preserve_sssp_semantics(
        graph_seed in 0u64..500,
        schedule_seed in 0u64..500,
        road in proptest::bool::ANY,
    ) {
        let pool = Pool::new(2);
        let graph = if road {
            GraphGen::road_grid(12, 12).seed(graph_seed).build()
        } else {
            GraphGen::rmat(7, 6).seed(graph_seed).weights_uniform(1, 200).build()
        };
        let mut rng = StdRng::seed_from_u64(schedule_seed);
        let schedule = ScheduleSpace::sssp_like().sample(&mut rng);
        let run = sssp::delta_stepping_on(&pool, &graph, 0, &schedule).unwrap();
        prop_assert_eq!(&run.dist, &dijkstra(&graph, 0));
        prop_assert!(validate_sssp(&graph, 0, &run.dist).is_ok());
    }

    #[test]
    fn random_weighted_graphs_roundtrip_through_io(
        seed in 0u64..1000,
        n in 2usize..60,
        m in 1usize..200,
    ) {
        let graph = GraphGen::uniform(n, m).seed(seed).weights_uniform(1, 50).build();
        let text = priograph::graph::io::to_dimacs_gr(&graph);
        let back = priograph::graph::io::parse_dimacs_gr(&text).unwrap();
        prop_assert_eq!(graph.edge_triples(), back.edge_triples());
    }

    #[test]
    fn coreness_is_valid_on_random_graphs(seed in 0u64..300) {
        let pool = Pool::new(2);
        let graph = GraphGen::uniform(50, 300).seed(seed).build().symmetrize();
        let run = priograph::algorithms::kcore::kcore_on(
            &pool,
            &graph,
            &priograph::core::schedule::Schedule::lazy_constant_sum(),
        )
        .unwrap();
        prop_assert!(
            priograph::algorithms::validate::validate_coreness(&graph, &run.coreness).is_ok()
        );
    }
}
