//! Cross-crate integration tests: every engine, every baseline, and the
//! compiled-DSL path must agree on results across graph families.

use priograph::algorithms::serial::{dijkstra, kcore_serial};
use priograph::algorithms::{kcore, sssp, unordered};
use priograph::baselines::{galois, gapbs, julienne, ligra};
use priograph::core::schedule::Schedule;
use priograph::graph::gen::GraphGen;
use priograph::parallel::Pool;

#[test]
fn all_sssp_implementations_agree() {
    let pool = Pool::new(2);
    for (name, graph, delta) in [
        (
            "social",
            GraphGen::rmat(10, 8)
                .seed(2)
                .weights_uniform(1, 1000)
                .build(),
            32i64,
        ),
        ("road", GraphGen::road_grid(40, 40).seed(2).build(), 1 << 10),
    ] {
        let reference = dijkstra(&graph, 0);
        let runs: Vec<(&str, Vec<i64>)> = vec![
            (
                "eager_fusion",
                sssp::delta_stepping_on(&pool, &graph, 0, &Schedule::eager_with_fusion(delta))
                    .unwrap()
                    .dist,
            ),
            (
                "eager",
                sssp::delta_stepping_on(&pool, &graph, 0, &Schedule::eager(delta))
                    .unwrap()
                    .dist,
            ),
            (
                "lazy",
                sssp::delta_stepping_on(&pool, &graph, 0, &Schedule::lazy(delta))
                    .unwrap()
                    .dist,
            ),
            ("gapbs", gapbs::sssp(&pool, &graph, 0, delta).dist),
            ("julienne", julienne::sssp(&pool, &graph, 0, delta).dist),
            ("galois", galois::sssp(&pool, &graph, 0, delta).dist),
            (
                "bellman_ford",
                unordered::bellman_ford_on(&pool, &graph, 0).unwrap().dist,
            ),
            ("ligra", ligra::bellman_ford(&pool, &graph, 0).dist),
        ];
        for (impl_name, dist) in runs {
            assert_eq!(dist, reference, "{impl_name} deviates on {name}");
        }
    }
}

#[test]
fn all_kcore_implementations_agree() {
    let pool = Pool::new(2);
    let graph = GraphGen::rmat(9, 8).seed(4).build().symmetrize();
    let reference = kcore_serial(&graph);
    for schedule in [
        Schedule::lazy_constant_sum(),
        Schedule::lazy(1),
        Schedule::eager(1),
        Schedule::eager_with_fusion(1),
    ] {
        let run = kcore::kcore_on(&pool, &graph, &schedule).unwrap();
        assert_eq!(run.coreness, reference, "schedule {schedule}");
    }
    assert_eq!(julienne::kcore(&pool, &graph).dist, reference);
    assert_eq!(
        unordered::kcore_unordered_on(&pool, &graph)
            .unwrap()
            .coreness,
        reference
    );
}

#[test]
fn compiled_dsl_path_matches_library_path() {
    use priograph::core::ir::{interp, programs};
    let pool = Pool::new(2);
    let graph = GraphGen::rmat(9, 8).seed(6).weights_uniform(1, 100).build();
    let mut initial = vec![priograph::buckets::NULL_PRIORITY; graph.num_vertices()];
    initial[0] = 0;
    let (_, compiled) = interp::run_program(
        &pool,
        &graph,
        &programs::delta_stepping(),
        &Schedule::eager_with_fusion(16),
        initial,
        &[0],
        None,
    )
    .unwrap();
    assert_eq!(compiled.priorities, dijkstra(&graph, 0));
}
