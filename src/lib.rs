//! # priograph
//!
//! A Rust reproduction of **"Optimizing Ordered Graph Algorithms with
//! GraphIt"** (Zhang et al., CGO 2020): a priority-based programming model
//! for parallel *ordered* graph algorithms, with switchable eager/lazy
//! bucketing schedules and the bucket-fusion optimization.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`parallel`] — OpenMP-style thread pool, barriers, scans, atomics.
//! * [`graph`] — CSR graphs, generators (R-MAT social, grid road), IO.
//! * [`buckets`] — lazy (Julienne-style) and eager (GAPBS-style) bucket
//!   structures, update buffers, dedup flags, histogramming.
//! * [`core`] — the paper's contribution: the `PriorityQueue` algorithm API
//!   (Table 1), the scheduling language (Table 2), the execution engines
//!   (lazy sparse/dense, eager, eager + bucket fusion), and the mini-DSL
//!   compiler pipeline (analyses, transforms, pseudo-C++ codegen).
//! * [`algorithms`] — SSSP (Δ-stepping), wBFS, PPSP, A\*, k-core, SetCover,
//!   plus unordered baselines and serial references.
//! * [`baselines`] — GAPBS-, Julienne-, Galois- and Ligra-style comparison
//!   engines.
//! * [`autotune`] — stochastic schedule autotuner.
//! * [`serve`] — the serving layer: binary graph snapshots
//!   ([`graph::snapshot`]), a length-prefixed TCP wire protocol, and a
//!   dispatcher that batches concurrent queries across the worker pool
//!   (`priograph-server` / `priograph-client` binaries).
//!
//! ## Quickstart
//!
//! ```
//! use priograph::graph::gen::GraphGen;
//! use priograph::core::schedule::Schedule;
//! use priograph::algorithms::sssp;
//!
//! // A small power-law graph with weights in [1, 1000).
//! let graph = GraphGen::rmat(10, 8).seed(1).weights_uniform(1, 1000).build();
//! let result = sssp::delta_stepping(&graph, 0, &Schedule::eager_with_fusion(8));
//! assert_eq!(result.dist[0], 0);
//! ```

#![forbid(unsafe_code)]

pub use priograph_algorithms as algorithms;
pub use priograph_autotune as autotune;
pub use priograph_baselines as baselines;
pub use priograph_buckets as buckets;
pub use priograph_core as core;
pub use priograph_graph as graph;
pub use priograph_parallel as parallel;
pub use priograph_serve as serve;
