//! Approximate set cover via the Table-1 priority-queue facade — an ordered
//! algorithm whose main loop does more than `applyUpdatePriority`
//! (paper §6.1).
//!
//! Run with `cargo run --release --example set_cover`.

use priograph::algorithms::setcover::{greedy_cover, set_cover, SetCoverInstance};
use priograph::algorithms::validate::validate_cover;
use priograph::core::schedule::Schedule;

fn main() {
    // A sensor-placement-style instance: 2000 locations (elements), 600
    // candidate sensors (sets), each covering a window of locations.
    let num_elements = 2000usize;
    let sets: Vec<Vec<u32>> = (0..600)
        .map(|i| {
            let start = (i * 37) % num_elements;
            let len = 3 + (i * 7) % 18;
            (start..start + len)
                .map(|e| (e % num_elements) as u32)
                .collect()
        })
        .collect();
    let instance = SetCoverInstance::new(num_elements, sets);
    println!(
        "instance: {} elements, {} candidate sets",
        instance.num_elements,
        instance.num_sets()
    );

    let solution = set_cover(&instance, &Schedule::lazy(1));
    validate_cover(&instance, &solution.chosen).expect("cover must be complete");
    println!(
        "bucketed parallel greedy chose {} sets in {} rounds ({:.2} ms)",
        solution.chosen.len(),
        solution.stats.rounds,
        solution.stats.elapsed_ms()
    );

    let greedy = greedy_cover(&instance);
    println!("serial greedy chose {} sets", greedy.len());
    println!(
        "parallel/serial quality ratio: {:.2}",
        solution.chosen.len() as f64 / greedy.len() as f64
    );
}
