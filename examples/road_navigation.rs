//! Road navigation: point-to-point routing on a synthetic road network,
//! comparing plain Δ-stepping PPSP against A\* with the Euclidean
//! heuristic (paper §6.1's point-to-point algorithms).
//!
//! Run with `cargo run --release --example road_navigation`.

use priograph::algorithms::{astar, ppsp};
use priograph::core::schedule::Schedule;
use priograph::graph::gen::GraphGen;

fn main() {
    // A 200x200 road grid with coordinates and metric weights.
    let road = GraphGen::road_grid(200, 200).seed(7).build();
    let n = road.num_vertices();
    println!(
        "road network: {} junctions, {} road segments",
        n,
        road.num_edges()
    );

    // Route along the top edge: top-left corner to top-right corner. The
    // straight-line heuristic prunes the half-disc a blind search explores.
    let (source, target) = (0u32, 199u32);
    let _ = n;
    let schedule = Schedule::eager_with_fusion(1 << 10);

    let plain = ppsp::ppsp(&road, source, target, &schedule);
    println!(
        "PPSP: distance {:?}, {} relaxations, {:.2} ms",
        plain.distance,
        plain.stats.relaxations,
        plain.stats.elapsed_ms()
    );

    let heuristic = astar::euclidean_heuristic(&road, target, astar::road_metric_scale())
        .expect("road grids carry coordinates");
    let guided = astar::astar_on(
        priograph::parallel::global(),
        &road,
        source,
        target,
        &schedule,
        &heuristic,
    )
    .expect("valid A* configuration");
    println!(
        "A*:   distance {:?}, {} relaxations, {:.2} ms",
        guided.distance,
        guided.stats.relaxations,
        guided.stats.elapsed_ms()
    );

    assert_eq!(
        plain.distance, guided.distance,
        "both must find the shortest route"
    );

    // Check the route length against the serial Dijkstra reference: on a
    // connected grid the corners must be reachable with exactly this cost.
    let reference = priograph::algorithms::serial::dijkstra(&road, source)[target as usize];
    assert_eq!(
        plain.distance,
        Some(reference),
        "point-to-point distance must equal the full-SSSP reference"
    );

    let saved =
        100.0 * (1.0 - guided.stats.relaxations as f64 / plain.stats.relaxations.max(1) as f64);
    println!("the heuristic pruned {saved:.0}% of edge relaxations");
}
