//! The serving layer end to end, in-process: snapshot a road network, serve
//! it (zero-copy memory-mapped) over a loopback socket, and answer a
//! batched mix of point-to-point and full shortest-path queries — verified
//! against serial Dijkstra.
//!
//! Run with `cargo run --release --example serve_queries`.

use priograph::algorithms::serial::dijkstra;
use priograph::algorithms::UNREACHABLE;
use priograph::graph::gen::GraphGen;
use priograph::graph::{GraphSnapshot, SnapshotView};
use priograph::serve::client::Client;
use priograph::serve::protocol::{Query, Response};
use priograph::serve::server::{serve, ServerConfig};

fn main() {
    // 1. Preprocess once: build the graph and persist it as a PSNAPv2
    //    snapshot, the artifact a production server would load at startup.
    let built = GraphGen::road_grid(40, 40).seed(7).build();
    let snap = std::env::temp_dir().join("serve_queries_example.snap");
    GraphSnapshot::write(&built, &snap).expect("write snapshot");
    // Zero-copy open: the CSR arrays stay in the file's page cache; the
    // file can be removed once the view is dropped (the mapping lives on).
    let view = SnapshotView::open(&snap).expect("open snapshot view");
    println!(
        "resident graph (snapshot-loaded, {} mode): {} vertices, {} edges",
        view.mode(),
        view.graph().num_vertices(),
        view.graph().num_edges()
    );
    let graph = view.into_graph();
    let _ = std::fs::remove_file(&snap);

    // 2. Serve it. Port 0 picks a free loopback port; the handle reports it.
    let handle = serve(
        graph.clone(),
        ServerConfig {
            threads: 4,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    println!("serving on {}", handle.addr());

    // 3. One batch of mixed queries. The server groups the point queries
    //    and fans them out across per-worker engines; the full SSSP runs on
    //    the parallel bucket engine.
    let n = graph.num_vertices() as u32;
    let mut queries: Vec<Query> = (0..30u32)
        .map(|i| Query::ppsp((i * 131) % n, (i * 337 + 17) % n))
        .collect();
    queries.push(Query::sssp(0));

    let mut client = Client::connect(handle.addr()).expect("connect");
    let responses = client.batch(queries.clone()).expect("batch");

    // 4. Verify everything against the serial reference.
    let reference = dijkstra(&graph, 0);
    let mut checked = 0;
    for (query, response) in queries.iter().zip(&responses) {
        match response {
            Response::Distance { distance, .. } => {
                let dist = dijkstra(&graph, query.source);
                let expected = (dist[query.target as usize] < UNREACHABLE)
                    .then_some(dist[query.target as usize]);
                assert_eq!(
                    *distance, expected,
                    "ppsp {}->{}",
                    query.source, query.target
                );
                checked += 1;
            }
            Response::DistVec(served) => {
                assert_eq!(served, &reference, "full sssp from 0");
                checked += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    let stats = client.stats().expect("stats");
    println!(
        "verified {checked} responses against Dijkstra; server counters: \
         {} queries, {} point, {} full, {} dispatcher rounds",
        stats.queries, stats.point_queries, stats.full_queries, stats.batch_rounds
    );

    handle.stop();
    println!("server stopped");
}
