//! Community-core analysis: k-core decomposition of a social network,
//! comparing the histogram-reduced lazy schedule against eager updates
//! (the tradeoff of paper Table 7).
//!
//! Run with `cargo run --release --example kcore_communities`.

use priograph::algorithms::kcore;
use priograph::core::schedule::Schedule;
use priograph::graph::gen::GraphGen;

fn main() {
    // k-core runs on symmetrized graphs (paper Table 3).
    let social = GraphGen::rmat(14, 12).seed(99).build().symmetrize();
    println!(
        "social graph: {} users, {} (symmetric) links",
        social.num_vertices(),
        social.num_edges()
    );

    // The paper's preferred schedule for k-core: lazy with the constant-sum
    // histogram reduction (Figure 10).
    let result = kcore::kcore(&social, &Schedule::lazy_constant_sum());
    println!(
        "degeneracy (max coreness): {} — computed in {} rounds, {:.2} ms",
        result.degeneracy(),
        result.stats.rounds,
        result.stats.elapsed_ms()
    );

    // Coreness histogram: how many vertices sit in each core.
    let mut histogram = vec![0usize; result.degeneracy() as usize + 1];
    for &c in &result.coreness {
        histogram[c as usize] += 1;
    }
    println!("coreness distribution (core: members):");
    for (k, count) in histogram.iter().enumerate().filter(|(_, &c)| c > 0) {
        if k % 4 == 0 || k == histogram.len() - 1 {
            println!("  {k:>3}: {count}");
        }
    }

    // The eager strategy computes the same decomposition, slower on social
    // graphs because every degree decrement re-inserts the vertex.
    let eager = kcore::kcore(&social, &Schedule::eager(1));
    assert_eq!(eager.coreness, result.coreness);
    println!(
        "eager bucket inserts: {} vs lazy: {} (the Table 7 effect)",
        eager.stats.bucket_inserts, result.stats.bucket_inserts
    );
}
