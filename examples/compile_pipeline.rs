//! The compiler pipeline end to end: take the Δ-stepping program of paper
//! Figure 3, analyze it, lower it under two schedules, print the generated
//! pseudo-C++ (Figure 9), and execute the compiled plan — checking it
//! against the hand-written engine path.
//!
//! Run with `cargo run --release --example compile_pipeline`.

use priograph::core::ir::{analysis, codegen, interp, plan, programs};
use priograph::core::schedule::Schedule;
use priograph::graph::gen::GraphGen;

fn main() {
    let program = programs::delta_stepping();
    println!("=== source program (Figure 3) ===\n{program}\n");

    // The compiler's analyses (paper §5).
    let udf = program.loop_udf().expect("program has a UDF");
    println!(
        "analysis: push-direction atomics needed: {}",
        analysis::needs_atomics_push(udf).unwrap()
    );
    println!(
        "analysis: pull-direction atomics needed: {}",
        analysis::needs_atomics_pull(udf).unwrap()
    );
    println!(
        "analysis: constant-sum? {:?}",
        analysis::constant_sum(udf).err().map(|e| e.to_string())
    );
    println!(
        "analysis: eager transform applicable: {}\n",
        analysis::eager_transform_applicable(&program)
    );

    // Lower under a schedule and emit Figure 9(c)-style code.
    let schedule = Schedule::eager_with_fusion(8);
    let lowered = plan::lower(&program, &schedule).expect("legal schedule");
    println!("=== generated code ({}) ===", schedule);
    println!("{}", codegen::emit_cpp(&program, &lowered));

    // Execute the compiled plan and cross-check against a second schedule.
    let graph = GraphGen::rmat(12, 8)
        .seed(5)
        .weights_uniform(1, 100)
        .build();
    let mut initial = vec![priograph::buckets::NULL_PRIORITY; graph.num_vertices()];
    initial[0] = 0;
    let pool = priograph::parallel::global();

    let (_, eager_out) = interp::run_program(
        pool,
        &graph,
        &program,
        &schedule,
        initial.clone(),
        &[0],
        None,
    )
    .expect("compilation + execution");
    let (_, lazy_out) = interp::run_program(
        pool,
        &graph,
        &program,
        &Schedule::lazy(8),
        initial,
        &[0],
        None,
    )
    .expect("compilation + execution");

    assert_eq!(eager_out.priorities, lazy_out.priorities);
    println!(
        "compiled program executed: {} rounds (eager+fusion) vs {} rounds (lazy); distances agree ✓",
        eager_out.stats.rounds, lazy_out.stats.rounds
    );
}
