//! Quickstart: Δ-stepping SSSP on a generated social network in a dozen
//! lines — the paper's Figure 3 expressed through the library API.
//!
//! Run with `cargo run --release --example quickstart`.

use priograph::algorithms::validate::validate_sssp;
use priograph::algorithms::{serial, sssp};
use priograph::core::schedule::Schedule;
use priograph::graph::gen::GraphGen;

fn main() {
    // A power-law graph standing in for LiveJournal (weights in [1, 1000)).
    let graph = GraphGen::rmat(14, 8)
        .seed(42)
        .weights_uniform(1, 1000)
        .build();
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // The schedule is the paper's default: eager bucket updates with bucket
    // fusion and a coarsening factor of 32.
    let schedule = Schedule::eager_with_fusion(32);
    let result = sssp::delta_stepping(&graph, 0, &schedule);

    println!(
        "reached {} vertices in {} rounds ({} buckets, {} edge relaxations)",
        result.reached(),
        result.stats.rounds,
        result.stats.buckets,
        result.stats.relaxations,
    );
    let sample: Vec<i64> = result.dist.iter().take(8).copied().collect();
    println!("first distances: {sample:?}");

    // Switching strategy is one line — no algorithm changes (the point of
    // the scheduling language).
    let lazy = sssp::delta_stepping(&graph, 0, &Schedule::lazy(32));
    assert_eq!(lazy.dist, result.dist);
    println!("lazy schedule agrees with eager-with-fusion ✓");

    // Both must match the serial Dijkstra reference and satisfy the
    // triangle-inequality certificate — not just agree with each other.
    assert_eq!(result.dist, serial::dijkstra(&graph, 0));
    validate_sssp(&graph, 0, &result.dist).expect("distances violate an edge relaxation");
    println!("distances match serial Dijkstra and validate ✓");
}
