//! Offline stand-in for the `memmap2` crate (see `vendor/README.md`).
//!
//! Implements exactly the surface `priograph-graph`'s zero-copy snapshot
//! loader needs: a **read-only** file mapping whose backing bytes start at
//! an 8-byte-aligned address, plus a read-to-heap fallback with the same
//! alignment guarantee for platforms (or failure modes) where `mmap` is
//! unavailable. Call sites can later swap in the real crate — the only
//! extension points beyond upstream's `Mmap` are [`Mmap::map_or_read`],
//! [`Mmap::read_aligned`], and [`Mmap::is_mapped`], which would become thin
//! wrappers.
//!
//! The FFI layer declares `mmap`/`munmap` directly (libc is always linked;
//! the *crate* `libc` is what the offline environment lacks) and is gated to
//! 64-bit Unix targets; everywhere else [`Mmap::map_or_read`] silently takes
//! the heap path.
//!
//! # Safety contract
//!
//! A mapped file must not be truncated while the mapping is alive: the OS
//! would deliver `SIGBUS` on access past the new end. Snapshot files are
//! written once and then immutable, which is the deployment model this shim
//! assumes (the same caveat applies to upstream `memmap2`).

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::fs::File;
use std::io;
use std::ops::Deref;

/// A read-only view of a file's bytes: either a real `mmap` region or an
/// 8-byte-aligned heap buffer filled by `read`.
///
/// Dereferences to `&[u8]`. The first byte is always 8-byte aligned (page
/// alignment for real mappings, `u64` storage for the heap fallback), which
/// is what lets callers reinterpret sections as `&[u64]`-class slices.
pub struct Mmap {
    inner: Inner,
}

/// Readahead advice for a mapping, mirroring upstream `memmap2::Advice`
/// (the subset the snapshot loader uses). Advice is a hint: every variant
/// degrades to a successful no-op where `madvise` is unavailable (heap
/// fallback, non-Unix targets) or unsupported.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Advice {
    /// `MADV_NORMAL` — default kernel readahead.
    Normal,
    /// `MADV_SEQUENTIAL` — aggressive readahead, pages may be dropped
    /// sooner after use; right for one-pass validation scans.
    Sequential,
    /// `MADV_WILLNEED` — start background read-in now.
    WillNeed,
}

/// Options for building a mapping, mirroring upstream `memmap2::MmapOptions`
/// (the subset the snapshot loader uses).
///
/// # Example
///
/// ```
/// use memmap2::MmapOptions;
/// # let path = std::env::temp_dir().join("memmap2_options_doc.bin");
/// # std::fs::write(&path, vec![7u8; 64]).unwrap();
/// let file = std::fs::File::open(&path).unwrap();
/// let map = MmapOptions::new().populate().map_or_read(&file).unwrap();
/// assert_eq!(map.len(), 64);
/// # std::fs::remove_file(&path).unwrap();
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MmapOptions {
    populate: bool,
}

impl MmapOptions {
    /// Default options: plain private read-only mapping, kernel-default
    /// readahead.
    pub fn new() -> MmapOptions {
        MmapOptions::default()
    }

    /// Requests `MAP_POPULATE`: the kernel pre-faults the whole file into
    /// the page cache at map time instead of on first access. Linux-only;
    /// elsewhere (and on any mmap failure) the flag silently drops — a
    /// cold-cache perf knob must never turn into a load failure.
    pub fn populate(mut self) -> MmapOptions {
        self.populate = true;
        self
    }

    /// Maps `file` read-only with these options, falling back to
    /// [`Mmap::read_aligned`] exactly like [`Mmap::map_or_read`].
    ///
    /// # Errors
    ///
    /// Propagates metadata/read failures from the fallback path.
    pub fn map_or_read(self, file: &File) -> io::Result<Mmap> {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            let len = file.metadata()?.len();
            if len > 0 && len <= usize::MAX as u64 {
                if let Some(map) = sys::map_readonly(file, len as usize, self.populate) {
                    return Ok(Mmap {
                        inner: Inner::Mapped {
                            ptr: map,
                            len: len as usize,
                        },
                    });
                }
            }
        }
        Mmap::read_aligned(file)
    }
}

enum Inner {
    /// A live `mmap(2)` region (64-bit Unix only).
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped { ptr: *const u8, len: usize },
    /// Heap fallback: `u64` storage guarantees 8-byte alignment.
    Heap { buf: Vec<u64>, len: usize },
}

// SAFETY: the region is read-only for its whole lifetime (PROT_READ private
// mapping or an owned heap buffer), so shared references from any thread
// are sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `file` read-only, falling back to [`Mmap::read_aligned`] when
    /// mapping is unavailable (non-Unix target, empty file, or a failed
    /// `mmap` call).
    ///
    /// # Errors
    ///
    /// Propagates metadata/read failures from the fallback path.
    pub fn map_or_read(file: &File) -> io::Result<Mmap> {
        // mmap rejects zero-length mappings; usize::MAX guards the
        // (theoretical) 32-bit-usize truncation. Both live in map_or_read
        // on MmapOptions, which this delegates to with default options.
        MmapOptions::new().map_or_read(file)
    }

    /// Applies readahead `advice` to the mapping. Always succeeds: on the
    /// heap fallback, on non-Unix targets, and on any `madvise` failure the
    /// call is a no-op (advice is a hint, not a contract).
    pub fn advise(&self, advice: Advice) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if let Inner::Mapped { ptr, len } = self.inner {
            // SAFETY: ptr/len describe a live mapping owned by self.
            unsafe { sys::advise(ptr, len, advice) };
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        let _ = advice;
    }

    /// Reads the whole file into an 8-byte-aligned heap buffer (no `mmap`).
    ///
    /// # Errors
    ///
    /// Propagates metadata/read failures.
    pub fn read_aligned(file: &File) -> io::Result<Mmap> {
        use std::io::Read;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file too large for this platform",
            ));
        }
        let len = len as usize;
        let mut buf = vec![0u64; len.div_ceil(8)];
        // SAFETY: u64 storage reinterpreted as its own bytes; the buffer is
        // fully initialized (zeroed) and at least `len` bytes long.
        let bytes =
            unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, buf.len() * 8) };
        let mut filled = 0usize;
        let mut reader = file;
        while filled < len {
            match reader.read(&mut bytes[filled..len]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "file shrank while reading",
                    ))
                }
                Ok(k) => filled += k,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(Mmap {
            inner: Inner::Heap { buf, len },
        })
    }

    /// True when the bytes come from a real `mmap` region (as opposed to the
    /// heap fallback) — surfaced to operators as the "mmap" load mode.
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Inner::Mapped { .. } => true,
            Inner::Heap { .. } => false,
        }
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        match &self.inner {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Inner::Mapped { len, .. } => *len,
            Inner::Heap { len, .. } => *len,
        }
    }

    /// True when the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bytes, starting at an 8-byte-aligned address.
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            #[cfg(all(unix, target_pointer_width = "64"))]
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by
            // self; unmapped only in Drop.
            Inner::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Inner::Heap { buf, len } => {
                // SAFETY: reinterpreting initialized u64 storage as bytes;
                // `len <= buf.len() * 8` by construction.
                unsafe { std::slice::from_raw_parts(buf.as_ptr() as *const u8, *len) }
            }
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if let Inner::Mapped { ptr, len } = self.inner {
            // SAFETY: ptr/len came from a successful mmap and are unmapped
            // exactly once.
            unsafe { sys::unmap(ptr, len) };
        }
    }
}

/// Raw `mmap(2)` bindings. libc the *library* is always linked; only the
/// libc *crate* is unavailable offline, so the two symbols are declared
/// directly with the (identical on Linux and macOS 64-bit) constants below.
#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::fs::File;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
        fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
    }

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;
    /// Linux-only pre-fault flag; other Unixes never pass it.
    #[cfg(target_os = "linux")]
    const MAP_POPULATE: c_int = 0x8000;
    const MADV_NORMAL: c_int = 0;
    const MADV_SEQUENTIAL: c_int = 2;
    const MADV_WILLNEED: c_int = 3;

    /// Maps `len` bytes of `file` read-only; `None` on any mmap failure
    /// (the caller falls back to the heap path). `populate` asks for
    /// `MAP_POPULATE` where the platform has it; if the populated mapping
    /// fails the call retries plain before giving up, so the knob can only
    /// change timing, never outcome.
    pub fn map_readonly(file: &File, len: usize, populate: bool) -> Option<*const u8> {
        let mut flags = MAP_PRIVATE;
        #[cfg(target_os = "linux")]
        if populate {
            flags |= MAP_POPULATE;
        }
        #[cfg(not(target_os = "linux"))]
        let _ = populate;
        // SAFETY: a fresh private read-only mapping of a valid fd; the
        // kernel picks the address. MAP_FAILED is (void*)-1.
        let raw = |flags: c_int| unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                flags,
                file.as_raw_fd(),
                0,
            )
        };
        let mut ptr = raw(flags);
        if (ptr == usize::MAX as *mut c_void || ptr.is_null()) && flags != MAP_PRIVATE {
            ptr = raw(MAP_PRIVATE);
        }
        if ptr == usize::MAX as *mut c_void || ptr.is_null() {
            None
        } else {
            Some(ptr as *const u8)
        }
    }

    /// Applies `madvise` readahead advice; failures are swallowed (hints).
    ///
    /// # Safety
    ///
    /// `ptr`/`len` must describe a live mapping.
    pub unsafe fn advise(ptr: *const u8, len: usize, advice: super::Advice) {
        let advice = match advice {
            super::Advice::Normal => MADV_NORMAL,
            super::Advice::Sequential => MADV_SEQUENTIAL,
            super::Advice::WillNeed => MADV_WILLNEED,
        };
        // SAFETY: the caller guarantees `ptr`/`len` describe a live mapping.
        let _ = unsafe { madvise(ptr as *mut c_void, len, advice) };
    }

    /// Releases a mapping created by [`map_readonly`].
    ///
    /// # Safety
    ///
    /// `ptr`/`len` must describe a live mapping, unmapped exactly once.
    pub unsafe fn unmap(ptr: *const u8, len: usize) {
        // SAFETY: the caller guarantees `ptr`/`len` describe a live mapping
        // that is unmapped exactly once.
        let _ = unsafe { munmap(ptr as *mut c_void, len) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(bytes: &[u8], name: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(name);
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn map_or_read_sees_file_bytes() {
        let path = temp_file(b"hello mmap world", "priograph_mmap_basic.bin");
        let map = Mmap::map_or_read(&File::open(&path).unwrap()).unwrap();
        assert_eq!(&*map, b"hello mmap world");
        assert_eq!(map.len(), 16);
        assert!(!map.is_empty());
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert!(map.is_mapped(), "64-bit unix should take the mmap path");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn populate_and_advice_change_nothing_observable() {
        // The knobs are timing hints: bytes, length, and mode must be
        // identical with and without them — on every platform.
        let payload: Vec<u8> = (0..9000u32).map(|i| (i * 7) as u8).collect();
        let path = temp_file(&payload, "priograph_mmap_populate.bin");
        let plain = Mmap::map_or_read(&File::open(&path).unwrap()).unwrap();
        let populated = MmapOptions::new()
            .populate()
            .map_or_read(&File::open(&path).unwrap())
            .unwrap();
        assert_eq!(&*plain, &*populated);
        assert_eq!(plain.is_mapped(), populated.is_mapped());
        for advice in [Advice::Sequential, Advice::WillNeed, Advice::Normal] {
            populated.advise(advice); // must never fail or change bytes
        }
        assert_eq!(&*populated, &payload[..]);
        // The heap fallback accepts advice as a no-op too.
        let heap = Mmap::read_aligned(&File::open(&path).unwrap()).unwrap();
        heap.advise(Advice::Sequential);
        assert_eq!(&*heap, &payload[..]);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn both_paths_are_eight_byte_aligned_and_agree() {
        let payload: Vec<u8> = (0..4099u32).map(|i| (i * 31) as u8).collect();
        let path = temp_file(&payload, "priograph_mmap_align.bin");
        let mapped = Mmap::map_or_read(&File::open(&path).unwrap()).unwrap();
        let heap = Mmap::read_aligned(&File::open(&path).unwrap()).unwrap();
        assert!(!heap.is_mapped());
        assert_eq!(&*mapped, &payload[..]);
        assert_eq!(&*heap, &payload[..]);
        assert_eq!(mapped.as_slice().as_ptr() as usize % 8, 0);
        assert_eq!(heap.as_slice().as_ptr() as usize % 8, 0);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn empty_file_takes_the_heap_path() {
        let path = temp_file(b"", "priograph_mmap_empty.bin");
        let map = Mmap::map_or_read(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        assert!(!map.is_mapped(), "zero-length mmap is not attempted");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn maps_are_shareable_across_threads() {
        let payload = vec![7u8; 1 << 16];
        let path = temp_file(&payload, "priograph_mmap_threads.bin");
        let map = std::sync::Arc::new(Mmap::map_or_read(&File::open(&path).unwrap()).unwrap());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let map = std::sync::Arc::clone(&map);
                scope.spawn(move || assert!(map.iter().all(|&b| b == 7)));
            }
        });
        let _ = std::fs::remove_file(path);
    }
}
