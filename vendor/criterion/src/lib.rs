//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the bench-definition API the workspace's `benches/` use
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`criterion_group!`],
//! [`criterion_main!`]) on top of a simple median-of-samples timer. No
//! statistical analysis, HTML reports, or outlier rejection — each bench
//! prints `group/name  median  (samples)` to stdout. Enough to keep
//! `cargo bench` meaningful offline; swap back to real criterion when the
//! build has registry access.
//!
//! Two environment variables integrate `cargo bench` with the repo's
//! perf-tracking harness (`priograph-bench`'s `record` module and
//! `scripts/bench_compare`):
//!
//! * `BENCH_SAMPLE_SIZE` — overrides every benchmark's sample count (CI's
//!   bench smoke job sets it to 2 so the binaries stay fast but can't rot);
//! * `BENCH_JSON_DIR` — when set, [`criterion_main!`]'s `main` writes a
//!   `BENCH_<binary>.json` report (schema `priograph-bench-v1`) with each
//!   benchmark's median into that directory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-exported so user code can opt out of constant-folding.
pub use std::hint::black_box;

/// Entry point handed to each bench function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: env_sample_size().unwrap_or(10),
        }
    }
}

/// Sample-size override from `BENCH_SAMPLE_SIZE` (also caps explicit
/// [`BenchmarkGroup::sample_size`] calls so CI smoke runs stay short).
fn env_sample_size() -> Option<usize> {
    std::env::var("BENCH_SAMPLE_SIZE").ok()?.parse().ok()
}

/// Results recorded by every `run_one` call of this process, drained by
/// [`flush_json_report`].
fn results() -> &'static Mutex<Vec<(String, Duration, usize)>> {
    static RESULTS: Mutex<Vec<(String, Duration, usize)>> = Mutex::new(Vec::new());
    &RESULTS
}

/// Writes the accumulated medians as a `priograph-bench-v1` JSON report to
/// `$BENCH_JSON_DIR/BENCH_<binary>.json`. No-op unless `BENCH_JSON_DIR` is
/// set. Called by the [`criterion_main!`] expansion after all groups run.
pub fn flush_json_report() {
    let Ok(dir) = std::env::var("BENCH_JSON_DIR") else {
        return;
    };
    let exe = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .map(|s| {
            // Strip cargo's `-<hash>` suffix from the bench binary name.
            match s.rsplit_once('-') {
                Some((stem, hash)) if hash.chars().all(|c| c.is_ascii_hexdigit()) => {
                    stem.to_string()
                }
                _ => s,
            }
        })
        .unwrap_or_else(|| "bench".to_string());
    let git_rev = std::env::var("GIT_REV")
        .ok()
        .filter(|s| !s.is_empty())
        .or_else(|| {
            std::process::Command::new("git")
                .args(["rev-parse", "--short", "HEAD"])
                .output()
                .ok()
                .filter(|o| o.status.success())
                .and_then(|o| String::from_utf8(o.stdout).ok())
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
        })
        .unwrap_or_else(|| "unknown".to_string());
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let quote = |s: &str| {
        let escaped: String = s
            .chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                '\n' => vec!['\\', 'n'],
                c => vec![c],
            })
            .collect();
        format!("\"{escaped}\"")
    };
    let records = results().lock().unwrap();
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"schema\": \"priograph-bench-v1\",\n");
    body.push_str(&format!("  \"git_rev\": {},\n", quote(&git_rev)));
    body.push_str(&format!("  \"threads\": {threads},\n"));
    body.push_str("  \"records\": [\n");
    for (i, (name, duration, samples)) in records.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"name\": {}, \"median_ns\": {}, \"samples\": {}, \"threads\": {}}}{}\n",
            quote(name),
            duration.as_nanos(),
            samples,
            threads,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    body.push_str("  ]\n}\n");
    let _ = std::fs::create_dir_all(&dir);
    let path = std::path::Path::new(&dir).join(format!("BENCH_{exe}.json"));
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("failed to write {}: {e}", path.display());
    } else {
        eprintln!("wrote {} ({} records)", path.display(), records.len());
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one("", &id.into(), sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl fmt::Debug for BenchmarkGroup<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BenchmarkGroup")
            .field("name", &self.name)
            .finish()
    }
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (the
    /// `BENCH_SAMPLE_SIZE` environment variable, when set, wins).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = env_sample_size().unwrap_or(n).max(1);
        self
    }

    /// Runs `f` as a benchmark named `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing handle passed to the closure of each benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    rounds: usize,
}

impl Bencher {
    /// Times `routine`, recording one sample per call over the configured
    /// number of rounds (one warm-up call is discarded).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        for _ in 0..self.rounds {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        rounds: sample_size,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    println!(
        "{label:<48} median {:>12.3?}  ({} samples)",
        median,
        b.samples.len()
    );
    results()
        .lock()
        .unwrap()
        .push((label, median, b.samples.len()));
}

/// Declares a group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed group functions, then flushing the
/// optional `BENCH_JSON_DIR` report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::flush_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("eager", 32).to_string(), "eager/32");
    }
}
