//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the bench-definition API the workspace's `benches/` use
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`criterion_group!`],
//! [`criterion_main!`]) on top of a simple median-of-samples timer. No
//! statistical analysis, HTML reports, or outlier rejection — each bench
//! prints `group/name  median  (samples)` to stdout. Enough to keep
//! `cargo bench` meaningful offline; swap back to real criterion when the
//! build has registry access.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-exported so user code can opt out of constant-folding.
pub use std::hint::black_box;

/// Entry point handed to each bench function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one("", &id.into(), sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl fmt::Debug for BenchmarkGroup<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BenchmarkGroup")
            .field("name", &self.name)
            .finish()
    }
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` as a benchmark named `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing handle passed to the closure of each benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    rounds: usize,
}

impl Bencher {
    /// Times `routine`, recording one sample per call over the configured
    /// number of rounds (one warm-up call is discarded).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        for _ in 0..self.rounds {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        rounds: sample_size,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    println!(
        "{label:<48} median {:>12.3?}  ({} samples)",
        median,
        b.samples.len()
    );
}

/// Declares a group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("eager", 32).to_string(), "eager/32");
    }
}
