//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! Wraps `std::sync::Mutex`/`Condvar` behind the parking_lot API shape the
//! workspace uses: infallible `lock()` returning a guard directly, and
//! `Condvar::wait(&mut guard)` taking the guard by mutable reference.
//! Poisoning is deliberately ignored (parking_lot has no poisoning): a
//! panicked critical section in another thread does not cascade here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock with the parking_lot calling convention.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never fails: poison from
    /// a panicked holder is ignored, matching parking_lot semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can move it out
/// and back while the caller keeps a `&mut MutexGuard`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard stolen during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard stolen during wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A condition variable with the parking_lot calling convention.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guarded lock and blocks until notified; the
    /// lock is reacquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard stolen during wait");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
