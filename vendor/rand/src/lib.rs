//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements exactly the 0.8-era API surface the workspace uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], [`Rng::gen_range`] over
//! integer and float ranges, and [`Rng::gen`] for a few primitive types.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! across platforms, which is all the workspace needs (seeded synthetic
//! graphs, reproducible autotuner trials). It is *not* the same stream as
//! upstream `StdRng`, so seeds produce different (but still deterministic)
//! graphs than a crates.io build would.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_one(self, rng: &mut rngs::StdRng) -> T;
}

/// A type with a "standard" uniform distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one sample from the standard distribution.
    fn draw(rng: &mut rngs::StdRng) -> Self;
}

/// User-facing generator methods (subset of `rand::Rng`).
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: AsStdRng,
    {
        range.sample_one(self.as_std_rng())
    }

    /// Samples a value from the standard distribution (`f64` in `[0, 1)`,
    /// full-width integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: AsStdRng,
    {
        T::draw(self.as_std_rng())
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: AsStdRng,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.as_std_rng().unit_f64() < p
    }
}

/// Helper enabling default methods on [`Rng`] to reach the concrete state.
pub trait AsStdRng {
    /// Returns the underlying concrete generator.
    fn as_std_rng(&mut self) -> &mut rngs::StdRng;
}

/// Concrete generators.
pub mod rngs {
    use super::{SeedableRng, Standard};

    /// Deterministic 64-bit generator (xoshiro256++ under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state, as
            // recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// Advances the state and returns 64 random bits (xoshiro256++).
        pub fn next_bits(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform `u64` in `[0, bound)` via Lemire's multiply-shift with a
        /// rejection step to remove modulo bias.
        pub fn bounded(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            loop {
                let x = self.next_bits();
                let m = (x as u128) * (bound as u128);
                let lo = m as u64;
                if lo >= bound || lo >= bound.wrapping_neg() % bound {
                    return (m >> 64) as u64;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_bits() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Samples from the standard distribution of `T`.
        pub fn gen<T: Standard>(&mut self) -> T {
            T::draw(self)
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next_bits()
        }
    }

    impl super::AsStdRng for StdRng {
        fn as_std_rng(&mut self) -> &mut StdRng {
            self
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one(self, rng: &mut rngs::StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_bits() as $t;
                }
                (lo as i128 + rng.bounded(span) as i128) as $t
            }
        }
        impl Standard for $t {
            fn draw(rng: &mut rngs::StdRng) -> $t {
                rng.next_bits() as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one(self, rng: &mut rngs::StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        // The lerp can round up to `end` when the unit draw is near 1;
        // clamp to the next value below to keep the range half-open.
        let x = self.start + rng.unit_f64() * (self.end - self.start);
        if x >= self.end {
            self.end.next_down()
        } else {
            x
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_one(self, rng: &mut rngs::StdRng) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        // f64→f32 narrowing rounds up to `end` far more often than the f64
        // case (~2^-25 per draw); same half-open clamp.
        let x = self.start + (rng.unit_f64() as f32) * (self.end - self.start);
        if x >= self.end {
            self.end.next_down()
        } else {
            x
        }
    }
}

impl Standard for f64 {
    fn draw(rng: &mut rngs::StdRng) -> f64 {
        rng.unit_f64()
    }
}

impl Standard for f32 {
    fn draw(rng: &mut rngs::StdRng) -> f32 {
        // Narrowing can round a unit draw up to 1.0; clamp below it.
        (rng.unit_f64() as f32).min(1.0f32.next_down())
    }
}

impl Standard for bool {
    fn draw(rng: &mut rngs::StdRng) -> bool {
        rng.next_bits() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_bits(), b.next_bits());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen_range(-0.3..0.3);
            assert!((-0.3..0.3).contains(&f));
        }
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bounded_hits_all_residues() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.bounded(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
