//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro over `#[test] fn name(arg in strategy, ...)` items,
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, range strategies
//! over integers, [`bool::ANY`], and `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! file: each test derives a deterministic seed from its own name and runs
//! `cases` uniform samples, so failures reproduce exactly on re-run. A
//! failing case panics with the sampled arguments in the message.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration (subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A source of random test inputs.
pub trait Strategy {
    /// The concrete value type this strategy produces.
    type Value;
    /// Draws one input.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Boolean strategies.
pub mod bool {
    use rand::rngs::StdRng;

    /// Strategy producing a fair coin flip.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy, as `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl super::Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.next_bits() & 1 == 1
        }
    }
}

/// The glob import proptest users reach for.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Derives a stable 64-bit seed from a test's name (FNV-1a).
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Creates the deterministic generator for one test.
pub fn test_rng(test_name: &str) -> StdRng {
    StdRng::seed_from_u64(seed_for(test_name))
}

/// Assert that a condition holds in a property test (panics on failure,
/// like `assert!` — this shim has no shrinking phase to report back to).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($items:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($items)* }
    };
    ($($items:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($items)* }
    };
}

/// Implementation detail of [`proptest!`]: recursive item muncher.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(payload) = __result {
                    eprintln!(
                        "proptest case {}/{} failed for {} with inputs: {}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        [$(format!(concat!(stringify!($arg), " = {:?}"), $arg)),*].join(", "),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_are_stable() {
        assert_eq!(crate::seed_for("a::b"), crate::seed_for("a::b"));
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0usize..=4, flip in crate::bool::ANY) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert_eq!(flip as u8 <= 1, true);
        }
    }
}
