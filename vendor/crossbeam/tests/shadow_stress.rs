//! Multi-producer/multi-consumer stress for the `SegQueue` shim with the
//! `check-shadow` slot-state asserts compiled in: every push must commit an
//! EMPTY slot and every pop must take a WRITTEN slot, across many segment
//! installs and cursor races.

#![cfg(feature = "check-shadow")]

use crossbeam::queue::SegQueue;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn mpmc_stress_with_slot_asserts() {
    const PRODUCERS: usize = 4;
    const CONSUMERS: usize = 4;
    const PER_PRODUCER: u64 = 20_000;

    let queue = Arc::new(SegQueue::new());
    let popped = Arc::new(AtomicUsize::new(0));
    let sum = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for p in 0..PRODUCERS {
        let queue = Arc::clone(&queue);
        handles.push(std::thread::spawn(move || {
            for i in 0..PER_PRODUCER {
                queue.push(p as u64 * PER_PRODUCER + i);
            }
        }));
    }
    let total = PRODUCERS * PER_PRODUCER as usize;
    for _ in 0..CONSUMERS {
        let queue = Arc::clone(&queue);
        let popped = Arc::clone(&popped);
        let sum = Arc::clone(&sum);
        handles.push(std::thread::spawn(move || {
            while popped.load(Ordering::Relaxed) < total {
                if let Some(v) = queue.pop() {
                    sum.fetch_add(v, Ordering::Relaxed);
                    popped.fetch_add(1, Ordering::Relaxed);
                } else {
                    std::hint::spin_loop();
                }
            }
        }));
    }
    for h in handles {
        // A slot-state assert inside push/pop propagates here as a panic.
        h.join().unwrap();
    }
    assert_eq!(popped.load(Ordering::Relaxed), total);
    let n = (PRODUCERS * PER_PRODUCER as usize) as u64;
    // Values are 0..n exactly once, so the sum is the triangular number.
    assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    assert!(queue.pop().is_none());
}
