//! Offline stand-in for [`crossbeam`](https://crates.io/crates/crossbeam).
//!
//! Implements the two pieces the workspace uses: [`utils::CachePadded`]
//! (alignment wrapper against false sharing) and [`queue::SegQueue`]
//! (unbounded MPMC queue). Like upstream, the queue is a linked list of
//! fixed-size segments with per-slot state flags, giving FIFO order —
//! consumers drain a bucket's oldest entries first, which keeps priority
//! inversion inside Galois-style bucket bags bounded (older, typically
//! lower-priority work is not starved behind fresh pushes the way the
//! previous Treiber-stack stand-in starved it).

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

/// Utilities (subset of `crossbeam_utils`).
pub mod utils {
    use std::fmt;
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to (at least) a cache-line boundary so hot
    /// per-thread fields don't false-share.
    #[derive(Default)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value` in cache-line-aligned storage.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Returns the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.value.fmt(f)
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }
}

/// Concurrent queues (subset of `crossbeam_queue`).
pub mod queue {
    use std::cell::UnsafeCell;
    use std::fmt;
    use std::mem::MaybeUninit;
    use std::ptr;
    use std::sync::atomic::{AtomicPtr, AtomicU8, AtomicUsize, Ordering};

    /// Elements per segment (upstream uses 32; 64 amortizes the segment
    /// hand-off a little further for the bucket-bag workload).
    const SEG_CAP: usize = 64;

    /// Slot lifecycle: reserved-but-unwritten → written → consumed.
    const SLOT_EMPTY: u8 = 0;
    const SLOT_WRITTEN: u8 = 1;
    const SLOT_TAKEN: u8 = 2;

    /// Consumer-side spins on a reserved-but-uncommitted slot before
    /// yielding the CPU to let the stalled producer finish.
    const POP_SPINS_PER_YIELD: usize = 64;

    struct Segment<T> {
        /// Producer claim counter; values ≥ `SEG_CAP` mean "full, move on".
        reserved: AtomicUsize,
        /// Consumer cursor, advanced by CAS; never exceeds `SEG_CAP`.
        popped: AtomicUsize,
        /// Per-slot lifecycle flags.
        state: [AtomicU8; SEG_CAP],
        /// Slot storage; slot `i` is initialized iff `state[i] != EMPTY`.
        data: [UnsafeCell<MaybeUninit<T>>; SEG_CAP],
        /// Next segment in FIFO order (installed once, by CAS).
        next: AtomicPtr<Segment<T>>,
        /// Allocation-list link; every segment stays on this list until the
        /// queue itself drops (deferred reclamation, see type docs).
        all_next: *mut Segment<T>,
    }

    impl<T> Segment<T> {
        fn new() -> Box<Self> {
            Box::new(Segment {
                reserved: AtomicUsize::new(0),
                popped: AtomicUsize::new(0),
                state: std::array::from_fn(|_| AtomicU8::new(SLOT_EMPTY)),
                data: std::array::from_fn(|_| UnsafeCell::new(MaybeUninit::uninit())),
                next: AtomicPtr::new(ptr::null_mut()),
                all_next: ptr::null_mut(),
            })
        }
    }

    /// Unbounded multi-producer multi-consumer FIFO queue.
    ///
    /// A linked list of fixed-size segments, as in upstream crossbeam:
    /// producers claim slots with one `fetch_add` on the tail segment and
    /// commit them with a per-slot flag; consumers advance a CAS cursor
    /// through the head segment in slot order. Ordering is FIFO per
    /// producer (and globally, by slot-reservation order) — unlike the
    /// Treiber-stack stand-in this replaces, old entries cannot be starved
    /// behind new ones.
    ///
    /// # Memory reclamation
    ///
    /// Drained segments are *not* freed until the queue drops. This is the
    /// simplest sound reclamation scheme for an MPMC list: a concurrent
    /// popper may still be reading a segment it loaded before the head
    /// advanced, and because no address is ever recycled into the list, the
    /// classic ABA head-swap cannot occur. The cost — one live segment per
    /// `SEG_CAP` pushes until drop — is bounded here by its users (per-run
    /// bucket bags that drop at the end of the algorithm).
    pub struct SegQueue<T> {
        /// Consumer segment.
        head: AtomicPtr<Segment<T>>,
        /// Producer segment.
        tail: AtomicPtr<Segment<T>>,
        /// Head of the allocation list.
        all: AtomicPtr<Segment<T>>,
    }

    // SAFETY: segments are heap-allocated and reachable only through this
    // struct; value ownership transfers atomically to the single pop that
    // wins the cursor CAS, and segment memory outlives all concurrent
    // readers (freed only in Drop, which requires `&mut self`).
    unsafe impl<T: Send> Send for SegQueue<T> {}
    unsafe impl<T: Send> Sync for SegQueue<T> {}

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            let first = Box::into_raw(Segment::new());
            SegQueue {
                head: AtomicPtr::new(first),
                tail: AtomicPtr::new(first),
                all: AtomicPtr::new(first),
            }
        }

        /// Links a freshly installed segment into the allocation list.
        fn link_allocation(&self, node: *mut Segment<T>) {
            let mut all = self.all.load(Ordering::Relaxed);
            loop {
                // SAFETY: `all_next` is only written here, by the unique
                // thread that won the `next` CAS for `node`, and the list
                // is only traversed under `&mut self` (Drop).
                unsafe { (*node).all_next = all };
                match self.all.compare_exchange_weak(
                    all,
                    node,
                    Ordering::Release,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return,
                    Err(a) => all = a,
                }
            }
        }

        /// Pushes an element (never blocks, never fails).
        pub fn push(&self, value: T) {
            let mut value = Some(value);
            loop {
                let seg_ptr = self.tail.load(Ordering::Acquire);
                // SAFETY: segments are never freed while the queue is
                // shared (see "Memory reclamation").
                let seg = unsafe { &*seg_ptr };
                let i = seg.reserved.fetch_add(1, Ordering::Relaxed);
                if i < SEG_CAP {
                    // SAFETY: the fetch_add made this thread the unique
                    // owner of slot `i`; consumers wait for the WRITTEN
                    // flag below before touching it.
                    unsafe { (*seg.data[i].get()).write(value.take().expect("unused value")) };
                    // Under the shadow checker, commit with a swap so a
                    // second producer landing on the same slot (broken
                    // fetch_add claim) trips deterministically.
                    #[cfg(feature = "check-shadow")]
                    {
                        let prev = seg.state[i].swap(SLOT_WRITTEN, Ordering::AcqRel);
                        assert_eq!(
                            prev, SLOT_EMPTY,
                            "shadow checker: SegQueue slot {i} committed twice"
                        );
                    }
                    #[cfg(not(feature = "check-shadow"))]
                    seg.state[i].store(SLOT_WRITTEN, Ordering::Release);
                    return;
                }
                // Segment full: install (or help install) the next one.
                let next = seg.next.load(Ordering::Acquire);
                if next.is_null() {
                    let fresh = Box::into_raw(Segment::new());
                    match seg.next.compare_exchange(
                        ptr::null_mut(),
                        fresh,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => {
                            self.link_allocation(fresh);
                            let _ = self.tail.compare_exchange(
                                seg_ptr,
                                fresh,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            );
                        }
                        Err(_) => {
                            // Lost the install race; `fresh` was never
                            // shared. SAFETY: unique owner, free it.
                            drop(unsafe { Box::from_raw(fresh) });
                        }
                    }
                } else {
                    // Help a stalled installer advance the tail.
                    let _ = self.tail.compare_exchange(
                        seg_ptr,
                        next,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    );
                }
            }
        }

        /// Pops the oldest element, or `None` if the queue is observed
        /// empty.
        pub fn pop(&self) -> Option<T> {
            let mut spins = 0usize;
            loop {
                let seg_ptr = self.head.load(Ordering::Acquire);
                // SAFETY: segments outlive all concurrent readers.
                let seg = unsafe { &*seg_ptr };
                let i = seg.popped.load(Ordering::Acquire);
                if i >= SEG_CAP {
                    // Segment drained; advance to the next or report empty.
                    let next = seg.next.load(Ordering::Acquire);
                    if next.is_null() {
                        return None;
                    }
                    let _ = self.head.compare_exchange(
                        seg_ptr,
                        next,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    );
                    continue;
                }
                let state = seg.state[i].load(Ordering::Acquire);
                if state == SLOT_WRITTEN {
                    if seg
                        .popped
                        .compare_exchange(i, i + 1, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        // SAFETY: winning the cursor CAS grants exclusive
                        // ownership of the committed value; mark it taken
                        // so Drop doesn't double-drop.
                        let value = unsafe { (*seg.data[i].get()).assume_init_read() };
                        // Swap under the shadow checker: a double-take of
                        // the slot (broken cursor CAS) trips here.
                        #[cfg(feature = "check-shadow")]
                        {
                            let prev = seg.state[i].swap(SLOT_TAKEN, Ordering::AcqRel);
                            assert_eq!(
                                prev, SLOT_WRITTEN,
                                "shadow checker: SegQueue slot {i} taken twice"
                            );
                        }
                        #[cfg(not(feature = "check-shadow"))]
                        seg.state[i].store(SLOT_TAKEN, Ordering::Release);
                        return Some(value);
                    }
                    // Lost to another consumer; retry with fresh state.
                } else if state == SLOT_EMPTY {
                    if i >= seg.reserved.load(Ordering::Acquire) {
                        // No producer has claimed this slot: empty.
                        return None;
                    }
                    // A producer claimed the slot but has not committed
                    // yet; FIFO order requires waiting it out.
                    spins += 1;
                    if spins.is_multiple_of(POP_SPINS_PER_YIELD) {
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
                // SLOT_TAKEN: a racing consumer advanced the cursor between
                // our two loads; reload and retry.
            }
        }

        /// Whether the queue was empty at the moment of the loads.
        pub fn is_empty(&self) -> bool {
            let mut seg_ptr = self.head.load(Ordering::Acquire);
            loop {
                // SAFETY: segments outlive all concurrent readers.
                let seg = unsafe { &*seg_ptr };
                let popped = seg.popped.load(Ordering::Acquire);
                let reserved = seg.reserved.load(Ordering::Acquire).min(SEG_CAP);
                if popped < reserved {
                    return false;
                }
                let next = seg.next.load(Ordering::Acquire);
                if next.is_null() {
                    return true;
                }
                seg_ptr = next;
            }
        }

        /// Number of queued elements (O(segments); best-effort under
        /// concurrency, test/diagnostic use only).
        pub fn len(&self) -> usize {
            let mut n = 0usize;
            let mut cur = self.head.load(Ordering::Acquire);
            while !cur.is_null() {
                // SAFETY: segment memory stays allocated until Drop, so the
                // traversal never dereferences freed memory (counts may be
                // momentarily inconsistent; callers accept approximation).
                let seg = unsafe { &*cur };
                let reserved = seg.reserved.load(Ordering::Acquire).min(SEG_CAP);
                let popped = seg.popped.load(Ordering::Acquire).min(SEG_CAP);
                n += reserved.saturating_sub(popped);
                cur = seg.next.load(Ordering::Acquire);
            }
            n
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            SegQueue::new()
        }
    }

    impl<T> Drop for SegQueue<T> {
        fn drop(&mut self) {
            // `&mut self`: no concurrent readers remain; free every segment
            // ever allocated, dropping values pops never extracted.
            let mut cur = *self.all.get_mut();
            while !cur.is_null() {
                // SAFETY: exclusive access; each segment freed exactly once.
                let mut seg = unsafe { Box::from_raw(cur) };
                let reserved = (*seg.reserved.get_mut()).min(SEG_CAP);
                for i in 0..reserved {
                    if *seg.state[i].get_mut() == SLOT_WRITTEN {
                        // SAFETY: WRITTEN slots hold initialized,
                        // never-consumed values.
                        unsafe { seg.data[i].get_mut().assume_init_drop() };
                    }
                }
                cur = seg.all_next;
            }
        }
    }

    impl<T> fmt::Debug for SegQueue<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SegQueue { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::SegQueue;
        use std::sync::Arc;

        #[test]
        fn push_pop_roundtrip() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            assert_eq!(q.len(), 2);
            let mut got = vec![q.pop().unwrap(), q.pop().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
            assert!(q.pop().is_none());
            assert!(q.is_empty());
        }

        #[test]
        fn single_threaded_order_is_fifo_across_segments() {
            // 10_000 items cross many 64-slot segment boundaries.
            let q = SegQueue::new();
            for i in 0..10_000u32 {
                q.push(i);
            }
            assert_eq!(q.len(), 10_000);
            for i in 0..10_000u32 {
                assert_eq!(q.pop(), Some(i));
            }
            assert!(q.is_empty());
            // The queue stays usable after full drains.
            q.push(7);
            assert_eq!(q.pop(), Some(7));
        }

        #[test]
        fn per_producer_order_survives_concurrency() {
            // With a single consumer, each producer's items must come out
            // in the order that producer pushed them (FIFO per producer —
            // the property the Treiber-stack stand-in violated).
            let q = Arc::new(SegQueue::new());
            let n_producers = 4usize;
            let per_thread = 5_000usize;
            let producers: Vec<_> = (0..n_producers)
                .map(|t| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        for i in 0..per_thread {
                            q.push((t, i));
                        }
                    })
                })
                .collect();
            let mut next_expected = vec![0usize; n_producers];
            let mut got = 0usize;
            while got < n_producers * per_thread {
                if let Some((t, i)) = q.pop() {
                    assert_eq!(
                        i, next_expected[t],
                        "producer {t} items observed out of order"
                    );
                    next_expected[t] = i + 1;
                    got += 1;
                }
            }
            for p in producers {
                p.join().unwrap();
            }
            assert!(q.pop().is_none());
        }

        #[test]
        fn concurrent_producers_consumers() {
            let q = Arc::new(SegQueue::new());
            let producers: Vec<_> = (0..4)
                .map(|t| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        for i in 0..1000 {
                            q.push(t * 1000 + i);
                        }
                    })
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            let mut seen = vec![false; 4000];
            while let Some(v) = q.pop() {
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }

        #[test]
        fn racing_consumers_see_each_value_once() {
            // Producers and consumers overlap so pops race on the same
            // head — the scenario the deferred-reclamation scheme exists
            // for.
            let q = Arc::new(SegQueue::new());
            let n_threads = 4usize;
            let per_thread = 5_000usize;
            let producers: Vec<_> = (0..n_threads)
                .map(|t| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        for i in 0..per_thread {
                            q.push((t * per_thread + i) as u32);
                        }
                    })
                })
                .collect();
            let consumers: Vec<_> = (0..n_threads)
                .map(|_| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        let mut idle = 0;
                        while idle < 10_000 {
                            match q.pop() {
                                Some(v) => {
                                    got.push(v);
                                    idle = 0;
                                }
                                None => idle += 1,
                            }
                        }
                        got
                    })
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            let mut seen = vec![false; n_threads * per_thread];
            for c in consumers {
                for v in c.join().unwrap() {
                    assert!(!seen[v as usize], "value {v} popped twice");
                    seen[v as usize] = true;
                }
            }
            while let Some(v) = q.pop() {
                assert!(!seen[v as usize], "value {v} popped twice");
                seen[v as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "some value was lost");
        }

        #[test]
        fn drop_releases_unpopped_values() {
            let q = SegQueue::new();
            let value = Arc::new(());
            for _ in 0..10 {
                q.push(Arc::clone(&value));
            }
            let _ = q.pop(); // one value extracted, nine still queued
            drop(q);
            // All ten clones must be gone regardless of pop state.
            assert_eq!(Arc::strong_count(&value), 1);
        }
    }
}
