//! Offline stand-in for [`crossbeam`](https://crates.io/crates/crossbeam).
//!
//! Implements the two pieces the workspace uses: [`utils::CachePadded`]
//! (alignment wrapper against false sharing) and [`queue::SegQueue`]
//! (unbounded MPMC queue). The queue here is a lock-free Treiber stack —
//! LIFO rather than upstream's FIFO, which is fine for its one consumer
//! (the Galois-style *unordered* bucket bags, which give no intra-bucket
//! ordering guarantee by design).

#![warn(missing_docs)]

/// Utilities (subset of `crossbeam_utils`).
pub mod utils {
    use std::fmt;
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to (at least) a cache-line boundary so hot
    /// per-thread fields don't false-share.
    #[derive(Default)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value` in cache-line-aligned storage.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Returns the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.value.fmt(f)
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }
}

/// Concurrent queues (subset of `crossbeam_queue`).
pub mod queue {
    use std::fmt;
    use std::mem::ManuallyDrop;
    use std::ptr;
    use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

    struct Node<T> {
        value: ManuallyDrop<T>,
        /// Set (with exclusive ownership) by the pop that extracted `value`,
        /// so `Drop` knows whether the value still needs dropping.
        taken: AtomicBool,
        /// Live-stack link; stale once the node is popped.
        next: *mut Node<T>,
        /// Allocation-list link; every node ever pushed stays on this list
        /// until the queue itself drops.
        all_next: *mut Node<T>,
    }

    /// Unbounded multi-producer multi-consumer queue.
    ///
    /// Implemented as a lock-free Treiber stack: `push`/`pop` are O(1) and
    /// never block, but ordering is LIFO (see crate docs for why that is
    /// acceptable here).
    ///
    /// # Memory reclamation
    ///
    /// Popped nodes are *not* freed until the queue drops. This is the
    /// simplest sound reclamation scheme for a multi-consumer Treiber
    /// stack: a concurrent popper may still be reading a node it loaded
    /// before losing the race, and because no address is ever recycled
    /// into the stack, the classic ABA head-swap cannot occur. The cost —
    /// one live allocation per push until drop — is bounded here by its
    /// users (per-run bucket bags that drop at the end of the algorithm).
    pub struct SegQueue<T> {
        head: AtomicPtr<Node<T>>,
        all: AtomicPtr<Node<T>>,
    }

    // Safety: nodes are heap-allocated and reachable only through this
    // struct; value ownership transfers atomically to the single pop that
    // wins the head CAS, and node memory outlives all concurrent readers
    // (freed only in Drop, which requires `&mut self`).
    unsafe impl<T: Send> Send for SegQueue<T> {}
    unsafe impl<T: Send> Sync for SegQueue<T> {}

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub const fn new() -> Self {
            SegQueue {
                head: AtomicPtr::new(ptr::null_mut()),
                all: AtomicPtr::new(ptr::null_mut()),
            }
        }

        /// Pushes an element (never blocks, never fails).
        pub fn push(&self, value: T) {
            let node = Box::into_raw(Box::new(Node {
                value: ManuallyDrop::new(value),
                taken: AtomicBool::new(false),
                next: ptr::null_mut(),
                all_next: ptr::null_mut(),
            }));
            // Link into the allocation list (push-only, so no ABA hazard).
            let mut all = self.all.load(Ordering::Relaxed);
            loop {
                // Safety: `node` is freshly allocated and not yet shared.
                unsafe { (*node).all_next = all };
                match self.all.compare_exchange_weak(
                    all,
                    node,
                    Ordering::Release,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(a) => all = a,
                }
            }
            // Publish onto the live stack.
            let mut head = self.head.load(Ordering::Relaxed);
            loop {
                // Safety: only this thread writes `next` until the CAS
                // below publishes the node.
                unsafe { (*node).next = head };
                match self.head.compare_exchange_weak(
                    head,
                    node,
                    Ordering::Release,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return,
                    Err(h) => head = h,
                }
            }
        }

        /// Pops an element, or `None` if the queue is observed empty.
        pub fn pop(&self) -> Option<T> {
            let mut head = self.head.load(Ordering::Acquire);
            loop {
                if head.is_null() {
                    return None;
                }
                // Safety: nodes are never freed while the queue is shared
                // (see "Memory reclamation"), so a once-published pointer
                // stays readable even if another pop unlinks it first.
                let next = unsafe { (*head).next };
                match self.head.compare_exchange_weak(
                    head,
                    next,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        // Safety: winning the CAS grants exclusive
                        // ownership of the value; mark it taken so Drop
                        // doesn't double-drop.
                        let value = unsafe { ptr::read(&*(*head).value) };
                        unsafe { (*head).taken.store(true, Ordering::Release) };
                        return Some(value);
                    }
                    Err(h) => head = h,
                }
            }
        }

        /// Whether the queue was empty at the moment of the load.
        pub fn is_empty(&self) -> bool {
            self.head.load(Ordering::Acquire).is_null()
        }

        /// Number of queued elements (O(n); best-effort under concurrency,
        /// test/diagnostic use only).
        pub fn len(&self) -> usize {
            let mut n = 0;
            let mut cur = self.head.load(Ordering::Acquire);
            while !cur.is_null() {
                n += 1;
                // Safety: node memory stays allocated until Drop, so the
                // traversal never dereferences freed memory (it may count
                // concurrently-popped nodes; callers accept approximation).
                cur = unsafe { (*cur).next };
            }
            n
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            SegQueue::new()
        }
    }

    impl<T> Drop for SegQueue<T> {
        fn drop(&mut self) {
            // `&mut self`: no concurrent readers remain; free every node
            // ever pushed, dropping values pops never extracted.
            let mut cur = *self.all.get_mut();
            while !cur.is_null() {
                // Safety: exclusive access; each node freed exactly once.
                let mut node = unsafe { Box::from_raw(cur) };
                if !*node.taken.get_mut() {
                    unsafe { ManuallyDrop::drop(&mut node.value) };
                }
                cur = node.all_next;
            }
        }
    }

    impl<T> fmt::Debug for SegQueue<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SegQueue { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::SegQueue;
        use std::sync::Arc;

        #[test]
        fn push_pop_roundtrip() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            assert_eq!(q.len(), 2);
            let mut got = vec![q.pop().unwrap(), q.pop().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
            assert!(q.pop().is_none());
            assert!(q.is_empty());
        }

        #[test]
        fn concurrent_producers_consumers() {
            let q = Arc::new(SegQueue::new());
            let producers: Vec<_> = (0..4)
                .map(|t| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        for i in 0..1000 {
                            q.push(t * 1000 + i);
                        }
                    })
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            let mut seen = vec![false; 4000];
            while let Some(v) = q.pop() {
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }

        #[test]
        fn racing_consumers_see_each_value_once() {
            // Producers and consumers overlap so pops race on the same
            // head — the scenario the deferred-reclamation scheme exists
            // for.
            let q = Arc::new(SegQueue::new());
            let n_threads = 4usize;
            let per_thread = 5_000usize;
            let producers: Vec<_> = (0..n_threads)
                .map(|t| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        for i in 0..per_thread {
                            q.push((t * per_thread + i) as u32);
                        }
                    })
                })
                .collect();
            let consumers: Vec<_> = (0..n_threads)
                .map(|_| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        let mut idle = 0;
                        while idle < 10_000 {
                            match q.pop() {
                                Some(v) => {
                                    got.push(v);
                                    idle = 0;
                                }
                                None => idle += 1,
                            }
                        }
                        got
                    })
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            let mut seen = vec![false; n_threads * per_thread];
            for c in consumers {
                for v in c.join().unwrap() {
                    assert!(!seen[v as usize], "value {v} popped twice");
                    seen[v as usize] = true;
                }
            }
            while let Some(v) = q.pop() {
                assert!(!seen[v as usize], "value {v} popped twice");
                seen[v as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "some value was lost");
        }

        #[test]
        fn drop_releases_unpopped_values() {
            let q = SegQueue::new();
            let value = Arc::new(());
            for _ in 0..10 {
                q.push(Arc::clone(&value));
            }
            let _ = q.pop(); // one value extracted, nine still queued
            drop(q);
            // All ten clones must be gone regardless of pop state.
            assert_eq!(Arc::strong_count(&value), 1);
        }
    }
}
