//! Offline stand-in for the `signal-hook` crate (see `vendor/README.md`).
//!
//! Implements exactly the surface `priograph-server`'s graceful drain
//! needs: [`flag::register`], which arranges for an [`AtomicBool`] to be
//! set when a signal is delivered, plus the [`consts`] signal numbers. A
//! watcher thread polling the flag then routes into the drain path — the
//! handler itself does nothing but one atomic store, the only kind of
//! work that is async-signal-safe.
//!
//! The FFI layer declares `signal()` directly (libc is always linked; the
//! *crate* `libc` is what the offline environment lacks) and is gated to
//! Unix targets; elsewhere [`flag::register`] is a successful no-op (the
//! flag simply never fires), matching how upstream degrades on targets
//! without Unix signals.
//!
//! Upstream `signal-hook` supports handler chaining and unregistration;
//! this shim intentionally does not (the serving binary installs exactly
//! one flag per signal for its whole lifetime). Call sites need no
//! changes to swap in the real crate.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Signal numbers, mirroring `signal_hook::consts` (the Linux/BSD values;
/// these two are identical across the Unix targets this workspace builds
/// on).
pub mod consts {
    /// Interactive interrupt (Ctrl-C).
    pub const SIGINT: i32 = 2;
    /// Termination request (the default `kill`, and what supervisors
    /// send for orderly shutdown).
    pub const SIGTERM: i32 = 15;
}

/// Signal-to-flag registration, mirroring `signal_hook::flag`.
pub mod flag {
    use super::*;
    use std::io;

    /// Arranges for `flag` to be set to `true` when `signal` is
    /// delivered. The `Arc` is kept alive for the life of the process
    /// (registration cannot be undone in this shim).
    ///
    /// # Errors
    ///
    /// Fails when `signal` is outside the registerable range or the OS
    /// rejects the handler installation. On non-Unix targets this is a
    /// successful no-op.
    pub fn register(signal: i32, flag: Arc<AtomicBool>) -> io::Result<()> {
        imp::register(signal, flag)
    }

    #[cfg(unix)]
    mod imp {
        use super::*;
        use std::sync::atomic::{AtomicPtr, Ordering};

        /// How many signal slots the table holds; Unix signal numbers of
        /// interest are all below 32.
        const MAX_SIGNAL: usize = 32;

        /// One flag pointer per signal number. Written by `register` (leaked
        /// `Arc`), read by the handler — which may only do async-signal-safe
        /// work, and an atomic load/store is exactly that.
        static SLOTS: [AtomicPtr<AtomicBool>; MAX_SIGNAL] = {
            #[allow(clippy::declare_interior_mutable_const)]
            const EMPTY: AtomicPtr<AtomicBool> = AtomicPtr::new(std::ptr::null_mut());
            [EMPTY; MAX_SIGNAL]
        };

        extern "C" {
            /// POSIX `signal(2)`: installs `handler` for `signum`, returning
            /// the previous handler or `SIG_ERR` (represented as `usize::MAX`
            /// through the `usize` lens used here).
            fn signal(signum: i32, handler: usize) -> usize;
        }

        /// The installed handler: set the registered flag, nothing else.
        /// `extern "C"` and async-signal-safe by construction (one relaxed
        /// atomic load + one store, no allocation, no locks, no syscalls).
        extern "C" fn handle_signal(signum: i32) {
            if let Some(slot) = SLOTS.get(signum as usize) {
                let ptr = slot.load(Ordering::Acquire);
                if !ptr.is_null() {
                    // SAFETY: the pointer was produced by Arc::into_raw in
                    // `register` and intentionally leaked, so it outlives
                    // the process; AtomicBool is safe to store through from
                    // any context, including a signal handler.
                    unsafe { (*ptr).store(true, Ordering::Release) };
                }
            }
        }

        pub(super) fn register(signum: i32, flag: Arc<AtomicBool>) -> io::Result<()> {
            let slot = usize::try_from(signum)
                .ok()
                .and_then(|s| SLOTS.get(s))
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("signal {signum} outside the registerable range"),
                    )
                })?;
            // Leak one Arc reference: the handler may fire at any point for
            // the rest of the process lifetime, so the flag must never drop.
            let ptr = Arc::into_raw(flag).cast_mut();
            slot.store(ptr, Ordering::Release);
            let handler = handle_signal as extern "C" fn(i32) as usize;
            // SAFETY: installing an `extern "C"` handler that performs only
            // async-signal-safe work (see `handle_signal`); `signal(2)` is
            // specified for exactly this use.
            let previous = unsafe { signal(signum, handler) };
            if previous == usize::MAX {
                // SIG_ERR: roll the slot back and reclaim the leaked Arc.
                slot.store(std::ptr::null_mut(), Ordering::Release);
                // SAFETY: `ptr` came from Arc::into_raw above and was not
                // reclaimed elsewhere (the handler only reads through it).
                drop(unsafe { Arc::from_raw(ptr.cast_const()) });
                return Err(io::Error::other(format!(
                    "signal({signum}) rejected the handler"
                )));
            }
            Ok(())
        }
    }

    #[cfg(not(unix))]
    mod imp {
        use super::*;

        pub(super) fn register(_signal: i32, _flag: Arc<AtomicBool>) -> io::Result<()> {
            // No Unix signals to hook; the flag simply never fires.
            Ok(())
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    extern "C" {
        /// POSIX `raise(3)`: deliver a signal to the calling thread.
        fn raise(signum: i32) -> i32;
    }

    #[test]
    fn registered_flag_fires_on_raise() {
        let flag = Arc::new(AtomicBool::new(false));
        flag::register(consts::SIGTERM, Arc::clone(&flag)).expect("register SIGTERM");
        assert!(!flag.load(Ordering::Acquire));
        // SAFETY: raise() delivers SIGTERM to this thread; the handler
        // installed above turns it into one atomic store instead of the
        // default terminate action.
        let rc = unsafe { raise(consts::SIGTERM) };
        assert_eq!(rc, 0, "raise(SIGTERM) failed");
        assert!(
            flag.load(Ordering::Acquire),
            "the handler must set the flag"
        );
    }

    #[test]
    fn out_of_range_signals_are_refused() {
        let flag = Arc::new(AtomicBool::new(false));
        assert!(flag::register(4096, flag).is_err());
    }
}
