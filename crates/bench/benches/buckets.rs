//! Criterion micro-benchmarks for the bucketing substrate: lazy queue
//! churn, histogram reduction, and shared-frontier appends.

use criterion::{criterion_group, criterion_main, Criterion};
use priograph_buckets::histogram::Histogram;
use priograph_buckets::{BucketOrder, LazyBucketQueue, PriorityMap, SharedFrontier};
use priograph_parallel::Pool;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

fn bench_lazy_queue(c: &mut Criterion) {
    let pool = Pool::new(1);
    let n = 50_000usize;
    let mut group = c.benchmark_group("buckets");
    group.sample_size(10);

    group.bench_function("lazy_queue_insert_drain", |b| {
        b.iter(|| {
            let pri: Arc<[AtomicI64]> = (0..n)
                .map(|i| AtomicI64::new((i as i64 * 31) % 512))
                .collect();
            let map = PriorityMap::new(BucketOrder::Increasing, 4);
            let mut q = LazyBucketQueue::new(pri, map, 128);
            q.insert_initial(0..n as u32);
            let mut drained = 0usize;
            while let Some((_, items)) = q.next_bucket(&pool) {
                drained += items.len();
            }
            drained
        })
    });

    let pool2 = Pool::with_available_parallelism();
    let items: Vec<u32> = (0..200_000u32).map(|i| i * 7 % 10_000).collect();
    group.bench_function("histogram_accumulate_clear", |b| {
        let hist = Histogram::new(10_000);
        b.iter(|| {
            let distinct = hist.accumulate(&pool2, &items);
            hist.clear(&pool2, &distinct);
            distinct.len()
        })
    });

    group.bench_function("shared_frontier_append", |b| {
        let frontier = SharedFrontier::new(1 << 20);
        let chunk: Vec<u32> = (0..256).collect();
        b.iter(|| {
            frontier.reset();
            for _ in 0..512 {
                frontier.append(&chunk);
            }
            frontier.len()
        })
    });

    // Priority map arithmetic in a tight loop (inlining check).
    group.bench_function("priority_map_bucket_of", |b| {
        let map = PriorityMap::new(BucketOrder::Increasing, 16);
        b.iter(|| {
            let mut acc = 0i64;
            for p in 0..100_000i64 {
                acc += map.bucket_of(p).unwrap_or(0);
            }
            acc
        })
    });

    // Keep the atomic vec cost visible too.
    group.bench_function("atomic_write_min_contended", |b| {
        let cell = AtomicI64::new(i64::MAX);
        b.iter(|| {
            cell.store(i64::MAX, Ordering::Relaxed);
            for v in (0..10_000i64).rev() {
                priograph_parallel::atomics::write_min(&cell, v);
            }
            cell.load(Ordering::Relaxed)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lazy_queue);
criterion_main!(benches);
