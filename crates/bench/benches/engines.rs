//! Criterion micro-benchmarks: the bucket-update strategies on SSSP
//! (the machinery behind paper Tables 4/7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use priograph_algorithms::sssp;
use priograph_core::schedule::Schedule;
use priograph_graph::gen::GraphGen;
use priograph_parallel::Pool;

fn bench_sssp_engines(c: &mut Criterion) {
    let pool = Pool::with_available_parallelism();
    let social = GraphGen::rmat(12, 8)
        .seed(1)
        .weights_uniform(1, 1000)
        .build();
    let road = GraphGen::road_grid(64, 64).seed(1).build();

    let mut group = c.benchmark_group("sssp_engines");
    group.sample_size(10);
    for (gname, graph, delta) in [("social", &social, 32i64), ("road", &road, 1 << 12)] {
        for (sname, schedule) in [
            ("eager_fusion", Schedule::eager_with_fusion(delta)),
            ("eager", Schedule::eager(delta)),
            ("lazy", Schedule::lazy(delta)),
        ] {
            group.bench_with_input(BenchmarkId::new(sname, gname), &schedule, |b, schedule| {
                b.iter(|| {
                    sssp::delta_stepping_on(&pool, graph, 0, schedule)
                        .unwrap()
                        .dist
                        .len()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sssp_engines);
criterion_main!(benches);
