//! Criterion benchmark for the bucket fusion optimization (paper §3.3,
//! Table 6): eager with vs without fusion on a high-diameter road grid.

use criterion::{criterion_group, criterion_main, Criterion};
use priograph_algorithms::sssp;
use priograph_core::schedule::Schedule;
use priograph_graph::gen::GraphGen;
use priograph_parallel::Pool;

fn bench_fusion(c: &mut Criterion) {
    let pool = Pool::with_available_parallelism();
    let road = GraphGen::road_grid(96, 96).seed(2).build();
    let delta = 1 << 11;

    let mut group = c.benchmark_group("bucket_fusion_road");
    group.sample_size(10);
    group.bench_function("with_fusion", |b| {
        b.iter(|| {
            sssp::delta_stepping_on(&pool, &road, 0, &Schedule::eager_with_fusion(delta))
                .unwrap()
                .stats
                .rounds
        })
    });
    group.bench_function("without_fusion", |b| {
        b.iter(|| {
            sssp::delta_stepping_on(&pool, &road, 0, &Schedule::eager(delta))
                .unwrap()
                .stats
                .rounds
        })
    });
    // Threshold sensitivity (the scheduling knob of Table 2).
    for threshold in [10usize, 1000, 100_000] {
        group.bench_function(format!("fusion_threshold_{threshold}"), |b| {
            let schedule =
                Schedule::eager_with_fusion(delta).config_bucket_fusion_threshold(threshold);
            b.iter(|| {
                sssp::delta_stepping_on(&pool, &road, 0, &schedule)
                    .unwrap()
                    .stats
                    .fused_rounds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fusion);
criterion_main!(benches);
