//! Criterion micro-benchmarks across the six ordered algorithms.

use criterion::{criterion_group, criterion_main, Criterion};
use priograph_algorithms::{astar, kcore, ppsp, setcover, sssp, wbfs};
use priograph_core::schedule::Schedule;
use priograph_graph::gen::GraphGen;
use priograph_parallel::Pool;

fn bench_algorithms(c: &mut Criterion) {
    let pool = Pool::with_available_parallelism();
    let social = GraphGen::rmat(12, 8)
        .seed(3)
        .weights_uniform(1, 1000)
        .build();
    let social_sym = social.symmetrize();
    let road = GraphGen::road_grid(48, 48).seed(3).build();
    let social_log = GraphGen::rmat(12, 8).seed(3).weights_log_n().build();

    let mut group = c.benchmark_group("algorithms");
    group.sample_size(10);

    group.bench_function("sssp_social", |b| {
        b.iter(|| {
            sssp::delta_stepping_on(&pool, &social, 0, &Schedule::eager_with_fusion(32))
                .unwrap()
                .dist
                .len()
        })
    });
    group.bench_function("wbfs_social", |b| {
        b.iter(|| {
            wbfs::wbfs_on(&pool, &social_log, 0, &Schedule::eager_with_fusion(1))
                .unwrap()
                .dist
                .len()
        })
    });
    group.bench_function("ppsp_road", |b| {
        let target = (road.num_vertices() / 2) as u32;
        b.iter(|| {
            ppsp::ppsp_on(
                &pool,
                &road,
                0,
                target,
                &Schedule::eager_with_fusion(1 << 11),
            )
            .unwrap()
            .distance
        })
    });
    group.bench_function("astar_road", |b| {
        let target = (road.num_vertices() - 1) as u32;
        let h = astar::euclidean_heuristic(&road, target, astar::road_metric_scale()).unwrap();
        b.iter(|| {
            astar::astar_on(
                &pool,
                &road,
                0,
                target,
                &Schedule::eager_with_fusion(1 << 11),
                &h,
            )
            .unwrap()
            .distance
        })
    });
    group.bench_function("kcore_social", |b| {
        b.iter(|| {
            kcore::kcore_on(&pool, &social_sym, &Schedule::lazy_constant_sum())
                .unwrap()
                .coreness
                .len()
        })
    });
    let instance = {
        // Small deterministic instance.
        let sets: Vec<Vec<u32>> = (0..2000)
            .map(|i| {
                ((i * 3) % 4000..((i * 3) % 4000 + 5).min(4000))
                    .map(|e| e as u32)
                    .collect()
            })
            .collect();
        setcover::SetCoverInstance::new(4000, sets)
    };
    group.bench_function("setcover", |b| {
        b.iter(|| {
            setcover::set_cover_on(&pool, &instance, &Schedule::lazy(1))
                .unwrap()
                .chosen
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
