//! Shared infrastructure for the table/figure reproduction binaries.
//!
//! Every binary regenerates one table or figure of the CGO 2020 paper (see
//! `DESIGN.md` §3 for the index). The workloads are seeded synthetic
//! stand-ins for the paper's datasets (Table 3), scaled to laptop size; the
//! `--scale` flag grows them when more fidelity is wanted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod record;
pub mod runners;
pub mod tables;
pub mod workloads;

use std::time::{Duration, Instant};

/// Times `f` once after one warm-up run.
pub fn time_once<F: FnMut()>(mut f: F) -> Duration {
    f(); // warm-up
    let start = Instant::now();
    f();
    start.elapsed()
}

/// Minimum elapsed time of `trials` runs (the paper averages over sources;
/// binaries apply that at a higher level and use min-of-trials per source
/// to suppress scheduling noise).
pub fn time_best_of<F: FnMut()>(trials: usize, mut f: F) -> Duration {
    f(); // warm-up
    let mut best = Duration::MAX;
    for _ in 0..trials.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

/// Picks `count` deterministic, distinct source vertices.
pub fn pick_sources(num_vertices: usize, count: usize) -> Vec<u32> {
    let count = count.min(num_vertices.max(1));
    (0..count)
        .map(|i| ((i as u64 * 2654435761 + 17) % num_vertices.max(1) as u64) as u32)
        .collect()
}

/// Picks `count` deterministic source vertices with non-zero out-degree
/// (GAPBS's source picker applies the same filter), falling back to plain
/// picks on edgeless graphs.
pub fn pick_useful_sources(graph: &priograph_graph::CsrGraph, count: usize) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut sources = Vec::with_capacity(count);
    let mut probe = 17u64;
    while sources.len() < count.min(n.max(1)) {
        let v = (probe % n.max(1) as u64) as u32;
        probe = probe.wrapping_mul(2654435761).wrapping_add(12345);
        if graph.out_degree(v) > 0 && !sources.contains(&v) {
            sources.push(v);
        }
        if probe == 17 {
            break; // cycled; give up on the degree filter
        }
    }
    if sources.is_empty() {
        return pick_sources(n, count);
    }
    sources
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_are_distinct_and_in_range() {
        let sources = pick_sources(1000, 10);
        assert_eq!(sources.len(), 10);
        let mut sorted = sources.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(sources.iter().all(|&s| (s as usize) < 1000));
    }

    #[test]
    fn timing_returns_nonzero() {
        let d = time_best_of(2, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(d > Duration::ZERO);
    }
}
