//! Seeded synthetic stand-ins for the paper's datasets (Table 3).
//!
//! | Name | Paper dataset | Stand-in |
//! |---|---|---|
//! | `LJ` | LiveJournal (5M/69M) | R-MAT, weights `[1, 1000)` |
//! | `OK` | Orkut (3M/234M) | denser R-MAT |
//! | `TW` | Twitter (41M/1.5B) | larger R-MAT |
//! | `WB` | WebGraph (101M/2B) | large sparse R-MAT |
//! | `MA` | Massachusetts roads (0.45M/1.2M) | small grid, metric weights |
//! | `GE` | Germany roads (12M/32M) | mid grid |
//! | `RD` | RoadUSA (24M/58M) | large grid |
//!
//! Default sizes keep every binary in seconds on a laptop; `scale` shifts
//! R-MAT scales and multiplies grid sides.

use priograph_graph::gen::GraphGen;
use priograph_graph::{CsrGraph, GraphSnapshot};
use std::path::Path;

/// A named workload graph.
pub struct Workload {
    /// Short dataset code (paper Table 3 abbreviation).
    pub name: &'static str,
    /// The generated directed graph.
    pub graph: CsrGraph,
    /// Road network? (drives Δ choice and A\* eligibility).
    pub is_road: bool,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}(|V|={}, |E|={})",
            self.name,
            self.graph.num_vertices(),
            self.graph.num_edges()
        )
    }
}

fn rmat(name: &'static str, scale_base: u32, edge_factor: u32, scale: u32) -> Workload {
    Workload {
        name,
        graph: GraphGen::rmat(scale_base + scale.saturating_sub(1), edge_factor)
            .seed(0xC60 + scale_base as u64)
            .weights_uniform(1, 1000)
            .build(),
        is_road: false,
    }
}

fn road(name: &'static str, side: usize, scale: u32) -> Workload {
    let side = side * scale.max(1) as usize;
    Workload {
        name,
        graph: GraphGen::road_grid(side, side)
            .seed(0xD0 + side as u64)
            .build(),
        is_road: true,
    }
}

/// LiveJournal stand-in.
pub fn lj(scale: u32) -> Workload {
    rmat("LJ", 14, 8, scale)
}

/// Orkut stand-in (denser).
pub fn ok(scale: u32) -> Workload {
    rmat("OK", 14, 16, scale)
}

/// Twitter stand-in (larger, skewed).
pub fn tw(scale: u32) -> Workload {
    rmat("TW", 15, 12, scale)
}

/// WebGraph stand-in.
pub fn wb(scale: u32) -> Workload {
    rmat("WB", 15, 8, scale)
}

/// Massachusetts road stand-in.
pub fn ma(scale: u32) -> Workload {
    road("MA", 120, scale)
}

/// Germany road stand-in.
pub fn ge(scale: u32) -> Workload {
    road("GE", 240, scale)
}

/// RoadUSA stand-in.
pub fn rd(scale: u32) -> Workload {
    road("RD", 360, scale)
}

/// The wBFS variants: social graphs with weights in `[1, log n)`
/// (Table 4's † graphs).
pub fn wbfs_variant(w: &Workload) -> CsrGraph {
    let scale = usize::BITS - 1 - w.graph.num_vertices().leading_zeros();
    GraphGen::rmat(scale, (w.graph.num_edges() / w.graph.num_vertices()) as u32)
        .seed(0xBF5)
        .weights_log_n()
        .build()
}

/// Default Δ for a workload (paper §6.2: social graphs want small Δ, road
/// networks 2^13–2^17; at our scale roads want ~2^10–2^13).
pub fn default_delta(w: &Workload) -> i64 {
    if w.is_road {
        1 << 12
    } else {
        32
    }
}

/// Version stamp baked into snapshot-cache filenames. **Bump this whenever
/// a generator in this module (or `priograph_graph::gen`) changes its
/// output** — a previously written snapshot is still a *valid* snapshot, so
/// the filename is the only thing that can invalidate it.
pub const SNAPSHOT_CACHE_VERSION: u32 = 1;

/// Loads `{dir}/{name}-c{SNAPSHOT_CACHE_VERSION}.snap` if it holds a valid
/// snapshot, else builds the graph and writes the snapshot for the next
/// run — the bench harness's `--snapshot DIR` amortization (generation
/// re-sorts every edge list; a snapshot load is one read plus fixed-width
/// decoding).
///
/// A corrupt or truncated snapshot silently falls back to `build` (and is
/// rewritten), so cache directories never wedge a bench run; write failures
/// only warn, since the measurement itself can proceed. A snapshot from an
/// *older generator* is only caught by the version stamp in the name — see
/// [`SNAPSHOT_CACHE_VERSION`].
pub fn load_or_snapshot(
    dir: Option<&Path>,
    name: &str,
    build: impl FnOnce() -> CsrGraph,
) -> CsrGraph {
    let Some(dir) = dir else {
        return build();
    };
    let path = dir.join(format!("{name}-c{SNAPSHOT_CACHE_VERSION}.snap"));
    if let Ok(graph) = GraphSnapshot::load(&path) {
        return graph;
    }
    let graph = build();
    if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| GraphSnapshot::write(&graph, &path))
    {
        eprintln!("warning: could not cache {}: {e}", path.display());
    }
    graph
}

/// [`ge`] with an optional snapshot cache (the perf suite's road workload);
/// metadata stays owned here so it cannot drift from the uncached builder.
pub fn ge_cached(scale: u32, dir: Option<&Path>) -> Workload {
    Workload {
        name: "GE",
        graph: load_or_snapshot(dir, &format!("GE-s{scale}"), || ge(scale).graph),
        is_road: true,
    }
}

/// [`lj`] with an optional snapshot cache (the perf suite's social
/// workload).
pub fn lj_cached(scale: u32, dir: Option<&Path>) -> Workload {
    Workload {
        name: "LJ",
        graph: load_or_snapshot(dir, &format!("LJ-s{scale}"), || lj(scale).graph),
        is_road: false,
    }
}

/// The social workloads used across tables.
pub fn social_suite(scale: u32) -> Vec<Workload> {
    vec![lj(scale), ok(scale), tw(scale), wb(scale)]
}

/// The road workloads used across tables.
pub fn road_suite(scale: u32) -> Vec<Workload> {
    vec![ma(scale), ge(scale), rd(scale)]
}

/// A random set cover instance shaped like the paper's symmetrized-graph
/// instances: `num_sets` sets over `num_elements` ground elements with a
/// skewed size distribution, every element coverable.
pub fn setcover_instance(
    num_elements: usize,
    num_sets: usize,
    seed: u64,
) -> priograph_algorithms::setcover::SetCoverInstance {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sets: Vec<Vec<u32>> = Vec::with_capacity(num_sets);
    for i in 0..num_sets {
        // Skewed sizes: a few large sets, many small ones.
        let max = if i % 17 == 0 { 64 } else { 8 };
        let size = rng.gen_range(1..=max);
        let mut set: Vec<u32> = (0..size)
            .map(|_| rng.gen_range(0..num_elements) as u32)
            .collect();
        set.sort_unstable();
        set.dedup();
        sets.push(set);
    }
    // Guarantee every element is coverable.
    for e in 0..num_elements {
        let s = rng.gen_range(0..num_sets);
        if !sets[s].contains(&(e as u32)) {
            sets[s].push(e as u32);
        }
    }
    priograph_algorithms::setcover::SetCoverInstance::new(num_elements, sets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn road_workloads_have_coords_and_symmetry() {
        let w = ma(1);
        assert!(w.is_road);
        assert!(w.graph.coords().is_some());
        assert!(w.graph.is_symmetric());
    }

    #[test]
    fn social_workloads_are_sized_sanely() {
        let w = lj(1);
        assert_eq!(w.graph.num_vertices(), 1 << 14);
        assert_eq!(w.graph.num_edges(), (1 << 14) * 8);
    }

    #[test]
    fn deltas_differ_by_family() {
        assert!(default_delta(&rd(1)) > default_delta(&lj(1)) * 10);
    }

    #[test]
    fn snapshot_cache_round_trips_and_survives_corruption() {
        let dir = std::env::temp_dir().join("priograph_workload_cache_test");
        let _ = std::fs::remove_dir_all(&dir);
        let build_count = std::cell::Cell::new(0u32);
        let build = || {
            build_count.set(build_count.get() + 1);
            ma(1).graph
        };
        let first = load_or_snapshot(Some(&dir), "MA", build);
        let second = load_or_snapshot(Some(&dir), "MA", build);
        assert_eq!(build_count.get(), 1, "second call must hit the cache");
        assert_eq!(first.edge_triples(), second.edge_triples());
        assert_eq!(
            first.coords().unwrap().len(),
            second.coords().unwrap().len()
        );
        // Corrupt the cache: the helper must rebuild, not fail.
        let cache_file = dir.join(format!("MA-c{SNAPSHOT_CACHE_VERSION}.snap"));
        assert!(cache_file.exists(), "cache name carries the version stamp");
        std::fs::write(cache_file, b"junk").unwrap();
        let third = load_or_snapshot(Some(&dir), "MA", build);
        assert_eq!(build_count.get(), 2);
        assert_eq!(first.edge_triples(), third.edge_triples());
        // No dir: always builds.
        let _ = load_or_snapshot(None, "MA", build);
        assert_eq!(build_count.get(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn setcover_instances_are_fully_coverable() {
        let inst = setcover_instance(500, 100, 3);
        assert!(inst.coverable().iter().all(|&c| c));
    }
}
