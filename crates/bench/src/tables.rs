//! Paper-style table printing.

use std::time::Duration;

/// Formats a duration like the paper's seconds columns (3 significant
/// figures, e.g. `0.093`).
pub fn secs(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 10.0 {
        format!("{s:.1}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.3}")
    }
}

/// Formats a slowdown factor like Figure 4's heatmap cells.
pub fn factor(x: f64) -> String {
    if x >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

/// Prints a header row followed by a separator.
pub fn header(title: &str, columns: &[&str]) {
    println!("\n=== {title} ===");
    let row: Vec<String> = columns.iter().map(|c| format!("{c:>12}")).collect();
    println!("{}", row.join(" "));
    println!("{}", "-".repeat(13 * columns.len()));
}

/// Prints one row: a left-aligned label and right-aligned cells.
pub fn row(label: &str, cells: &[String]) {
    let cells: Vec<String> = cells.iter().map(|c| format!("{c:>12}")).collect();
    println!("{label:>12} {}", cells[1..].join(" "));
}

/// Prints one row where the first column is the label.
pub fn row_label_first(label: &str, cells: &[String]) {
    let formatted: Vec<String> = cells.iter().map(|c| format!("{c:>12}")).collect();
    println!("{label:>12} {}", formatted.join(" "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_matches_paper_style() {
        assert_eq!(secs(Duration::from_millis(93)), "0.093");
        assert_eq!(secs(Duration::from_millis(3094)), "3.09");
        assert_eq!(secs(Duration::from_secs(16)), "16.0");
        assert_eq!(secs(Duration::from_secs(129)), "129");
    }

    #[test]
    fn factor_style() {
        assert_eq!(factor(1.0), "1.00");
        assert_eq!(factor(16.9), "16.9");
    }
}
