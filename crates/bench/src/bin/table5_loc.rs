//! **Table 5**: lines of code per algorithm, priograph vs the baseline
//! implementations in this repository.
//!
//! The priograph column counts the *algorithm specification*: the DSL
//! program (as pretty-printed from the AST, for SSSP/k-core) or the driver
//! function body (for the algorithms written against the library API). The
//! baseline columns count the corresponding function bodies in
//! `priograph-baselines`. Counting skips blank lines and `//` comments, as
//! line-count studies conventionally do.

use priograph_bench::tables;
use priograph_core::ir::programs;

/// Counts meaningful lines in a code string.
fn loc(code: &str) -> usize {
    code.lines()
        .map(str::trim)
        .filter(|l| {
            !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!") && !l.starts_with("///")
        })
        .count()
}

/// Extracts the body of `fn name` from `source` by brace matching.
fn extract_fn(source: &str, name: &str) -> Option<String> {
    let pattern = format!("fn {name}");
    let start = source.find(&pattern)?;
    let open = start + source[start..].find('{')?;
    let mut depth = 0usize;
    for (i, c) in source[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(source[start..=open + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

fn main() {
    let gapbs_src = include_str!("../../../baselines/src/gapbs.rs");
    let julienne_src = include_str!("../../../baselines/src/julienne.rs");
    let galois_src = include_str!("../../../baselines/src/galois.rs");
    let sssp_src = include_str!("../../../algorithms/src/sssp.rs");
    let ppsp_src = include_str!("../../../algorithms/src/ppsp.rs");
    let astar_src = include_str!("../../../algorithms/src/astar.rs");
    let _kcore_src = include_str!("../../../algorithms/src/kcore.rs");
    let setcover_src = include_str!("../../../algorithms/src/setcover.rs");

    let count_fn = |src: &str, name: &str| extract_fn(src, name).map(|b| loc(&b));
    let cell = |v: Option<usize>| v.map_or("-".to_string(), |n| n.to_string());

    // priograph's SSSP/k-core specs are the DSL programs themselves; the
    // other algorithms count their library-API driver functions.
    let sssp_spec = loc(&programs::delta_stepping().to_string()) + 4; // + schedule lines
    let kcore_spec = loc(&programs::kcore().to_string()) + 2;
    let ppsp_spec = count_fn(ppsp_src, "ppsp_on").unwrap_or(0);
    let astar_spec = count_fn(astar_src, "astar_on").unwrap_or(0)
        + count_fn(astar_src, "euclidean_heuristic").unwrap_or(0);
    let setcover_spec = count_fn(setcover_src, "set_cover_on").unwrap_or(0);

    // Baselines: the hand-written strategy implementations (the shared
    // bucket structure counts toward each algorithm using it, as Julienne's
    // bucketing does in the paper's counts).
    let julienne_buckets = count_fn(julienne_src, "next_bucket").unwrap_or(0)
        + count_fn(julienne_src, "insert").unwrap_or(0)
        + count_fn(julienne_src, "rewindow").unwrap_or(0);

    tables::header(
        "Table 5: lines of code",
        &["algorithm", "priograph", "GAPBS", "Galois", "Julienne"],
    );
    tables::row_label_first(
        "SSSP",
        &[
            sssp_spec.to_string(),
            cell(count_fn(gapbs_src, "sssp")),
            cell(
                count_fn(galois_src, "run")
                    .map(|n| n + count_fn(galois_src, "pop_from").unwrap_or(0)),
            ),
            cell(count_fn(julienne_src, "sssp").map(|n| n + julienne_buckets)),
        ],
    );
    tables::row_label_first(
        "PPSP",
        &[
            ppsp_spec.to_string(),
            "-".into(),
            cell(
                count_fn(galois_src, "ppsp").map(|n| n + count_fn(galois_src, "run").unwrap_or(0)),
            ),
            "-".into(),
        ],
    );
    tables::row_label_first(
        "A*",
        &[astar_spec.to_string(), "-".into(), "-".into(), "-".into()],
    );
    tables::row_label_first(
        "KCore",
        &[
            kcore_spec.to_string(),
            "-".into(),
            "-".into(),
            cell(count_fn(julienne_src, "kcore").map(|n| n + julienne_buckets)),
        ],
    );
    tables::row_label_first(
        "SetCover",
        &[
            setcover_spec.to_string(),
            "-".into(),
            "-".into(),
            cell(count_fn(julienne_src, "set_cover").map(|n| n + julienne_buckets)),
        ],
    );
    println!("\npaper reports (GraphIt/GAPBS/Galois/Julienne): SSSP 28/77/90/65,");
    println!("PPSP 24/80/99/103, A* 74/105/139/84, KCore 24/-/-/35, SetCover 70/-/-/72.");
    println!(
        "note: sanity check on the sssp driver itself: {} lines",
        count_fn(sssp_src, "delta_stepping_on").unwrap_or(0)
    );
}
