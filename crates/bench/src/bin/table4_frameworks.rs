//! **Table 4**: running time of the six algorithms across frameworks.
//!
//! Rows are frameworks, columns are workloads; `-` marks unsupported
//! combinations (matching the paper's dashes: Galois has no wBFS/k-core/
//! SetCover, GAPBS no k-core/SetCover, the unordered systems no SetCover).

use priograph_bench::cli::BenchArgs;
use priograph_bench::runners::*;
use priograph_bench::tables;
use priograph_bench::workloads::{self, Workload};
use priograph_parallel::Pool;
use std::time::Duration;

const FRAMEWORKS: [Framework; 6] = [
    Framework::Priograph,
    Framework::Gapbs,
    Framework::Galois,
    Framework::Julienne,
    Framework::Unordered,
    Framework::Ligra,
];

fn cell(t: Option<Duration>) -> String {
    t.map_or("-".into(), tables::secs)
}

fn print_block<F>(title: &str, workloads: &[&Workload], mut run: F)
where
    F: FnMut(&Workload, Framework) -> Option<Duration>,
{
    let mut cols = vec!["framework"];
    cols.extend(workloads.iter().map(|w| w.name));
    tables::header(title, &cols);
    for fw in FRAMEWORKS {
        let cells: Vec<String> = workloads.iter().map(|w| cell(run(w, fw))).collect();
        tables::row_label_first(fw.name(), &cells);
    }
}

fn main() {
    let args = BenchArgs::parse();
    let pool: Pool = args.pool();
    let suite = [
        workloads::lj(args.scale),
        workloads::ok(args.scale),
        workloads::tw(args.scale),
        workloads::wb(args.scale),
        workloads::ge(args.scale),
        workloads::rd(args.scale),
    ];
    let refs: Vec<&Workload> = suite.iter().collect();

    print_block("Table 4 (SSSP, seconds)", &refs, |w, fw| {
        sssp_time(&pool, w, args.sources, args.trials, fw)
    });

    print_block("Table 4 (PPSP, seconds)", &refs, |w, fw| {
        ppsp_time(&pool, w, args.sources, args.trials, fw)
    });

    // wBFS runs on the social graphs with [1, log n) weights.
    let social: Vec<&Workload> = refs.iter().copied().filter(|w| !w.is_road).collect();
    let wbfs_graphs: Vec<(&Workload, priograph_graph::CsrGraph)> = social
        .iter()
        .map(|w| (*w, workloads::wbfs_variant(w)))
        .collect();
    let mut cols = vec!["framework"];
    cols.extend(wbfs_graphs.iter().map(|(w, _)| w.name));
    tables::header("Table 4 (wBFS, seconds, weights [1, log n))", &cols);
    for fw in FRAMEWORKS {
        let cells: Vec<String> = wbfs_graphs
            .iter()
            .map(|(_, g)| cell(wbfs_time(&pool, g, args.sources, args.trials, fw)))
            .collect();
        tables::row_label_first(fw.name(), &cells);
    }

    // A* runs on the road graphs (coordinates available).
    let roads: Vec<&Workload> = refs.iter().copied().filter(|w| w.is_road).collect();
    print_block("Table 4 (A*, seconds)", &roads, |w, fw| {
        astar_time(&pool, w, args.sources, args.trials, fw)
    });

    // k-core runs on symmetrized graphs.
    let sym: Vec<(&Workload, priograph_graph::CsrGraph)> =
        refs.iter().map(|w| (*w, w.graph.symmetrize())).collect();
    let mut cols = vec!["framework"];
    cols.extend(sym.iter().map(|(w, _)| w.name));
    tables::header("Table 4 (k-core, seconds, symmetrized)", &cols);
    for fw in FRAMEWORKS {
        let cells: Vec<String> = sym
            .iter()
            .map(|(_, g)| cell(kcore_time(&pool, g, args.trials, fw)))
            .collect();
        tables::row_label_first(fw.name(), &cells);
    }

    // SetCover on synthetic instances sized to the workloads.
    let instances: Vec<(&str, priograph_algorithms::setcover::SetCoverInstance)> = refs
        .iter()
        .map(|w| {
            let elements = w.graph.num_vertices();
            (
                w.name,
                workloads::setcover_instance(elements, elements / 2, 0x5E7),
            )
        })
        .collect();
    let mut cols = vec!["framework"];
    cols.extend(instances.iter().map(|(n, _)| *n));
    tables::header("Table 4 (SetCover, seconds)", &cols);
    for fw in FRAMEWORKS {
        let cells: Vec<String> = instances
            .iter()
            .map(|(_, inst)| cell(setcover_time(&pool, inst, args.trials, fw)))
            .collect();
        tables::row_label_first(fw.name(), &cells);
    }

    println!("\nshape checks vs paper: GraphIt(ext) fastest or near-fastest everywhere;");
    println!("Julienne trails on road SSSP (lazy overhead); unordered rows 2-600x slower.");
}
