//! **§5.3 / §6.2 autotuning**: the autotuner should find a schedule within
//! ~5% of the hand-tuned one in 30-40 trials.

use priograph_algorithms::{kcore, sssp};
use priograph_autotune::{Autotuner, ScheduleSpace};
use priograph_bench::cli::BenchArgs;
use priograph_bench::workloads::{self, default_delta};
use priograph_bench::{pick_useful_sources, tables, time_once};
use priograph_core::schedule::Schedule;

fn main() {
    let args = BenchArgs::parse();
    let pool = args.pool();

    tables::header(
        "Autotuner vs hand-tuned",
        &[
            "workload", "hand(s)", "tuned(s)", "ratio", "trials", "space",
        ],
    );

    // SSSP on a social and a road workload.
    for w in [workloads::lj(args.scale), workloads::rd(args.scale)] {
        let source = pick_useful_sources(&w.graph, 1)[0];
        let hand_sched = Schedule::eager_with_fusion(default_delta(&w));
        let hand = time_once(|| {
            std::hint::black_box(
                sssp::delta_stepping_on(&pool, &w.graph, source, &hand_sched)
                    .unwrap()
                    .dist
                    .len(),
            );
        });
        let space = ScheduleSpace::sssp_like();
        let space_size = space.size();
        let tuner = Autotuner::new(space).trials(40).seed(0xCAFE);
        let result = tuner.tune(|s| {
            sssp::delta_stepping_on(&pool, &w.graph, source, s)
                .ok()
                .map(|_| {
                    time_once(|| {
                        std::hint::black_box(
                            sssp::delta_stepping_on(&pool, &w.graph, source, s)
                                .unwrap()
                                .dist
                                .len(),
                        );
                    })
                })
        });
        tables::row_label_first(
            &format!("SSSP/{}", w.name),
            &[
                tables::secs(hand),
                tables::secs(result.best_cost),
                format!("{:.2}", result.best_cost.as_secs_f64() / hand.as_secs_f64()),
                result.trials.len().to_string(),
                space_size.to_string(),
            ],
        );
        println!("    best schedule: {}", result.best);
    }

    // k-core on a social workload.
    let w = workloads::lj(args.scale);
    let sym = w.graph.symmetrize();
    let hand = time_once(|| {
        std::hint::black_box(
            kcore::kcore_on(&pool, &sym, &Schedule::lazy_constant_sum())
                .unwrap()
                .coreness
                .len(),
        );
    });
    let space = ScheduleSpace::kcore_like();
    let space_size = space.size();
    let tuner = Autotuner::new(space).trials(30).seed(0xBEEF);
    let result = tuner.tune(|s| {
        kcore::kcore_on(&pool, &sym, s).ok().map(|_| {
            time_once(|| {
                std::hint::black_box(kcore::kcore_on(&pool, &sym, s).unwrap().coreness.len());
            })
        })
    });
    tables::row_label_first(
        "kcore/LJ",
        &[
            tables::secs(hand),
            tables::secs(result.best_cost),
            format!("{:.2}", result.best_cost.as_secs_f64() / hand.as_secs_f64()),
            result.trials.len().to_string(),
            space_size.to_string(),
        ],
    );
    println!("    best schedule: {}", result.best);
    println!("\npaper: autotuner within 5% of hand-tuned after 30-40 trials (ratio <= ~1.05;");
    println!("ratios < 1 mean the tuner beat the hand-tuned default).");
}
