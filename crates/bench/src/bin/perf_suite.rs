//! The perf-tracking suite: measures the hot engine paths on fixed
//! workloads and writes a `BENCH_*.json` report (schema
//! `priograph-bench-v1`) so every perf PR can prove its trajectory with
//! `scripts/bench_compare`.
//!
//! Workloads are chosen to stress per-round bucket maintenance (the cost the
//! zero-allocation frontier pipeline targets): road-style grids are
//! round-heavy (high diameter, small buckets), social R-MATs are
//! frontier-heavy (few rounds, large buckets).
//!
//! ```text
//! perf_suite --out BENCH_PR2.json [--threads N] [--samples N] [--scale N]
//!            [--snapshot DIR]
//! ```
//!
//! `--snapshot DIR` caches the generated workload graphs as binary
//! snapshots (`priograph_graph::snapshot`): the first run pays generation
//! once, later runs load in O(file-read).

use priograph_algorithms::{kcore, sssp, wbfs};
use priograph_bench::record::{median, BenchReport};
use priograph_bench::workloads;
use priograph_core::schedule::Schedule;
use priograph_graph::gen::GraphGen;
use priograph_parallel::Pool;
use std::time::{Duration, Instant};

struct SuiteArgs {
    out: std::path::PathBuf,
    threads: usize,
    samples: usize,
    scale: u32,
    snapshot: Option<std::path::PathBuf>,
}

impl SuiteArgs {
    fn parse() -> Self {
        let mut args = SuiteArgs {
            out: std::path::PathBuf::from("BENCH_perf_suite.json"),
            threads: 4,
            samples: 5,
            scale: 1,
            snapshot: None,
        };
        let mut argv = std::env::args().skip(1);
        while let Some(flag) = argv.next() {
            let mut take = |what: &str| -> String {
                argv.next()
                    .unwrap_or_else(|| panic!("{what} expects a value"))
            };
            match flag.as_str() {
                "--out" => args.out = take("--out").into(),
                "--threads" => args.threads = take("--threads").parse().expect("--threads"),
                "--samples" => args.samples = take("--samples").parse().expect("--samples"),
                "--scale" => args.scale = take("--scale").parse().expect("--scale"),
                "--snapshot" => args.snapshot = Some(take("--snapshot").into()),
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --out PATH  --threads N  --samples N  --scale N  --snapshot DIR"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; see --help");
                    std::process::exit(2);
                }
            }
        }
        args.threads = args.threads.max(1);
        args.samples = args.samples.max(1);
        args
    }
}

/// Times `f` once per sample after one warm-up run, returning the median.
fn measure<F: FnMut()>(samples: usize, mut f: F) -> Duration {
    f(); // warm-up
    let mut timings = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        f();
        timings.push(start.elapsed());
    }
    median(&mut timings)
}

fn main() {
    let args = SuiteArgs::parse();
    let pool = Pool::new(args.threads);
    let mut report = BenchReport::new(args.threads);
    let samples = args.samples;

    let snap_dir = args.snapshot.as_deref();
    let scale = args.scale;

    // Road-style: high-diameter grid, the paper's RoadUSA stand-in family.
    let road = workloads::ge_cached(scale, snap_dir);
    let road_delta = workloads::default_delta(&road);
    let source = priograph_bench::pick_useful_sources(&road.graph, 1)[0];
    eprintln!("road workload: {road:?}, delta {road_delta}, source {source}");

    let run = |name: &str,
               report: &mut BenchReport,
               graph: &priograph_graph::CsrGraph,
               schedule: &Schedule,
               src: u32| {
        let t = measure(samples, || {
            let r = sssp::delta_stepping_on(&pool, graph, src, schedule).unwrap();
            std::hint::black_box(r.dist.len());
        });
        eprintln!("{name:<28} median {t:>12.3?}");
        report.push(name, t, samples);
    };

    run(
        "GE-sssp-lazy",
        &mut report,
        &road.graph,
        &Schedule::lazy(road_delta),
        source,
    );
    run(
        "GE-sssp-lazy-d64",
        &mut report,
        &road.graph,
        &Schedule::lazy(64),
        source,
    );
    run(
        "GE-sssp-eager-fusion",
        &mut report,
        &road.graph,
        &Schedule::eager_with_fusion(road_delta),
        source,
    );
    run(
        "GE-sssp-eager",
        &mut report,
        &road.graph,
        &Schedule::eager(road_delta),
        source,
    );

    // Road-style wBFS: same grid topology, weights in [1, log n).
    let side = 240 * args.scale.max(1) as usize;
    let road_wbfs = workloads::load_or_snapshot(snap_dir, &format!("GE-logw-s{scale}"), || {
        GraphGen::road_grid(side, side)
            .seed(0xD0 + side as u64)
            .weights_log_n()
            .build()
    });
    let t = measure(samples, || {
        let r = wbfs::wbfs_on(&pool, &road_wbfs, source, &Schedule::lazy(1)).unwrap();
        std::hint::black_box(r.dist.len());
    });
    eprintln!("{:<28} median {t:>12.3?}", "GE-wbfs-lazy");
    report.push("GE-wbfs-lazy", t, samples);

    // Social-style: frontier-heavy R-MAT (LiveJournal stand-in).
    let social = workloads::lj_cached(scale, snap_dir);
    let social_delta = workloads::default_delta(&social);
    let social_src = priograph_bench::pick_useful_sources(&social.graph, 1)[0];
    eprintln!("social workload: {social:?}, delta {social_delta}, source {social_src}");
    run(
        "LJ-sssp-lazy",
        &mut report,
        &social.graph,
        &Schedule::lazy(social_delta),
        social_src,
    );
    run(
        "LJ-sssp-eager-fusion",
        &mut report,
        &social.graph,
        &Schedule::eager_with_fusion(social_delta),
        social_src,
    );

    // k-core exercises the constant-sum lazy path.
    let social_sym = social.graph.symmetrize();
    let t = measure(samples, || {
        let r = kcore::kcore_on(&pool, &social_sym, &Schedule::lazy_constant_sum()).unwrap();
        std::hint::black_box(r.coreness.len());
    });
    eprintln!("{:<28} median {t:>12.3?}", "LJ-kcore-constant-sum");
    report.push("LJ-kcore-constant-sum", t, samples);

    report.write(&args.out).expect("writing bench report");
    eprintln!(
        "wrote {} ({} records, rev {}, {} threads)",
        args.out.display(),
        report.records.len(),
        report.git_rev,
        report.threads
    );
}
