//! Plan-quality comparison: **tuned vs. default vs. client-pinned** plans
//! over a live loopback server — the measurable claim behind the planning
//! layer.
//!
//! For each workload the same unpinned SSSP query stream is timed three
//! ways against an in-process `priograph-serve` server:
//!
//! * `plan-default` — the heuristic plan seeded from the graph's profile
//!   (what a fresh server executes with no tuning and no client hints);
//! * `plan-tuned` — after a wire `TuneGraph` run installed the autotuner's
//!   winner (paper §5.3/§6.2: 30–40 trials land within 5% of hand-tuned);
//! * `plan-pinned` — a client-pinned *plausible-but-wrong-family* schedule
//!   (the road workload pinned to the social-network Δ band and vice
//!   versa), standing in for the pre-planning world where every client
//!   guessed its own `WireSchedule`.
//!
//! Workloads: a road grid and an R-MAT social graph — the two shapes whose
//! optimal Δ differs by orders of magnitude (§6.2), so plan choice is
//! visible, not noise. Emits a `priograph-bench-v1` JSON report
//! (`BENCH_PR5_PLAN.json` is the committed record).
//!
//! ```text
//! plan_quality --out BENCH_plan_quality.json [--samples 5] [--queries 6]
//!              [--side 48] [--scale 8] [--budget 16] [--threads 2]
//! ```

use priograph_bench::record::{median, BenchReport};
use priograph_graph::gen::GraphGen;
use priograph_graph::CsrGraph;
use priograph_serve::client::Client;
use priograph_serve::protocol::{Query, QueryOp, Response, WireSchedule, WireStrategy};
use priograph_serve::server::{serve, ServerConfig};
use std::time::{Duration, Instant};

struct Args {
    out: std::path::PathBuf,
    samples: usize,
    queries: usize,
    side: usize,
    scale: u32,
    budget: u32,
    threads: usize,
}

impl Args {
    fn parse() -> Self {
        let mut args = Args {
            out: std::path::PathBuf::from("BENCH_plan_quality.json"),
            samples: 5,
            queries: 6,
            side: 48,
            scale: 8,
            budget: 16,
            threads: 2,
        };
        let mut argv = std::env::args().skip(1);
        while let Some(flag) = argv.next() {
            let mut take = |what: &str| -> String {
                argv.next()
                    .unwrap_or_else(|| panic!("{what} expects a value"))
            };
            match flag.as_str() {
                "--out" => args.out = take("--out").into(),
                "--samples" => args.samples = take("--samples").parse().expect("--samples"),
                "--queries" => args.queries = take("--queries").parse().expect("--queries"),
                "--side" => args.side = take("--side").parse().expect("--side"),
                "--scale" => args.scale = take("--scale").parse().expect("--scale"),
                "--budget" => args.budget = take("--budget").parse().expect("--budget"),
                "--threads" => args.threads = take("--threads").parse().expect("--threads"),
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --out PATH --samples N --queries N --side N --scale N \
                         --budget N --threads N"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}"),
            }
        }
        args
    }
}

/// The unpinned SSSP stream every configuration answers: deterministic
/// sources spread across the vertex range.
fn sssp_stream(n: u32, queries: usize, schedule: WireSchedule) -> Vec<Query> {
    (0..queries)
        .map(|i| {
            let mut q = Query::sssp(((i as u64 * 2 + 1) * n as u64 / (2 * queries as u64)) as u32);
            q.schedule = schedule;
            q
        })
        .collect()
}

/// Median wall time to answer `queries` over one connection.
fn measure_batch(client: &mut Client, queries: &[Query], samples: usize) -> Duration {
    let run = |client: &mut Client| {
        let responses = client.batch(queries.to_vec()).expect("batch");
        assert!(
            responses.iter().all(|r| matches!(r, Response::DistVec(_))),
            "all queries must succeed: {responses:?}"
        );
    };
    run(client); // warm-up (sizes engines, faults pages)
    let mut timings = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        run(client);
        timings.push(start.elapsed());
    }
    median(&mut timings)
}

/// Runs the three-way comparison for one workload; returns
/// `(default, pinned, tuned)` medians.
fn run_workload(
    report: &mut BenchReport,
    name: &str,
    graph: CsrGraph,
    pinned: WireSchedule,
    args: &Args,
) -> (Duration, Duration, Duration) {
    let n = graph.num_vertices() as u32;
    let handle = serve(
        graph,
        ServerConfig {
            threads: args.threads,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let unpinned = sssp_stream(n, args.queries, WireSchedule::default());
    let pinned_stream = sssp_stream(n, args.queries, pinned);

    // Order matters: default and pinned are measured BEFORE tuning so the
    // plan cache still holds the heuristic seed.
    let default_t = measure_batch(&mut client, &unpinned, args.samples);
    let pinned_t = measure_batch(&mut client, &pinned_stream, args.samples);
    let outcome = client
        .tune_graph(0, QueryOp::Sssp, args.budget)
        .expect("tune");
    eprintln!(
        "{name}: tuned to {} in {} trials (best {}us)",
        outcome.plan.summary(),
        outcome.trials_run,
        outcome.best_cost_micros
    );
    let tuned_t = measure_batch(&mut client, &unpinned, args.samples);
    handle.stop();

    eprintln!(
        "{name}: default {default_t:.3?}, pinned(wrong-family) {pinned_t:.3?}, \
         tuned {tuned_t:.3?}"
    );
    report.push_with_threads(
        format!("plan-default/{name}"),
        default_t,
        args.samples,
        args.threads,
    );
    report.push_with_threads(
        format!("plan-pinned/{name}"),
        pinned_t,
        args.samples,
        args.threads,
    );
    report.push_with_threads(
        format!("plan-tuned/{name}"),
        tuned_t,
        args.samples,
        args.threads,
    );
    (default_t, pinned_t, tuned_t)
}

fn main() {
    let args = Args::parse();
    let mut report = BenchReport::new(args.threads);

    // Road workload: large-Δ territory; the pinned guess is the social
    // band's Δ (§6.2's mismatch in one direction).
    let roads = GraphGen::road_grid(args.side, args.side).seed(11).build();
    run_workload(
        &mut report,
        &format!("grid{}", args.side),
        roads,
        WireSchedule {
            strategy: WireStrategy::Lazy,
            delta: 2,
        },
        &args,
    );

    // Social workload: small-Δ territory; the pinned guess is a road Δ.
    let social = GraphGen::rmat(args.scale, 8)
        .seed(13)
        .weights_uniform(1, 1000)
        .build();
    run_workload(
        &mut report,
        &format!("rmat{}", args.scale),
        social,
        WireSchedule {
            strategy: WireStrategy::Lazy,
            delta: 1 << 14,
        },
        &args,
    );

    report.write(&args.out).expect("write report");
    eprintln!("wrote {}", args.out.display());
}
