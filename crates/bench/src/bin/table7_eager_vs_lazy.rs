//! **Table 7**: performance impact of eager vs lazy bucket updates on
//! k-core and SSSP. The paper's shape: lazy (with constant-sum reduction)
//! wins k-core by 1.1-4.3x; eager wins SSSP by 1.8-43x.

use priograph_algorithms::{kcore, sssp};
use priograph_bench::cli::BenchArgs;
use priograph_bench::workloads::{self, default_delta};
use priograph_bench::{pick_useful_sources, tables, time_best_of};
use priograph_core::schedule::Schedule;

fn main() {
    let args = BenchArgs::parse();
    let pool = args.pool();
    let suite = [
        workloads::lj(args.scale),
        workloads::tw(args.scale),
        workloads::wb(args.scale),
        workloads::rd(args.scale),
    ];

    tables::header(
        "Table 7: eager vs lazy (seconds)",
        &[
            "graph",
            "kcore-eager",
            "kcore-lazy",
            "sssp-eager",
            "sssp-lazy",
        ],
    );
    for w in &suite {
        let sym = w.graph.symmetrize();
        let k_eager = time_best_of(args.trials, || {
            std::hint::black_box(
                kcore::kcore_on(&pool, &sym, &Schedule::eager(1))
                    .unwrap()
                    .coreness
                    .len(),
            );
        });
        // "Lazy update for k-core uses constant sum reduction optimization."
        let k_lazy = time_best_of(args.trials, || {
            std::hint::black_box(
                kcore::kcore_on(&pool, &sym, &Schedule::lazy_constant_sum())
                    .unwrap()
                    .coreness
                    .len(),
            );
        });

        let delta = default_delta(w);
        let source = pick_useful_sources(&w.graph, 1)[0];
        let s_eager = time_best_of(args.trials, || {
            std::hint::black_box(
                sssp::delta_stepping_on(
                    &pool,
                    &w.graph,
                    source,
                    &Schedule::eager_with_fusion(delta),
                )
                .unwrap()
                .dist
                .len(),
            );
        });
        let s_lazy = time_best_of(args.trials, || {
            std::hint::black_box(
                sssp::delta_stepping_on(&pool, &w.graph, source, &Schedule::lazy(delta))
                    .unwrap()
                    .dist
                    .len(),
            );
        });

        tables::row_label_first(
            w.name,
            &[
                tables::secs(k_eager),
                tables::secs(k_lazy),
                tables::secs(s_eager),
                tables::secs(s_lazy),
            ],
        );
    }
    println!("\npaper shape: lazy wins k-core (redundant updates buffered+histogrammed);");
    println!("eager wins SSSP (few redundant updates; buffering overhead dominates).");

    // Bucket-insert accounting explains the tradeoff (paper §6.4).
    tables::header(
        "bucket inserts per strategy (k-core)",
        &["graph", "eager-inserts", "lazy-inserts"],
    );
    for w in &suite {
        let sym = w.graph.symmetrize();
        let eager = kcore::kcore_on(&pool, &sym, &Schedule::eager(1)).unwrap();
        let lazy = kcore::kcore_on(&pool, &sym, &Schedule::lazy_constant_sum()).unwrap();
        tables::row_label_first(
            w.name,
            &[
                eager.stats.bucket_inserts.to_string(),
                lazy.stats.bucket_inserts.to_string(),
            ],
        );
    }
}
