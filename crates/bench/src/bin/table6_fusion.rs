//! **Table 6**: running time and number of synchronized rounds for SSSP
//! with and without bucket fusion. The paper's headline: RoadUSA drops from
//! 48,407 rounds to 1,069 and speeds up >3x.

use priograph_algorithms::sssp;
use priograph_bench::cli::BenchArgs;
use priograph_bench::workloads::{self, default_delta};
use priograph_bench::{pick_useful_sources, tables, time_best_of};
use priograph_core::schedule::Schedule;

fn main() {
    let args = BenchArgs::parse();
    let pool = args.pool();
    let suite = [
        workloads::tw(args.scale),
        workloads::wb(args.scale),
        workloads::ge(args.scale),
        workloads::rd(args.scale),
    ];

    tables::header(
        "Table 6: bucket fusion on SSSP",
        &[
            "graph",
            "fused-time",
            "fused-rnds",
            "plain-time",
            "plain-rnds",
            "rnd-reduc",
        ],
    );
    for w in &suite {
        let delta = default_delta(w);
        let source = pick_useful_sources(&w.graph, 1)[0];
        let fused_sched = Schedule::eager_with_fusion(delta);
        let plain_sched = Schedule::eager(delta);

        let fused = sssp::delta_stepping_on(&pool, &w.graph, source, &fused_sched).unwrap();
        let plain = sssp::delta_stepping_on(&pool, &w.graph, source, &plain_sched).unwrap();
        assert_eq!(fused.dist, plain.dist, "fusion must not change results");

        let t_fused = time_best_of(args.trials, || {
            std::hint::black_box(
                sssp::delta_stepping_on(&pool, &w.graph, source, &fused_sched)
                    .unwrap()
                    .dist
                    .len(),
            );
        });
        let t_plain = time_best_of(args.trials, || {
            std::hint::black_box(
                sssp::delta_stepping_on(&pool, &w.graph, source, &plain_sched)
                    .unwrap()
                    .dist
                    .len(),
            );
        });
        tables::row_label_first(
            w.name,
            &[
                tables::secs(t_fused),
                fused.stats.rounds.to_string(),
                tables::secs(t_plain),
                plain.stats.rounds.to_string(),
                format!(
                    "{:.1}x",
                    plain.stats.rounds as f64 / fused.stats.rounds.max(1) as f64
                ),
            ],
        );
    }
    println!("\npaper reports: TW 1489->1025, FT 7281->5604, WB 2248->772, RD 48407->1069 rounds");
}
