//! Release-mode smoke check: the default build must carry none of the
//! `check-shadow` race-detector instrumentation (see docs/ARCHITECTURE.md
//! "Correctness tooling"). CI's bench-smoke job runs this before trusting
//! any benchmark numbers.

fn main() {
    if priograph_parallel::SHADOW_CHECKS_ENABLED {
        eprintln!("shadow_smoke: FAIL — check-shadow instrumentation is compiled into this build");
        std::process::exit(1);
    }
    println!("shadow_smoke: ok — default build is instrumentation-free");
}
