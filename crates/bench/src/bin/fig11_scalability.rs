//! **Figure 11**: thread scalability of SSSP across frameworks on a social
//! (TW-like) and a road (RD-like) workload.

use priograph_bench::cli::BenchArgs;
use priograph_bench::runners::{sssp_time, Framework};
use priograph_bench::tables;
use priograph_bench::workloads;
use priograph_parallel::Pool;

fn main() {
    let args = BenchArgs::parse();
    let max_threads = args.threads;
    let mut thread_counts = vec![1usize];
    while *thread_counts.last().unwrap() * 2 <= max_threads {
        thread_counts.push(thread_counts.last().unwrap() * 2);
    }
    if *thread_counts.last().unwrap() != max_threads {
        thread_counts.push(max_threads);
    }

    let frameworks = [Framework::Priograph, Framework::Gapbs, Framework::Julienne];
    for w in [workloads::tw(args.scale), workloads::rd(args.scale)] {
        let mut cols = vec!["threads"];
        let names: Vec<&str> = frameworks.iter().map(|f| f.name()).collect();
        cols.extend(names.iter());
        tables::header(
            &format!("Figure 11: SSSP scalability on {} (seconds)", w.name),
            &cols,
        );
        let mut baseline: Vec<f64> = Vec::new();
        for &t in &thread_counts {
            let pool = Pool::new(t);
            let times: Vec<f64> = frameworks
                .iter()
                .map(|&f| {
                    sssp_time(&pool, &w, args.sources, args.trials, f)
                        .unwrap()
                        .as_secs_f64()
                })
                .collect();
            if baseline.is_empty() {
                baseline = times.clone();
            }
            let cells: Vec<String> = times
                .iter()
                .zip(&baseline)
                .map(|(t, b)| format!("{:.4} ({:.1}x)", t, b / t))
                .collect();
            tables::row_label_first(&t.to_string(), &cells);
        }
    }
    println!("\npaper shape: all frameworks scale on social graphs; on road graphs");
    println!("GraphIt keeps scaling via fusion while GAPBS/Julienne flatten.");
}
