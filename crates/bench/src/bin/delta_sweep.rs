//! **§6.2 "Delta Selection"**: SSSP time as a function of the coarsening
//! factor Δ, on a social and a road workload. The paper: best Δ is 1-100
//! for social networks, 2^13-2^17 for road networks.

use priograph_algorithms::sssp;
use priograph_bench::cli::BenchArgs;
use priograph_bench::workloads;
use priograph_bench::{pick_useful_sources, tables, time_best_of};
use priograph_core::schedule::Schedule;

fn main() {
    let args = BenchArgs::parse();
    let pool = args.pool();
    let deltas: Vec<i64> = (0..16).map(|p| 1i64 << p).collect();

    for w in [workloads::tw(args.scale), workloads::rd(args.scale)] {
        tables::header(
            &format!("Delta sweep: SSSP on {} (seconds)", w.name),
            &["delta", "time", "rounds", "relaxations"],
        );
        let source = pick_useful_sources(&w.graph, 1)[0];
        let mut best: Option<(i64, f64)> = None;
        for &delta in &deltas {
            let schedule = Schedule::eager_with_fusion(delta);
            let run = sssp::delta_stepping_on(&pool, &w.graph, source, &schedule).unwrap();
            let t = time_best_of(args.trials, || {
                std::hint::black_box(
                    sssp::delta_stepping_on(&pool, &w.graph, source, &schedule)
                        .unwrap()
                        .dist
                        .len(),
                );
            });
            let secs = t.as_secs_f64();
            if best.is_none_or(|(_, b)| secs < b) {
                best = Some((delta, secs));
            }
            tables::row_label_first(
                &delta.to_string(),
                &[
                    tables::secs(t),
                    run.stats.rounds.to_string(),
                    run.stats.relaxations.to_string(),
                ],
            );
        }
        let (best_delta, _) = best.unwrap();
        println!("best delta for {}: {best_delta}", w.name);
    }
    println!("\npaper shape: social best-delta small (work efficiency dominates);");
    println!("road best-delta large (parallelism/rounds dominate).");
}
