//! **Figure 4**: heatmap of per-framework slowdown relative to the fastest
//! framework, for SSSP / PPSP / k-core / SetCover on LJ, TW and RD
//! stand-ins. A value of 1.00 is the fastest; `-` means unsupported.

use priograph_bench::cli::BenchArgs;
use priograph_bench::runners::*;
use priograph_bench::tables;
use priograph_bench::workloads;
use std::time::Duration;

fn main() {
    let args = BenchArgs::parse();
    let pool = args.pool();
    let frameworks = [Framework::Priograph, Framework::Julienne, Framework::Galois];
    let suite = [
        workloads::lj(args.scale),
        workloads::tw(args.scale),
        workloads::rd(args.scale),
    ];

    // Collect (algorithm, graph) -> per-framework times.
    let mut grid: Vec<(String, Vec<Option<Duration>>)> = Vec::new();
    for w in &suite {
        let sym = w.graph.symmetrize();
        let inst =
            workloads::setcover_instance(w.graph.num_vertices(), w.graph.num_vertices() / 2, 7);
        let sssp: Vec<_> = frameworks
            .iter()
            .map(|&f| sssp_time(&pool, w, args.sources, args.trials, f))
            .collect();
        let ppsp: Vec<_> = frameworks
            .iter()
            .map(|&f| ppsp_time(&pool, w, args.sources, args.trials, f))
            .collect();
        let kcore: Vec<_> = frameworks
            .iter()
            .map(|&f| kcore_time(&pool, &sym, args.trials, f))
            .collect();
        let cover: Vec<_> = frameworks
            .iter()
            .map(|&f| setcover_time(&pool, &inst, args.trials, f))
            .collect();
        grid.push((format!("SSSP/{}", w.name), sssp));
        grid.push((format!("PPSP/{}", w.name), ppsp));
        grid.push((format!("kcore/{}", w.name), kcore));
        grid.push((format!("SetCover/{}", w.name), cover));
    }

    tables::header(
        "Figure 4: slowdown vs fastest (1.00 = best, lower is better)",
        &["cell", "GraphIt(ext)", "Julienne", "Galois"],
    );
    for (label, times) in &grid {
        let best = times
            .iter()
            .flatten()
            .min()
            .copied()
            .unwrap_or(Duration::from_secs(1));
        let cells: Vec<String> = times
            .iter()
            .map(|t| match t {
                Some(t) => tables::factor(t.as_secs_f64() / best.as_secs_f64()),
                None => "-".into(),
            })
            .collect();
        tables::row_label_first(label, &cells);
    }
    println!("\npaper reports: GraphIt 1.0 everywhere (except PPSP/LJ 1.06);");
    println!("Julienne up to 16.9x on road SSSP; Galois 1.0-1.94x where supported.");
}
