//! Serving-throughput sweep: drives a loopback `priograph-serve` server
//! across **batch sizes × thread counts × resident-graph counts** and
//! writes a `BENCH_*.json` report (schema `priograph-bench-v1`).
//!
//! This closes the ROADMAP item "benchmark serving throughput vs. batch
//! size": each record is the median wall time to answer `--queries`
//! point-to-point queries over one connection, issued in batches of the
//! given size, with queries round-robining across the resident graphs (so
//! multi-graph cases exercise the per-graph engine routing). The derived
//! metric is queries/s = queries / median.
//!
//! It also records the snapshot load paths head-to-head
//! (`snapshot-load-mmap` vs `snapshot-load-copy`) on a larger grid, the
//! O(mmap)-vs-O(copy) claim in measurable form.
//!
//! Since PR 8 every sweep configuration additionally records the
//! server-side latency distribution from the telemetry histograms
//! (`StatsV2`): per-query p50/p99 for `phase.total` and `phase.executed`
//! (records `serve-g*-t*-{total,executed}-{p50,p99}`), so serving-latency
//! tails are tracked alongside throughput medians.
//!
//! ```text
//! serve_throughput --out BENCH_serve.json [--threads 1,4] [--batches 1,8,64,256]
//!                  [--graphs 1,2] [--queries 512] [--samples 3] [--side 40]
//! ```

use priograph_bench::record::{median, BenchReport};
use priograph_graph::gen::GraphGen;
use priograph_graph::{CsrGraph, GraphSnapshot, SnapshotView};
use priograph_serve::client::Client;
use priograph_serve::protocol::Query;
use priograph_serve::server::{serve_named, ServerConfig};
use std::time::{Duration, Instant};

struct Args {
    out: std::path::PathBuf,
    threads: Vec<usize>,
    batches: Vec<usize>,
    graphs: Vec<usize>,
    queries: usize,
    samples: usize,
    side: usize,
}

fn parse_list(text: &str, what: &str) -> Vec<usize> {
    text.split(',')
        .map(|part| {
            part.trim()
                .parse::<usize>()
                .ok()
                .filter(|&v| v > 0)
                .unwrap_or_else(|| {
                    eprintln!("{what} expects a comma-separated list of positive integers");
                    std::process::exit(2);
                })
        })
        .collect()
}

impl Args {
    fn parse() -> Self {
        let mut args = Args {
            out: std::path::PathBuf::from("BENCH_serve_throughput.json"),
            threads: vec![1, 4],
            batches: vec![1, 8, 64, 256],
            graphs: vec![1, 2],
            queries: 512,
            samples: 3,
            side: 40,
        };
        let mut argv = std::env::args().skip(1);
        while let Some(flag) = argv.next() {
            let mut take = |what: &str| -> String {
                argv.next()
                    .unwrap_or_else(|| panic!("{what} expects a value"))
            };
            match flag.as_str() {
                "--out" => args.out = take("--out").into(),
                "--threads" => args.threads = parse_list(&take("--threads"), "--threads"),
                "--batches" => args.batches = parse_list(&take("--batches"), "--batches"),
                "--graphs" => args.graphs = parse_list(&take("--graphs"), "--graphs"),
                "--queries" => args.queries = take("--queries").parse().expect("--queries"),
                "--samples" => args.samples = take("--samples").parse().expect("--samples"),
                "--side" => args.side = take("--side").parse().expect("--side"),
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --out PATH  --threads LIST  --batches LIST  --graphs LIST\n\
                         \x20      --queries N  --samples N  --side N"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; see --help");
                    std::process::exit(2);
                }
            }
        }
        args.queries = args.queries.max(1);
        args.samples = args.samples.max(1);
        args.side = args.side.clamp(4, 2048);
        args
    }
}

/// Deterministic xorshift64* stream (same generator the client binary uses).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// The full query stream for one configuration: point queries round-robined
/// across `graph_count` resident graphs.
fn query_stream(n_vertices: u32, graph_count: usize, queries: usize, seed: u64) -> Vec<Query> {
    let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1));
    (0..queries)
        .map(|i| {
            let source = (rng.next() % n_vertices as u64) as u32;
            let target = (rng.next() % n_vertices as u64) as u32;
            Query::ppsp(source, target).on_graph((i % graph_count) as u32)
        })
        .collect()
}

/// Times `f` once per sample after one warm-up run, returning the median.
fn measure<F: FnMut()>(samples: usize, mut f: F) -> Duration {
    f(); // warm-up (also sizes the per-graph engines)
    let mut timings = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        f();
        timings.push(start.elapsed());
    }
    median(&mut timings)
}

fn main() {
    let args = Args::parse();
    let mut report = BenchReport::new(*args.threads.iter().max().unwrap_or(&1));

    // --- Snapshot load paths: O(mmap) vs O(copy) on a bigger graph. ---
    let load_side = (args.side * 5).clamp(100, 1000);
    let big = GraphGen::road_grid(load_side, load_side).seed(42).build();
    let snap_path = std::env::temp_dir().join("priograph_serve_throughput_load.snap");
    GraphSnapshot::write(&big, &snap_path).expect("write snapshot");
    let mmap_t = measure(args.samples, || {
        let view = SnapshotView::open(&snap_path).expect("open view");
        std::hint::black_box(view.graph().num_edges());
    });
    // The --mmap-populate knob: MAP_POPULATE + sequential advice. Page
    // cache is warm here (the file was just written), so this measures the
    // knob's overhead floor, not its cold-cache win — but it pins the path
    // and keeps the numbers comparable across runs.
    let populate_t = measure(args.samples, || {
        let view = SnapshotView::open_with(
            &snap_path,
            priograph_graph::MapOptions::populate_sequential(),
        )
        .expect("open view (populate)");
        std::hint::black_box(view.graph().num_edges());
    });
    let copy_t = measure(args.samples, || {
        let g = GraphSnapshot::load(&snap_path).expect("copy load");
        std::hint::black_box(g.num_edges());
    });
    let _ = std::fs::remove_file(&snap_path);
    eprintln!(
        "snapshot load ({} vertices, {} edges): mmap {mmap_t:.3?}, \
         mmap+populate {populate_t:.3?}, copy {copy_t:.3?}",
        big.num_vertices(),
        big.num_edges()
    );
    report.push_with_threads("snapshot-load-mmap", mmap_t, args.samples, 1);
    report.push_with_threads("snapshot-load-mmap-populate", populate_t, args.samples, 1);
    report.push_with_threads("snapshot-load-copy", copy_t, args.samples, 1);
    drop(big);

    // --- The serving sweep. ---
    let max_graphs = *args.graphs.iter().max().unwrap_or(&1);
    let graphs: Vec<CsrGraph> = (0..max_graphs)
        .map(|i| {
            GraphGen::road_grid(args.side, args.side)
                .seed(1 + i as u64)
                .build()
        })
        .collect();
    let n_vertices = graphs[0].num_vertices() as u32;

    for &graph_count in &args.graphs {
        for &threads in &args.threads {
            let named: Vec<(String, CsrGraph)> = graphs[..graph_count]
                .iter()
                .enumerate()
                .map(|(i, g)| (format!("g{i}"), g.clone()))
                .collect();
            let handle = serve_named(
                named,
                ServerConfig {
                    threads,
                    ..ServerConfig::default()
                },
            )
            .expect("bind loopback");
            let mut client = Client::connect(handle.addr()).expect("connect");
            let stream = query_stream(n_vertices, graph_count, args.queries, 7);

            for &batch in &args.batches {
                let t = measure(args.samples, || {
                    for chunk in stream.chunks(batch) {
                        let responses = client.batch(chunk.to_vec()).expect("batch");
                        std::hint::black_box(responses.len());
                    }
                });
                let qps = args.queries as f64 / t.as_secs_f64().max(1e-12);
                let name = format!("serve-g{graph_count}-t{threads}-b{batch}");
                eprintln!("{name:<28} median {t:>12.3?}  ({qps:>10.0} q/s)");
                report.push_with_threads(&name, t, args.samples, threads);
            }

            // Server-side latency distribution for this configuration, from
            // the v5 telemetry histograms: per-query p50/p99 across every
            // batch size just driven (phase.total = admission → reply
            // handoff; phase.executed = the engine window alone). These are
            // the observability PR's acceptance records — a regression here
            // is a serving-latency regression even if throughput medians
            // hold.
            let stats = client.stats_v2().expect("stats-v2");
            for phase in ["total", "executed"] {
                let series = stats
                    .series(&format!("phase.{phase}"))
                    .expect("phase series present");
                for (pct, value_us) in [("p50", series.p50_us), ("p99", series.p99_us)] {
                    report.push_with_threads(
                        format!("serve-g{graph_count}-t{threads}-{phase}-{pct}"),
                        Duration::from_micros(value_us),
                        series.count as usize,
                        threads,
                    );
                }
            }
            handle.stop();
        }
    }

    report.write(&args.out).expect("writing bench report");
    eprintln!(
        "wrote {} ({} records, rev {}, {} queries per record)",
        args.out.display(),
        report.records.len(),
        report.git_rev,
        args.queries
    );
}
