//! Diffs two `BENCH_*.json` reports (schema `priograph-bench-v1`) and
//! prints per-workload regressions/improvements for PR review.
//!
//! ```text
//! bench_compare BASELINE.json CANDIDATE.json [--regress-pct P] [--fail-on-regression]
//! ```
//!
//! With `--fail-on-regression`, exits 1 when any workload is slower than the
//! baseline by more than `--regress-pct` percent (default 5%).

use priograph_bench::record::{compare, render_comparison, BenchReport};

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut regress_pct = 5.0f64;
    let mut fail_on_regression = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--regress-pct" => {
                regress_pct = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--regress-pct expects a number");
            }
            "--fail-on-regression" => fail_on_regression = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_compare BASELINE.json CANDIDATE.json \
                     [--regress-pct P] [--fail-on-regression]"
                );
                std::process::exit(0);
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.len() != 2 {
        eprintln!("expected exactly two report paths; see --help");
        std::process::exit(2);
    }

    let base = BenchReport::load(std::path::Path::new(&paths[0])).unwrap_or_else(|e| {
        eprintln!("baseline: {e}");
        std::process::exit(2);
    });
    let new = BenchReport::load(std::path::Path::new(&paths[1])).unwrap_or_else(|e| {
        eprintln!("candidate: {e}");
        std::process::exit(2);
    });

    println!(
        "baseline {} ({} threads)  vs  candidate {} ({} threads)",
        base.git_rev, base.threads, new.git_rev, new.threads
    );
    let rows = compare(&base, &new);
    let (table, regressions) = render_comparison(&rows, regress_pct);
    print!("{table}");
    if regressions > 0 {
        println!("{regressions} regression(s) beyond {regress_pct}%");
        if fail_on_regression {
            std::process::exit(1);
        }
    }
}
