//! Diffs two `BENCH_*.json` reports (schema `priograph-bench-v1`) and
//! prints per-workload regressions/improvements for PR review.
//!
//! ```text
//! bench_compare BASELINE.json CANDIDATE.json \
//!     [--fail-ratio R] [--regress-pct P] [--fail-on-regression]
//! ```
//!
//! Exit status is the gate: any workload slower than `--fail-ratio` times
//! its baseline median (default 1.5x) exits 1, so CI's bench-smoke job
//! fails instead of merely uploading artifacts. `--fail-ratio 0` disables
//! the gate. The softer `--regress-pct` (default 5%) only labels table rows
//! unless `--fail-on-regression` promotes it to a gate too.

use priograph_bench::record::{compare, hard_regressions, render_comparison, BenchReport};

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut regress_pct = 5.0f64;
    let mut fail_ratio = 1.5f64;
    let mut fail_on_regression = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--regress-pct" => {
                regress_pct = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--regress-pct expects a number");
            }
            "--fail-ratio" => {
                fail_ratio = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--fail-ratio expects a number");
            }
            "--fail-on-regression" => fail_on_regression = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_compare BASELINE.json CANDIDATE.json \
                     [--fail-ratio R (default 1.5; 0 disables)] \
                     [--regress-pct P] [--fail-on-regression]"
                );
                std::process::exit(0);
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.len() != 2 {
        eprintln!("expected exactly two report paths; see --help");
        std::process::exit(2);
    }

    let base = BenchReport::load(std::path::Path::new(&paths[0])).unwrap_or_else(|e| {
        eprintln!("baseline: {e}");
        std::process::exit(2);
    });
    let new = BenchReport::load(std::path::Path::new(&paths[1])).unwrap_or_else(|e| {
        eprintln!("candidate: {e}");
        std::process::exit(2);
    });

    println!(
        "baseline {} ({} threads)  vs  candidate {} ({} threads)",
        base.git_rev, base.threads, new.git_rev, new.threads
    );
    let rows = compare(&base, &new);
    let (table, regressions) = render_comparison(&rows, regress_pct);
    print!("{table}");
    if regressions > 0 {
        println!("{regressions} regression(s) beyond {regress_pct}%");
        if fail_on_regression {
            std::process::exit(1);
        }
    }
    if fail_ratio > 0.0 {
        let hard = hard_regressions(&rows, fail_ratio);
        if !hard.is_empty() {
            println!(
                "FAIL: {} workload(s) slower than {fail_ratio}x baseline:",
                hard.len()
            );
            for row in hard {
                println!(
                    "  {}: {} -> {} ns",
                    row.name,
                    row.base_ns.unwrap_or(0),
                    row.new_ns.unwrap_or(0)
                );
            }
            std::process::exit(1);
        }
    }
}
