//! **Figures 9 and 10**: the generated pseudo-C++ for Δ-stepping under
//! three schedules, and the transformed constant-sum UDF for k-core.

use priograph_core::ir::{codegen, plan, programs, transform};
use priograph_core::schedule::{Direction, Schedule};

fn main() {
    let sssp = programs::delta_stepping();
    println!("=== Algorithm (Figure 3) ===\n{sssp}\n");

    let schedules = [
        ("Figure 9(a): lazy + SparsePush", Schedule::lazy(4)),
        (
            "Figure 9(b): lazy + DensePull",
            Schedule::lazy(4).config_apply_direction(Direction::DensePull),
        ),
        (
            "Figure 9(c): eager + SparsePush (with fusion)",
            Schedule::eager_with_fusion(4),
        ),
    ];
    for (title, schedule) in schedules {
        let plan = plan::lower(&sssp, &schedule).expect("legal schedule");
        println!("=== {title} ===");
        println!("schedule: {schedule}\n");
        println!("{}", codegen::emit_cpp(&sssp, &plan));
    }

    let kcore = programs::kcore();
    println!(
        "=== k-core UDF (Figure 10, top) ===\n{}\n",
        kcore.loop_udf().unwrap()
    );
    let transformed = transform::transform_constant_sum(kcore.loop_udf().unwrap()).unwrap();
    println!("=== transformed UDF (Figure 10, bottom) ===\n{transformed}");
}
