//! **Figure 1**: speedup of ordered algorithms (Δ-stepping SSSP, bucketed
//! k-core) over their unordered counterparts (Bellman-Ford, threshold-scan
//! peeling) on social and road workloads.

use priograph_bench::cli::BenchArgs;
use priograph_bench::runners::{kcore_time, sssp_time, Framework};
use priograph_bench::tables;
use priograph_bench::workloads;

fn main() {
    let args = BenchArgs::parse();
    let pool = args.pool();
    let workloads = [
        workloads::lj(args.scale),
        workloads::tw(args.scale),
        workloads::ge(args.scale),
        workloads::rd(args.scale),
    ];

    tables::header(
        "Figure 1: ordered vs unordered speedup",
        &["graph", "sssp-speedup", "kcore-speedup"],
    );
    for w in &workloads {
        let ordered = sssp_time(&pool, w, args.sources, args.trials, Framework::Priograph).unwrap();
        let unordered =
            sssp_time(&pool, w, args.sources, args.trials, Framework::Unordered).unwrap();
        let sssp_speedup = unordered.as_secs_f64() / ordered.as_secs_f64();

        let sym = w.graph.symmetrize();
        let k_ord = kcore_time(&pool, &sym, args.trials, Framework::Priograph).unwrap();
        let k_un = kcore_time(&pool, &sym, args.trials, Framework::Unordered).unwrap();
        let k_speedup = k_un.as_secs_f64() / k_ord.as_secs_f64();

        tables::row_label_first(
            w.name,
            &[
                format!("{:.1}x", sssp_speedup),
                format!("{:.1}x", k_speedup),
            ],
        );
    }
    println!("\npaper reports: SSSP 1.67x-600x, k-core 3x-60x (24-core machine, full-size graphs)");
}
