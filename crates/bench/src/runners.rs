//! Framework runners: one entry point per (algorithm, framework) cell of
//! paper Table 4.
//!
//! Framework mapping (see `DESIGN.md` §1): `Priograph*` rows run the core
//! engines under the corresponding schedule; `Gapbs`, `Julienne`, `Galois`
//! and `Ligra` run the strategy reimplementations in `priograph-baselines`.
//! For PPSP/wBFS/A\*, the GAPBS and Julienne cells reuse the core engines
//! under the baseline's strategy (eager-no-fusion / lazy), since those
//! frameworks' strategies are exactly those engine configurations.

use crate::workloads::{default_delta, Workload};
use crate::{pick_sources, pick_useful_sources, time_best_of};
use priograph_algorithms::{astar, kcore, ppsp, setcover, sssp, unordered, wbfs};
use priograph_baselines::{galois, gapbs, julienne, ligra};
use priograph_core::schedule::Schedule;
use priograph_parallel::Pool;
use std::time::Duration;

/// The frameworks compared in Table 4 / Figure 4 / Figure 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framework {
    /// GraphIt with the priority extension (best schedule).
    Priograph,
    /// GAPBS: hand-written eager, no fusion.
    Gapbs,
    /// Julienne: lazy with the lambda interface.
    Julienne,
    /// Galois: approximate priority ordering.
    Galois,
    /// GraphIt without the extension: unordered Bellman-Ford / peeling.
    Unordered,
    /// Ligra: unordered with direction switching.
    Ligra,
}

impl Framework {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Framework::Priograph => "GraphIt(ext)",
            Framework::Gapbs => "GAPBS",
            Framework::Julienne => "Julienne",
            Framework::Galois => "Galois",
            Framework::Unordered => "GraphIt(un)",
            Framework::Ligra => "Ligra",
        }
    }
}

/// Average-over-sources SSSP time for one framework, or `None` if the
/// framework does not support the algorithm.
pub fn sssp_time(
    pool: &Pool,
    w: &Workload,
    num_sources: usize,
    trials: usize,
    fw: Framework,
) -> Option<Duration> {
    let delta = default_delta(w);
    let sources = pick_useful_sources(&w.graph, num_sources);
    let mut total = Duration::ZERO;
    for &s in &sources {
        let t = match fw {
            // The paper hand-tunes GraphIt's schedule per graph (§6.2);
            // we pick the better of the two main strategies.
            Framework::Priograph => {
                let fused = time_best_of(trials, || {
                    let r = sssp::delta_stepping_on(
                        pool,
                        &w.graph,
                        s,
                        &Schedule::eager_with_fusion(delta),
                    )
                    .unwrap();
                    std::hint::black_box(r.dist.len());
                });
                let lazy = time_best_of(trials, || {
                    let r =
                        sssp::delta_stepping_on(pool, &w.graph, s, &Schedule::lazy(delta)).unwrap();
                    std::hint::black_box(r.dist.len());
                });
                fused.min(lazy)
            }
            Framework::Gapbs => time_best_of(trials, || {
                std::hint::black_box(gapbs::sssp(pool, &w.graph, s, delta).dist.len());
            }),
            Framework::Julienne => time_best_of(trials, || {
                std::hint::black_box(julienne::sssp(pool, &w.graph, s, delta).dist.len());
            }),
            Framework::Galois => time_best_of(trials, || {
                std::hint::black_box(galois::sssp(pool, &w.graph, s, delta).dist.len());
            }),
            Framework::Unordered => time_best_of(trials, || {
                std::hint::black_box(
                    unordered::bellman_ford_on(pool, &w.graph, s)
                        .unwrap()
                        .dist
                        .len(),
                );
            }),
            Framework::Ligra => time_best_of(trials, || {
                std::hint::black_box(ligra::bellman_ford(pool, &w.graph, s).dist.len());
            }),
        };
        total += t;
    }
    Some(total / sources.len() as u32)
}

/// Average-over-pairs PPSP time.
pub fn ppsp_time(
    pool: &Pool,
    w: &Workload,
    num_pairs: usize,
    trials: usize,
    fw: Framework,
) -> Option<Duration> {
    let delta = default_delta(w);
    let n = w.graph.num_vertices();
    let sources = pick_useful_sources(&w.graph, num_pairs);
    let targets = pick_sources(n, num_pairs * 2);
    let pairs: Vec<(u32, u32)> = sources
        .iter()
        .zip(targets.iter().rev())
        .map(|(&s, &t)| (s, t))
        .collect();
    let mut total = Duration::ZERO;
    for &(s, t) in &pairs {
        let d = match fw {
            Framework::Priograph => time_best_of(trials, || {
                std::hint::black_box(
                    ppsp::ppsp_on(pool, &w.graph, s, t, &Schedule::eager_with_fusion(delta))
                        .unwrap()
                        .distance,
                );
            }),
            // GAPBS's strategy for PPSP is the eager engine without fusion.
            Framework::Gapbs => time_best_of(trials, || {
                std::hint::black_box(
                    ppsp::ppsp_on(pool, &w.graph, s, t, &Schedule::eager(delta))
                        .unwrap()
                        .distance,
                );
            }),
            // Julienne's strategy is the lazy engine.
            Framework::Julienne => time_best_of(trials, || {
                std::hint::black_box(
                    ppsp::ppsp_on(pool, &w.graph, s, t, &Schedule::lazy(delta))
                        .unwrap()
                        .distance,
                );
            }),
            Framework::Galois => time_best_of(trials, || {
                std::hint::black_box(galois::ppsp(pool, &w.graph, s, t, delta).dist.len());
            }),
            Framework::Unordered => time_best_of(trials, || {
                std::hint::black_box(
                    unordered::bellman_ford_on(pool, &w.graph, s)
                        .unwrap()
                        .dist
                        .len(),
                );
            }),
            Framework::Ligra => time_best_of(trials, || {
                std::hint::black_box(ligra::bellman_ford(pool, &w.graph, s).dist.len());
            }),
        };
        total += d;
    }
    Some(total / pairs.len() as u32)
}

/// Average-over-sources wBFS time on a `[1, log n)`-weighted graph.
pub fn wbfs_time(
    pool: &Pool,
    graph: &priograph_graph::CsrGraph,
    num_sources: usize,
    trials: usize,
    fw: Framework,
) -> Option<Duration> {
    let sources = pick_useful_sources(graph, num_sources);
    let mut total = Duration::ZERO;
    for &s in &sources {
        let t = match fw {
            Framework::Priograph => time_best_of(trials, || {
                std::hint::black_box(
                    wbfs::wbfs_on(pool, graph, s, &Schedule::eager_with_fusion(1))
                        .unwrap()
                        .dist
                        .len(),
                );
            }),
            Framework::Gapbs => time_best_of(trials, || {
                std::hint::black_box(gapbs::sssp(pool, graph, s, 1).dist.len());
            }),
            Framework::Julienne => time_best_of(trials, || {
                std::hint::black_box(julienne::sssp(pool, graph, s, 1).dist.len());
            }),
            // Galois provides no wBFS (paper Table 4 dashes).
            Framework::Galois => return None,
            Framework::Unordered => time_best_of(trials, || {
                std::hint::black_box(
                    unordered::bellman_ford_on(pool, graph, s)
                        .unwrap()
                        .dist
                        .len(),
                );
            }),
            Framework::Ligra => time_best_of(trials, || {
                std::hint::black_box(ligra::bellman_ford(pool, graph, s).dist.len());
            }),
        };
        total += t;
    }
    Some(total / sources.len() as u32)
}

/// A\* time (road workloads only).
pub fn astar_time(
    pool: &Pool,
    w: &Workload,
    num_pairs: usize,
    trials: usize,
    fw: Framework,
) -> Option<Duration> {
    if !w.is_road {
        return None;
    }
    let delta = default_delta(w);
    let n = w.graph.num_vertices();
    let pairs: Vec<(u32, u32)> = pick_useful_sources(&w.graph, num_pairs)
        .into_iter()
        .zip(pick_sources(n, num_pairs * 2).into_iter().rev())
        .collect();
    let schedule = match fw {
        Framework::Priograph => Schedule::eager_with_fusion(delta),
        Framework::Gapbs => Schedule::eager(delta),
        Framework::Julienne => Schedule::lazy(delta),
        // Galois's ordered-list A* needs per-item priorities we do not
        // reproduce; the unordered rows fall back to Bellman-Ford.
        Framework::Galois => return None,
        Framework::Unordered | Framework::Ligra => {
            let sources: Vec<u32> = pairs.iter().map(|&(s, _)| s).collect();
            let mut total = Duration::ZERO;
            for &s in &sources {
                total += time_best_of(trials, || {
                    std::hint::black_box(
                        unordered::bellman_ford_on(pool, &w.graph, s)
                            .unwrap()
                            .dist
                            .len(),
                    );
                });
            }
            return Some(total / sources.len() as u32);
        }
    };
    let mut total = Duration::ZERO;
    for &(s, t) in &pairs {
        let h = astar::euclidean_heuristic(&w.graph, t, astar::road_metric_scale()).ok()?;
        total += time_best_of(trials, || {
            std::hint::black_box(
                astar::astar_on(pool, &w.graph, s, t, &schedule, &h)
                    .unwrap()
                    .distance,
            );
        });
    }
    Some(total / pairs.len() as u32)
}

/// k-core time on the symmetrized workload.
pub fn kcore_time(
    pool: &Pool,
    graph_sym: &priograph_graph::CsrGraph,
    trials: usize,
    fw: Framework,
) -> Option<Duration> {
    let t = match fw {
        Framework::Priograph => time_best_of(trials, || {
            std::hint::black_box(
                kcore::kcore_on(pool, graph_sym, &Schedule::lazy_constant_sum())
                    .unwrap()
                    .coreness
                    .len(),
            );
        }),
        Framework::Julienne => time_best_of(trials, || {
            std::hint::black_box(julienne::kcore(pool, graph_sym).dist.len());
        }),
        // GAPBS and Galois provide no k-core (paper Table 4 dashes).
        Framework::Gapbs | Framework::Galois => return None,
        Framework::Unordered | Framework::Ligra => time_best_of(trials, || {
            std::hint::black_box(
                unordered::kcore_unordered_on(pool, graph_sym)
                    .unwrap()
                    .coreness
                    .len(),
            );
        }),
    };
    Some(t)
}

/// SetCover time.
pub fn setcover_time(
    pool: &Pool,
    instance: &setcover::SetCoverInstance,
    trials: usize,
    fw: Framework,
) -> Option<Duration> {
    let t = match fw {
        Framework::Priograph => time_best_of(trials, || {
            std::hint::black_box(
                setcover::set_cover_on(pool, instance, &Schedule::lazy(1))
                    .unwrap()
                    .chosen
                    .len(),
            );
        }),
        Framework::Julienne => time_best_of(trials, || {
            std::hint::black_box(julienne::set_cover(pool, instance).0.len());
        }),
        _ => return None,
    };
    Some(t)
}
