//! Bench-result records: a tiny JSON schema (`priograph-bench-v1`) that perf
//! PRs use to prove wins over time.
//!
//! Every perf harness (the `perf_suite` binary, the vendored criterion shim)
//! emits a [`BenchReport`] — per-workload medians plus the thread count and
//! git revision they were measured at — into a `BENCH_*.json` file. The
//! `bench_compare` binary (wrapped by `scripts/bench_compare`) diffs two such
//! files and prints per-workload regressions/improvements for PR review.
//!
//! The JSON is hand-rolled in both directions because the build environment
//! has no crates.io access (no serde); the parser accepts exactly the subset
//! the emitter produces (objects, arrays, strings with `\"`/`\\` escapes,
//! and unsigned integers).

use std::fmt::Write as _;
use std::time::Duration;

/// Schema tag emitted and required by the parser.
pub const SCHEMA: &str = "priograph-bench-v1";

/// One measured workload: the median over `samples` timed runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// Workload id, e.g. `GE-sssp-lazy`.
    pub name: String,
    /// Median wall-clock time in nanoseconds.
    pub median_ns: u64,
    /// Number of timed samples the median was taken over.
    pub samples: u64,
    /// Worker threads the workload ran with.
    pub threads: u64,
    /// Optional self-describing unit for non-time measurements that ride
    /// in `median_ns` (e.g. `"ns-per-query"` for an inverted rate,
    /// `"ppm"` for an error rate, `"us"` for a latency percentile). The
    /// value must still be oriented smaller-is-better so the comparison
    /// tooling's regression direction holds. `None` (the wire default)
    /// means plain nanoseconds.
    pub unit: Option<String>,
}

/// A set of records measured at one git revision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchReport {
    /// `git rev-parse --short HEAD` at measurement time (or `unknown`).
    pub git_rev: String,
    /// Default thread count of the run (records may override per entry).
    pub threads: u64,
    /// The measurements.
    pub records: Vec<BenchRecord>,
}

impl BenchReport {
    /// Creates an empty report stamped with the current git revision.
    pub fn new(threads: usize) -> Self {
        BenchReport {
            git_rev: git_rev(),
            threads: threads as u64,
            records: Vec::new(),
        }
    }

    /// Appends one measurement.
    pub fn push(&mut self, name: impl Into<String>, median: Duration, samples: usize) {
        let threads = self.threads;
        self.push_with_threads(name, median, samples, threads as usize);
    }

    /// Appends one measurement taken at an explicit thread count.
    pub fn push_with_threads(
        &mut self,
        name: impl Into<String>,
        median: Duration,
        samples: usize,
        threads: usize,
    ) {
        self.records.push(BenchRecord {
            name: name.into(),
            median_ns: median.as_nanos().min(u64::MAX as u128) as u64,
            samples: samples as u64,
            threads: threads as u64,
            unit: None,
        });
    }

    /// Appends one raw measurement carrying a self-describing `unit`
    /// (see [`BenchRecord::unit`]). The value lands in `median_ns`
    /// unchanged and must be oriented smaller-is-better.
    pub fn push_value(&mut self, name: impl Into<String>, value: u64, samples: usize, unit: &str) {
        let threads = self.threads;
        self.records.push(BenchRecord {
            name: name.into(),
            median_ns: value,
            samples: samples as u64,
            threads,
            unit: Some(unit.to_string()),
        });
    }

    /// Serializes the report (pretty-printed, stable field order).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {},", quote(SCHEMA));
        let _ = writeln!(s, "  \"git_rev\": {},", quote(&self.git_rev));
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        s.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"name\": {}, \"median_ns\": {}, \"samples\": {}, \"threads\": {}",
                quote(&r.name),
                r.median_ns,
                r.samples,
                r.threads
            );
            if let Some(unit) = &r.unit {
                let _ = write!(s, ", \"unit\": {}", quote(unit));
            }
            s.push('}');
            s.push_str(if i + 1 == self.records.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a report emitted by [`BenchReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct.
    pub fn parse(text: &str) -> Result<Self, String> {
        let value = json::parse(text)?;
        let obj = value.as_object()?;
        let schema = obj.get_str("schema")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema {schema:?} (want {SCHEMA:?})"));
        }
        let mut records = Vec::new();
        for item in obj.get_array("records")? {
            let r = item.as_object()?;
            records.push(BenchRecord {
                name: r.get_str("name")?.to_string(),
                median_ns: r.get_u64("median_ns")?,
                samples: r.get_u64("samples")?,
                threads: r.get_u64("threads")?,
                unit: r.get_str_opt("unit")?.map(str::to_string),
            });
        }
        Ok(BenchReport {
            git_rev: obj.get_str("git_rev")?.to_string(),
            threads: obj.get_u64("threads")?,
            records,
        })
    }

    /// Writes the report to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads and parses a report from `path`.
    ///
    /// # Errors
    ///
    /// Reports both I/O and parse failures as strings.
    pub fn load(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// One row of a baseline-vs-candidate diff.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Workload name present in at least one report.
    pub name: String,
    /// Baseline median (ns), if the baseline has the workload.
    pub base_ns: Option<u64>,
    /// Candidate median (ns), if the candidate has the workload.
    pub new_ns: Option<u64>,
}

impl Comparison {
    /// Speedup ratio `base / new` (>1 is an improvement); `None` unless both
    /// sides are present and nonzero.
    pub fn speedup(&self) -> Option<f64> {
        match (self.base_ns, self.new_ns) {
            (Some(b), Some(n)) if b > 0 && n > 0 => Some(b as f64 / n as f64),
            _ => None,
        }
    }
}

/// Aligns two reports by workload name (baseline order first, then
/// candidate-only entries).
pub fn compare(base: &BenchReport, new: &BenchReport) -> Vec<Comparison> {
    let find = |records: &[BenchRecord], name: &str| {
        records.iter().find(|r| r.name == name).map(|r| r.median_ns)
    };
    let mut rows: Vec<Comparison> = base
        .records
        .iter()
        .map(|r| Comparison {
            name: r.name.clone(),
            base_ns: Some(r.median_ns),
            new_ns: find(&new.records, &r.name),
        })
        .collect();
    for r in &new.records {
        if rows.iter().all(|row| row.name != r.name) {
            rows.push(Comparison {
                name: r.name.clone(),
                base_ns: None,
                new_ns: Some(r.median_ns),
            });
        }
    }
    rows
}

/// Renders a comparison table; `regress_pct` marks rows slower by more than
/// that percentage. Returns `(table, num_regressions)`.
pub fn render_comparison(rows: &[Comparison], regress_pct: f64) -> (String, usize) {
    let mut out = String::new();
    let mut regressions = 0usize;
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>12} {:>9}  verdict",
        "workload", "base", "new", "delta"
    );
    for row in rows {
        let fmt_ns = |ns: Option<u64>| match ns {
            Some(ns) => format!("{:.3?}", Duration::from_nanos(ns)),
            None => "-".to_string(),
        };
        let (delta, verdict) = match row.speedup() {
            Some(s) => {
                let pct = (s - 1.0) * 100.0;
                let verdict = if pct <= -regress_pct {
                    regressions += 1;
                    "REGRESSION"
                } else if pct >= regress_pct {
                    "improved"
                } else {
                    "~same"
                };
                (format!("{pct:+.1}%"), verdict)
            }
            None => ("-".to_string(), "only one side"),
        };
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>12} {:>9}  {}",
            row.name,
            fmt_ns(row.base_ns),
            fmt_ns(row.new_ns),
            delta,
            verdict
        );
    }
    (out, regressions)
}

/// Workloads slower than `fail_ratio` times their baseline — the hard
/// regressions `bench_compare` (and CI's bench-smoke job) gates on. Rows
/// present on only one side never hard-fail (additions and removals are
/// reviewable in the table).
pub fn hard_regressions(rows: &[Comparison], fail_ratio: f64) -> Vec<&Comparison> {
    rows.iter()
        .filter(|row| match (row.base_ns, row.new_ns) {
            (Some(base), Some(new)) if base > 0 => new as f64 > base as f64 * fail_ratio,
            _ => false,
        })
        .collect()
}

/// Median of a set of sampled durations (empty input yields zero).
pub fn median(samples: &mut [Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Current short git revision: `$GIT_REV` if set, else `git rev-parse
/// --short HEAD`, else `unknown`.
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("GIT_REV") {
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON reader for the emitter's subset.
mod json {
    /// A parsed JSON value (subset: no floats, no bool/null).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// String literal.
        Str(String),
        /// Unsigned integer.
        Num(u64),
        /// Array of values.
        Array(Vec<Value>),
        /// Object as insertion-ordered pairs.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_object(&self) -> Result<Obj<'_>, String> {
            match self {
                Value::Object(pairs) => Ok(Obj(pairs)),
                other => Err(format!("expected object, found {other:?}")),
            }
        }
    }

    /// Borrowed view of an object with typed accessors.
    pub struct Obj<'a>(&'a [(String, Value)]);

    impl Obj<'_> {
        fn get(&self, key: &str) -> Result<&Value, String> {
            self.0
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing key {key:?}"))
        }

        pub fn get_str(&self, key: &str) -> Result<&str, String> {
            match self.get(key)? {
                Value::Str(s) => Ok(s),
                other => Err(format!("key {key:?}: expected string, found {other:?}")),
            }
        }

        /// As [`Obj::get_str`], but an absent key is `Ok(None)` rather
        /// than an error (for optional fields added after v1 shipped).
        pub fn get_str_opt(&self, key: &str) -> Result<Option<&str>, String> {
            match self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
                None => Ok(None),
                Some(Value::Str(s)) => Ok(Some(s)),
                Some(other) => Err(format!("key {key:?}: expected string, found {other:?}")),
            }
        }

        pub fn get_u64(&self, key: &str) -> Result<u64, String> {
            match self.get(key)? {
                Value::Num(n) => Ok(*n),
                other => Err(format!("key {key:?}: expected integer, found {other:?}")),
            }
        }

        pub fn get_array(&self, key: &str) -> Result<&[Value], String> {
            match self.get(key)? {
                Value::Array(items) => Ok(items),
                other => Err(format!("key {key:?}: expected array, found {other:?}")),
            }
        }
    }

    /// Parses one JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'"') => parse_string(bytes, pos).map(Value::Str),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut pairs = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    expect(bytes, pos, b':')?;
                    let value = parse_value(bytes, pos)?;
                    pairs.push((key, value));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                    }
                }
            }
            Some(c) if c.is_ascii_digit() => {
                let start = *pos;
                while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
                    *pos += 1;
                }
                std::str::from_utf8(&bytes[start..*pos])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .map(Value::Num)
                    .ok_or_else(|| format!("bad number at byte {start}"))
            }
            _ => Err(format!("unexpected input at byte {pos}")),
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {pos}"));
        }
        *pos += 1;
        let mut out = Vec::new();
        while let Some(&c) = bytes.get(*pos) {
            *pos += 1;
            match c {
                b'"' => {
                    return String::from_utf8(out).map_err(|_| "invalid utf-8".to_string());
                }
                b'\\' => {
                    let esc = bytes.get(*pos).copied();
                    *pos += 1;
                    match esc {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'n') => out.push(b'\n'),
                        _ => return Err(format!("unsupported escape at byte {}", *pos - 1)),
                    }
                }
                c => out.push(c),
            }
        }
        Err("unterminated string".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        let mut report = BenchReport {
            git_rev: "abc1234".to_string(),
            threads: 4,
            records: Vec::new(),
        };
        report.push("GE-sssp-lazy", Duration::from_micros(1500), 5);
        report.push_with_threads("LJ-\"quoted\"", Duration::from_nanos(42), 3, 2);
        report.push_value("knee-mixed-ns-per-query", 125_000, 6, "ns-per-query");
        report
    }

    #[test]
    fn json_roundtrip_preserves_report() {
        let report = sample_report();
        let parsed = BenchReport::parse(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
        assert_eq!(
            parsed.records[2].unit.as_deref(),
            Some("ns-per-query"),
            "the optional unit must survive the roundtrip"
        );
        assert_eq!(parsed.records[0].unit, None);
    }

    #[test]
    fn empty_report_roundtrips() {
        let report = BenchReport {
            git_rev: "unknown".into(),
            threads: 1,
            records: vec![],
        };
        assert_eq!(BenchReport::parse(&report.to_json()).unwrap(), report);
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        let text = r#"{"schema": "other", "git_rev": "x", "threads": 1, "records": []}"#;
        assert!(BenchReport::parse(text).unwrap_err().contains("schema"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(BenchReport::parse("not json").is_err());
        assert!(BenchReport::parse("{}").is_err());
        assert!(BenchReport::parse("{\"schema\": \"priograph-bench-v1\"} extra").is_err());
    }

    #[test]
    fn compare_aligns_by_name() {
        let mut base = BenchReport::new(4);
        base.git_rev = "base".into();
        base.push("a", Duration::from_millis(10), 5);
        base.push("gone", Duration::from_millis(1), 5);
        let mut new = BenchReport::new(4);
        new.git_rev = "new".into();
        new.push("a", Duration::from_millis(5), 5);
        new.push("added", Duration::from_millis(2), 5);
        let rows = compare(&base, &new);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].speedup(), Some(2.0));
        assert_eq!(rows[1].new_ns, None);
        assert_eq!(rows[2].base_ns, None);
    }

    #[test]
    fn render_flags_regressions() {
        let rows = vec![
            Comparison {
                name: "slower".into(),
                base_ns: Some(100),
                new_ns: Some(200),
            },
            Comparison {
                name: "faster".into(),
                base_ns: Some(200),
                new_ns: Some(100),
            },
        ];
        let (table, regressions) = render_comparison(&rows, 5.0);
        assert_eq!(regressions, 1);
        assert!(table.contains("REGRESSION"));
        assert!(table.contains("improved"));
    }

    #[test]
    fn hard_regressions_apply_the_ratio() {
        let rows = vec![
            Comparison {
                name: "bad".into(),
                base_ns: Some(100),
                new_ns: Some(200),
            },
            Comparison {
                name: "borderline".into(),
                base_ns: Some(100),
                new_ns: Some(150),
            },
            Comparison {
                name: "fine".into(),
                base_ns: Some(100),
                new_ns: Some(149),
            },
            Comparison {
                name: "new-only".into(),
                base_ns: None,
                new_ns: Some(999),
            },
        ];
        let bad: Vec<&str> = hard_regressions(&rows, 1.5)
            .iter()
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(bad, vec!["bad"], "strictly-beyond-ratio only");
        assert_eq!(hard_regressions(&rows, 1.0).len(), 3);
        assert!(hard_regressions(&rows, 2.0).is_empty());
    }

    #[test]
    fn median_of_samples() {
        let mut s = vec![
            Duration::from_nanos(5),
            Duration::from_nanos(1),
            Duration::from_nanos(9),
        ];
        assert_eq!(median(&mut s), Duration::from_nanos(5));
        assert_eq!(median(&mut []), Duration::ZERO);
    }
}
