//! Minimal flag parsing shared by the experiment binaries.

/// Common options for experiment binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Workload scale multiplier (R-MAT scale shift / grid side multiplier).
    pub scale: u32,
    /// Worker threads (defaults to available parallelism).
    pub threads: usize,
    /// Timing trials per measurement.
    pub trials: usize,
    /// Sources (or source/destination pairs) per algorithm.
    pub sources: usize,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: 1,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            trials: 2,
            sources: 3,
        }
    }
}

impl BenchArgs {
    /// Parses `--scale N --threads N --trials N --sources N` from argv.
    /// Unknown flags abort with usage help.
    pub fn parse() -> Self {
        let mut args = BenchArgs::default();
        let mut argv = std::env::args().skip(1);
        while let Some(flag) = argv.next() {
            let mut take_raw = |what: &str| -> String {
                argv.next()
                    .unwrap_or_else(|| panic!("{what} expects a value"))
            };
            let parse_num = |v: String, what: &str| -> usize {
                v.parse()
                    .unwrap_or_else(|_| panic!("{what} expects a positive integer"))
            };
            match flag.as_str() {
                "--scale" => args.scale = parse_num(take_raw("--scale"), "--scale") as u32,
                "--threads" => {
                    args.threads = parse_num(take_raw("--threads"), "--threads").max(1);
                }
                "--trials" => args.trials = parse_num(take_raw("--trials"), "--trials").max(1),
                "--sources" => args.sources = parse_num(take_raw("--sources"), "--sources").max(1),
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --scale N (workload size multiplier)  --threads N  --trials N  \
                         --sources N"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; see --help");
                    std::process::exit(2);
                }
            }
        }
        args
    }

    /// Builds the worker pool.
    pub fn pool(&self) -> priograph_parallel::Pool {
        priograph_parallel::Pool::new(self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let args = BenchArgs::default();
        assert!(args.threads >= 1);
        assert_eq!(args.scale, 1);
        assert!(args.trials >= 1);
    }
}
