//! Snapshot robustness over the bundled workloads (ISSUE 3 satellite):
//! every Table 3 stand-in must roundtrip bit-exactly through the binary
//! snapshot format, and corrupted files must fail cleanly (`Err`, never a
//! panic and never an attacker-sized allocation).

use priograph_bench::workloads;
use priograph_graph::{CsrGraph, GraphSnapshot, SnapshotError};

fn all_workloads() -> Vec<workloads::Workload> {
    let mut all = workloads::social_suite(1);
    all.extend(workloads::road_suite(1));
    all
}

fn assert_graphs_equal(name: &str, a: &CsrGraph, b: &CsrGraph) {
    assert_eq!(a.num_vertices(), b.num_vertices(), "{name} vertex count");
    assert_eq!(a.edge_triples(), b.edge_triples(), "{name} out-edges");
    assert_eq!(a.is_symmetric(), b.is_symmetric(), "{name} symmetry flag");
    for v in a.vertices() {
        assert_eq!(a.in_edges(v), b.in_edges(v), "{name} in-edges of {v}");
    }
    match (a.coords(), b.coords()) {
        (None, None) => {}
        (Some(ca), Some(cb)) => assert_eq!(ca, cb, "{name} coordinates"),
        _ => panic!("{name}: coords presence differs"),
    }
}

#[test]
fn every_bundled_workload_roundtrips() {
    for w in all_workloads() {
        let bytes = GraphSnapshot::to_bytes(&w.graph);
        let loaded = GraphSnapshot::from_bytes(&bytes).unwrap_or_else(|e| {
            panic!("{}: decode failed: {e}", w.name);
        });
        assert_graphs_equal(w.name, &w.graph, &loaded);
        // Re-encoding the decoded graph must be byte-identical (the format
        // is canonical), so snapshot files can be content-compared.
        assert_eq!(
            bytes,
            GraphSnapshot::to_bytes(&loaded),
            "{} re-encode not canonical",
            w.name
        );
    }
}

#[test]
fn symmetrized_workload_roundtrips_with_flag() {
    // k-core serving path: the symmetrized view keeps its marker bit.
    let sym = workloads::lj(1).graph.symmetrize();
    assert!(sym.is_symmetric());
    let loaded = GraphSnapshot::from_bytes(&GraphSnapshot::to_bytes(&sym)).unwrap();
    assert!(loaded.is_symmetric());
    assert_graphs_equal("LJ-sym", &sym, &loaded);
}

#[test]
fn truncations_of_a_real_workload_error_cleanly() {
    // MA is the smallest bundled workload; cut its snapshot at a spread of
    // points including every boundary region.
    let bytes = GraphSnapshot::to_bytes(&workloads::ma(1).graph);
    let len = bytes.len();
    let mut cuts: Vec<usize> = vec![0, 1, 7, 8, 11, 12, 19, 20, 27, 28];
    cuts.extend((1..16).map(|i| i * len / 16));
    cuts.extend([len - 9, len - 8, len - 1]);
    for cut in cuts {
        match GraphSnapshot::from_bytes(&bytes[..cut]) {
            Err(_) => {}
            Ok(_) => panic!("truncation at {cut}/{len} must not decode"),
        }
    }
}

#[test]
fn bad_magic_and_bad_checksum_error_cleanly() {
    let mut bytes = GraphSnapshot::to_bytes(&workloads::ma(1).graph);
    let good = bytes.clone();

    bytes[..5].copy_from_slice(b"WRONG");
    assert!(matches!(
        GraphSnapshot::from_bytes(&bytes).unwrap_err(),
        SnapshotError::BadMagic
    ));

    // Flip one bit in each region of the payload: all must fail the
    // checksum (or structural validation), none may panic.
    for pos in [9usize, 40, good.len() / 3, good.len() / 2, good.len() - 12] {
        let mut corrupt = good.clone();
        corrupt[pos] ^= 0x10;
        assert!(
            GraphSnapshot::from_bytes(&corrupt).is_err(),
            "bit flip at {pos} must not decode"
        );
    }
}

#[test]
fn header_lies_cannot_cause_outsized_allocations() {
    // Override each header count field with huge values; with ~100KB of
    // actual bytes behind them, decode must reject before allocating
    // count-proportional memory (this test OOMs if it ever does not).
    // PSNAPv2 header: num_vertices at byte 16, num_edges at byte 24.
    let good = GraphSnapshot::to_bytes(&workloads::ma(1).graph);
    for (version, bytes, offsets) in [
        (2, good, [16usize, 24]),
        // The legacy v1 header keeps its counts at 12 and 20.
        (
            1,
            GraphSnapshot::to_bytes_v1(&workloads::ma(1).graph),
            [12, 20],
        ),
    ] {
        for field_offset in offsets {
            for lie in [u64::MAX, 1 << 61, 1 << 40, 1 << 33] {
                let mut corrupt = bytes.clone();
                corrupt[field_offset..field_offset + 8].copy_from_slice(&lie.to_le_bytes());
                assert!(
                    GraphSnapshot::from_bytes(&corrupt).is_err(),
                    "v{version}: lying count {lie:#x} at {field_offset} must not decode"
                );
            }
        }
    }
}
