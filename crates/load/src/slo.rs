//! The committed per-mix SLO file (`slo.toml` at the repo root).
//!
//! PR 9 left the SLO budgets as CLI flags, which meant the promise being
//! gated lived in whatever command line CI happened to run. This module
//! makes the promise a **committed artifact**: one TOML file declaring,
//! per workload mix, the p99 budget and the completion floor the knee
//! ladder enforces, plus the lane-fairness degradation bound the tune-storm
//! harness (`load_lane`) gates on. `load_knee` and `load_lane` read it by
//! default; explicit CLI flags still override for experiments.
//!
//! The parser is a dependency-free subset of TOML — exactly what the SLO
//! file needs and nothing more:
//!
//! * `[section]` headers (dotted names allowed, e.g. `[mix.point-heavy]`);
//! * `key = value` pairs with **numeric** values (integers or floats);
//! * `#` comments and blank lines.
//!
//! Strings, arrays, inline tables, and multi-line values are rejected
//! loudly — the file stays simple enough that the shim cannot silently
//! mis-read it. Every `mix.*` and `lane.*` section is validated at parse
//! time, so CI fails on a malformed committed file before any server is
//! even started.

use std::collections::BTreeMap;

/// The SLO a workload mix must keep: the knee ladder's budget and floor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixSlo {
    /// Open-loop p99 budget, µs (from `p99_budget_ms`).
    pub p99_budget_us: u64,
    /// Minimum completed/scheduled fraction for a rung to sustain.
    pub min_completion: f64,
}

/// The lane-fairness SLO for one mix: how much a concurrent tune storm is
/// allowed to move the mix's p99.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneSlo {
    /// Max allowed `storm p99 / baseline p99` ratio.
    pub storm_p99_ratio_max: f64,
    /// Absolute grace floor, µs: a storm p99 at or under this never fails
    /// the ratio gate (guards the gate against timer noise when the
    /// baseline is a handful of milliseconds).
    pub storm_p99_floor_us: u64,
}

/// A parsed SLO file: validated `mix.*` / `lane.*` sections (unknown
/// sections are kept but unused, so the file can grow fields before the
/// code that reads them lands).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SloFile {
    sections: BTreeMap<String, BTreeMap<String, f64>>,
}

/// The conventional location: `slo.toml` in the current directory (CI and
/// the committed bench records both run from the repo root).
pub const DEFAULT_SLO_PATH: &str = "slo.toml";

fn parse_number(raw: &str) -> Option<f64> {
    let raw = raw.trim();
    if raw.is_empty() {
        return None;
    }
    // Underscore separators are TOML-legal for numbers (50_000).
    let cleaned: String = raw.chars().filter(|c| *c != '_').collect();
    cleaned.parse::<f64>().ok().filter(|v| v.is_finite())
}

impl SloFile {
    /// Parses and validates SLO text.
    ///
    /// # Errors
    ///
    /// Any line that is not a section header, a `key = number` pair, a
    /// comment, or blank; duplicate keys; or a `mix.*`/`lane.*` section
    /// failing its field validation.
    pub fn parse(text: &str) -> Result<SloFile, String> {
        let mut sections: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
        let mut current: Option<String> = None;
        for (idx, raw_line) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = match raw_line.find('#') {
                Some(pos) => &raw_line[..pos],
                None => raw_line,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name
                    .strip_suffix(']')
                    .ok_or_else(|| format!("slo.toml:{line_no}: unterminated section header"))?
                    .trim();
                if name.is_empty()
                    || !name
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_'))
                {
                    return Err(format!("slo.toml:{line_no}: bad section name {name:?}"));
                }
                if sections.contains_key(name) {
                    return Err(format!("slo.toml:{line_no}: duplicate section [{name}]"));
                }
                sections.insert(name.to_string(), BTreeMap::new());
                current = Some(name.to_string());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "slo.toml:{line_no}: expected `key = number`, got {line:?}"
                ));
            };
            let key = key.trim();
            let Some(section) = &current else {
                return Err(format!(
                    "slo.toml:{line_no}: key {key:?} before any [section]"
                ));
            };
            let Some(number) = parse_number(value) else {
                return Err(format!(
                    "slo.toml:{line_no}: value for {key:?} must be a plain number \
                     (strings/arrays are not supported), got {:?}",
                    value.trim()
                ));
            };
            // lint: allow-panic `current` guarantees the section exists
            let table = sections.get_mut(section).expect("section inserted above");
            if table.insert(key.to_string(), number).is_some() {
                return Err(format!(
                    "slo.toml:{line_no}: duplicate key {key:?} in [{section}]"
                ));
            }
        }
        let file = SloFile { sections };
        file.validate()?;
        Ok(file)
    }

    /// Reads and parses `path`.
    ///
    /// # Errors
    ///
    /// IO failure or any [`SloFile::parse`] error.
    pub fn load(path: &std::path::Path) -> Result<SloFile, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        SloFile::parse(&text)
    }

    fn validate(&self) -> Result<(), String> {
        for (name, table) in &self.sections {
            if let Some(mix) = name.strip_prefix("mix.") {
                let budget = require(table, name, "p99_budget_ms")?;
                if budget <= 0.0 {
                    return Err(format!("[{name}]: p99_budget_ms must be positive"));
                }
                let completion = require(table, name, "min_completion")?;
                if !(0.0..=1.0).contains(&completion) {
                    return Err(format!("[{name}]: min_completion must be within [0, 1]"));
                }
                if mix.is_empty() {
                    return Err(format!("[{name}]: empty mix name"));
                }
            } else if let Some(mix) = name.strip_prefix("lane.") {
                let ratio = require(table, name, "storm_p99_ratio_max")?;
                if ratio < 1.0 {
                    return Err(format!("[{name}]: storm_p99_ratio_max must be >= 1"));
                }
                let floor = require(table, name, "storm_p99_floor_us")?;
                if floor < 0.0 {
                    return Err(format!("[{name}]: storm_p99_floor_us must be >= 0"));
                }
                if mix.is_empty() {
                    return Err(format!("[{name}]: empty mix name"));
                }
            }
        }
        Ok(())
    }

    /// The SLO for `mix`, if the file declares one.
    pub fn mix(&self, mix: &str) -> Option<MixSlo> {
        let table = self.sections.get(&format!("mix.{mix}"))?;
        Some(MixSlo {
            // Validation guaranteed presence and range; saturate on cast.
            p99_budget_us: (table.get("p99_budget_ms").copied()? * 1_000.0) as u64,
            min_completion: table.get("min_completion").copied()?,
        })
    }

    /// The lane-fairness SLO for `mix`, if the file declares one.
    pub fn lane(&self, mix: &str) -> Option<LaneSlo> {
        let table = self.sections.get(&format!("lane.{mix}"))?;
        Some(LaneSlo {
            storm_p99_ratio_max: table.get("storm_p99_ratio_max").copied()?,
            storm_p99_floor_us: table.get("storm_p99_floor_us").copied()? as u64,
        })
    }

    /// Names of every mix with a `[mix.*]` section, sorted.
    pub fn mix_names(&self) -> Vec<String> {
        self.sections
            .keys()
            .filter_map(|k| k.strip_prefix("mix."))
            .map(str::to_string)
            .collect()
    }
}

fn require(table: &BTreeMap<String, f64>, section: &str, key: &str) -> Result<f64, String> {
    table
        .get(key)
        .copied()
        .ok_or_else(|| format!("[{section}]: missing required key {key}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# serving SLOs
[mix.point-heavy]
p99_budget_ms = 50
min_completion = 0.95

[mix.scan-heavy]
p99_budget_ms = 75  # scans are slower
min_completion = 0.90

[lane.point-heavy]
storm_p99_ratio_max = 2.0
storm_p99_floor_us = 20_000
";

    #[test]
    fn parses_mix_and_lane_sections() {
        let slo = SloFile::parse(GOOD).unwrap();
        let point = slo.mix("point-heavy").unwrap();
        assert_eq!(point.p99_budget_us, 50_000);
        assert!((point.min_completion - 0.95).abs() < 1e-9);
        let scan = slo.mix("scan-heavy").unwrap();
        assert_eq!(scan.p99_budget_us, 75_000);
        let lane = slo.lane("point-heavy").unwrap();
        assert!((lane.storm_p99_ratio_max - 2.0).abs() < 1e-9);
        assert_eq!(lane.storm_p99_floor_us, 20_000);
        assert!(slo.mix("unknown").is_none());
        assert!(slo.lane("scan-heavy").is_none());
        assert_eq!(slo.mix_names(), vec!["point-heavy", "scan-heavy"]);
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        let err = SloFile::parse("[mix.a\n").unwrap_err();
        assert!(err.contains("slo.toml:1"), "{err}");
        let err = SloFile::parse("p99 = 5\n").unwrap_err();
        assert!(err.contains("before any [section]"), "{err}");
        let err = SloFile::parse("[mix.a]\nnot a pair\n").unwrap_err();
        assert!(err.contains("slo.toml:2"), "{err}");
        let err = SloFile::parse("[mix.a]\np99_budget_ms = \"fast\"\n").unwrap_err();
        assert!(err.contains("plain number"), "{err}");
        let err = SloFile::parse("[mix.a]\nx = 1\nx = 2\n").unwrap_err();
        assert!(err.contains("duplicate key"), "{err}");
        let err = SloFile::parse("[mix.a]\nx = 1\n[mix.a]\n").unwrap_err();
        assert!(err.contains("duplicate section"), "{err}");
    }

    #[test]
    fn validates_required_fields_and_ranges() {
        let err = SloFile::parse("[mix.a]\np99_budget_ms = 50\n").unwrap_err();
        assert!(err.contains("min_completion"), "{err}");
        let err = SloFile::parse("[mix.a]\np99_budget_ms = 0\nmin_completion = 0.9\n").unwrap_err();
        assert!(err.contains("positive"), "{err}");
        let err =
            SloFile::parse("[mix.a]\np99_budget_ms = 50\nmin_completion = 1.5\n").unwrap_err();
        assert!(err.contains("[0, 1]"), "{err}");
        let err = SloFile::parse("[lane.a]\nstorm_p99_ratio_max = 0.5\nstorm_p99_floor_us = 0\n")
            .unwrap_err();
        assert!(err.contains(">= 1"), "{err}");
        // Unknown sections carry no schema and pass through.
        assert!(SloFile::parse("[future.things]\nwhatever = 1\n").is_ok());
    }

    #[test]
    fn committed_repo_file_is_valid_and_covers_the_preset_mixes() {
        // The file load_knee/load_lane read by default, two levels up from
        // this crate (CARGO_MANIFEST_DIR = crates/load).
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(DEFAULT_SLO_PATH);
        let slo = SloFile::load(&path).unwrap_or_else(|e| panic!("committed slo.toml: {e}"));
        for mix in ["point-heavy", "scan-heavy"] {
            let m = slo
                .mix(mix)
                .unwrap_or_else(|| panic!("slo.toml must cover the {mix} preset"));
            assert!(m.p99_budget_us > 0);
        }
        assert!(
            slo.lane("point-heavy").is_some(),
            "slo.toml must declare the lane-fairness bound the tune-storm gate enforces"
        );
    }
}
