//! Bench-record emission, human-readable rendering, and the exactly-once
//! reconciliation against server `StatsV2`.
//!
//! The harness publishes through the same `priograph-bench-v1` JSON the
//! rest of the repo gates on (`scripts/bench_compare`), so knee and
//! percentile regressions ride the existing CI machinery. Values that are
//! not durations carry a `unit` tag; everything is oriented
//! smaller-is-better (rates as parts-per-million, the knee as
//! nanoseconds-per-query).
//!
//! [`reconcile`] is the harness's proof of honest accounting: the
//! client-side tallies must match the server's own counters *exactly* —
//! completed queries against the `phase.total` span count, per-attempt
//! `Busy` refusals against `busy_rejections`, and per-kind in-band errors
//! against the `errors.<kind>` counters. Any drift means an event was
//! lost or double-counted on one side, which is a bug, not noise.

use priograph_bench::record::BenchReport;
use priograph_serve::protocol::{ErrorKind, StatsV2};

use crate::run::RunReport;

fn ppm(count: u64, of: u64) -> u64 {
    count.saturating_mul(1_000_000).checked_div(of).unwrap_or(0)
}

/// Pushes one run's gateable records under `prefix`: percentiles (µs,
/// clamped to ≥ 1 so a ratio gate never divides by zero), error/Busy/
/// timeout/refusal rates (ppm of scheduled queries), and total
/// breaker-open time (µs).
pub fn push_run_records(report: &mut BenchReport, prefix: &str, run: &RunReport) {
    let samples = usize::try_from(run.scheduled).unwrap_or(usize::MAX);
    let queries = run.scheduled.saturating_sub(run.tunes);
    report.push_value(
        format!("{prefix}-p50-us"),
        run.latency.p50.max(1),
        samples,
        "us",
    );
    report.push_value(
        format!("{prefix}-p99-us"),
        run.latency.p99.max(1),
        samples,
        "us",
    );
    report.push_value(
        format!("{prefix}-p999-us"),
        run.latency.p999.max(1),
        samples,
        "us",
    );
    report.push_value(
        format!("{prefix}-max-us"),
        run.latency.max.max(1),
        samples,
        "us",
    );
    let in_band: u64 = run.errors.iter().map(|(_, n)| n).sum();
    let err = in_band + run.io_errors + run.wire_errors;
    let timeouts = run
        .errors
        .iter()
        .find(|(name, _)| name == &ErrorKind::Timeout.to_string())
        .map_or(0, |(_, n)| *n);
    report.push_value(
        format!("{prefix}-err-ppm"),
        ppm(err, queries),
        samples,
        "ppm",
    );
    report.push_value(
        format!("{prefix}-busy-ppm"),
        ppm(run.busy_gave_up, queries),
        samples,
        "ppm",
    );
    report.push_value(
        format!("{prefix}-timeout-ppm"),
        ppm(timeouts, queries),
        samples,
        "ppm",
    );
    report.push_value(
        format!("{prefix}-refused-ppm"),
        ppm(run.refused, queries),
        samples,
        "ppm",
    );
    report.push_value(
        format!("{prefix}-breaker-open-us"),
        run.breaker.open_time_us,
        samples,
        "us",
    );
}

fn series_count(stats: &StatsV2, name: &str) -> u64 {
    stats.series(name).map_or(0, |s| s.count)
}

fn counter(stats: &StatsV2, name: &str) -> u64 {
    stats.counter(name).unwrap_or(0)
}

/// Checks the harness tallies against the server's own accounting, as
/// deltas between a `StatsV2` frame fetched before the run and one
/// fetched after (so runs can share a server). Requires a quiet server —
/// no other clients between the two fetches.
///
/// # Errors
///
/// Lists every mismatched quantity; an exactly-once violation on either
/// side of the wire.
pub fn reconcile(run: &RunReport, before: &StatsV2, after: &StatsV2) -> Result<(), String> {
    let mut mismatches: Vec<String> = Vec::new();
    let span_delta =
        series_count(after, "phase.total").saturating_sub(series_count(before, "phase.total"));
    if span_delta != run.completed {
        mismatches.push(format!(
            "completed queries: harness {} vs server phase.total {span_delta}",
            run.completed
        ));
    }
    let busy_delta =
        counter(after, "busy_rejections").saturating_sub(counter(before, "busy_rejections"));
    if busy_delta != run.busy_attempts {
        mismatches.push(format!(
            "busy refusals: harness {} attempts vs server busy_rejections {busy_delta}",
            run.busy_attempts
        ));
    }
    for kind in ErrorKind::ALL {
        let name = format!("errors.{kind}");
        let delta = counter(after, &name).saturating_sub(counter(before, &name));
        let harness = run
            .attempt_errors
            .iter()
            .find(|(k, _)| k == &kind.to_string())
            .map_or(0, |(_, n)| *n);
        if delta != harness {
            mismatches.push(format!(
                "{name}: harness saw {harness} attempts vs server {delta}"
            ));
        }
    }
    if mismatches.is_empty() {
        Ok(())
    } else {
        Err(mismatches.join("; "))
    }
}

/// [`reconcile`] with a settle window: the server records a query's
/// phase span *after* handing the reply off to the connection thread, so
/// the harness can observe its final response (and fetch stats) a beat
/// before the dispatcher records the last span. The counters are
/// monotone, so polling converges on a quiet server; only a mismatch
/// that survives the whole budget is a real exactly-once violation.
///
/// # Errors
///
/// The last mismatch once `budget_ms` is exhausted, or a fetch failure.
pub fn reconcile_settled<F>(
    run: &RunReport,
    before: &StatsV2,
    mut fetch_after: F,
    budget_ms: u64,
) -> Result<(), String>
where
    F: FnMut() -> Result<StatsV2, String>,
{
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(budget_ms);
    loop {
        let after = fetch_after()?;
        match reconcile(run, before, &after) {
            Ok(()) => return Ok(()),
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
        }
    }
}

/// A human-readable multi-line summary of one run.
pub fn render(run: &RunReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "mix={} arrivals={} offered={:.1}q/s seed={} workers={}\n",
        run.mix, run.arrivals, run.rate_qps, run.seed, run.workers
    ));
    out.push_str(&format!(
        "scheduled={} completed={} ok={} tunes={}/{} achieved={:.1}q/s over {:.2}s\n",
        run.scheduled,
        run.completed,
        run.ok,
        run.tunes_ok,
        run.tunes,
        run.achieved_qps,
        run.duration_us as f64 / 1e6
    ));
    out.push_str(&format!(
        "latency(open-loop) p50={}us p99={}us p999={}us max={}us\n",
        run.latency.p50, run.latency.p99, run.latency.p999, run.latency.max
    ));
    out.push_str(&format!(
        "service(from-send) p50={}us p99={}us max={}us\n",
        run.service.p50, run.service.p99, run.service.max
    ));
    out.push_str(&format!(
        "attempts={} busy_attempts={} local_refusals={} busy_gave_up={} refused={} io={} wire={}\n",
        run.attempts,
        run.busy_attempts,
        run.local_refusals,
        run.busy_gave_up,
        run.refused,
        run.io_errors,
        run.wire_errors
    ));
    if !run.errors.is_empty() {
        let kinds: Vec<String> = run.errors.iter().map(|(k, n)| format!("{k}={n}")).collect();
        out.push_str(&format!("errors {}\n", kinds.join(" ")));
    }
    out.push_str(&format!(
        "breaker transitions={} opens={} open_time={}us\n",
        run.breaker.transitions, run.breaker.opens, run.breaker.open_time_us
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::BreakerWalk;
    use priograph_telemetry::Summary;

    fn sample_run() -> RunReport {
        RunReport {
            mix: "point-heavy".to_string(),
            arrivals: "poisson".to_string(),
            rate_qps: 200.0,
            seed: 42,
            workers: 2,
            scheduled: 1_000,
            completed: 990,
            ok: 985,
            tunes: 10,
            tunes_ok: 10,
            errors: vec![("timeout".to_string(), 5)],
            attempt_errors: vec![("timeout".to_string(), 5)],
            busy_gave_up: 3,
            refused: 2,
            io_errors: 0,
            wire_errors: 0,
            attempts: 1_010,
            busy_attempts: 20,
            local_refusals: 2,
            latency: Summary {
                count: 985,
                p50: 800,
                p90: 2_000,
                p99: 4_000,
                p999: 9_000,
                max: 12_000,
            },
            service: Summary {
                count: 985,
                p50: 700,
                p90: 1_500,
                p99: 3_000,
                p999: 8_000,
                max: 11_000,
            },
            breaker: BreakerWalk {
                transitions: 3,
                opens: 1,
                open_time_us: 1_500,
            },
            duration_us: 5_000_000,
            achieved_qps: 198.0,
            raw_latency_us: Vec::new(),
        }
    }

    #[test]
    fn records_cover_percentiles_rates_and_breaker_time() {
        let mut report = BenchReport::new(2);
        push_run_records(&mut report, "load-point-heavy", &sample_run());
        let json = report.to_json();
        let parsed = BenchReport::parse(&json).unwrap();
        let names: Vec<&str> = parsed.records.iter().map(|r| r.name.as_str()).collect();
        for suffix in [
            "p50-us",
            "p99-us",
            "p999-us",
            "max-us",
            "err-ppm",
            "busy-ppm",
            "timeout-ppm",
            "refused-ppm",
            "breaker-open-us",
        ] {
            assert!(
                names.contains(&format!("load-point-heavy-{suffix}").as_str()),
                "missing {suffix} in {names:?}"
            );
        }
        let get = |name: &str| {
            parsed
                .records
                .iter()
                .find(|r| r.name.ends_with(name))
                .unwrap()
                .median_ns
        };
        assert_eq!(get("p99-us"), 4_000);
        // 5 timeouts in 990 scheduled queries (1000 minus 10 tunes).
        assert_eq!(get("timeout-ppm"), 5 * 1_000_000 / 990);
        assert_eq!(get("breaker-open-us"), 1_500);
        assert!(parsed
            .records
            .iter()
            .all(|r| r.unit.as_deref() == Some("us") || r.unit.as_deref() == Some("ppm")));
    }

    #[test]
    fn render_mentions_the_load_bearing_numbers() {
        let text = render(&sample_run());
        assert!(text.contains("p99=4000us"));
        assert!(text.contains("completed=990"));
        assert!(text.contains("open_time=1500us"));
    }
}
