//! Event packing for the harness ring, and the breaker state-walk
//! validator.
//!
//! Workers record one [`priograph_telemetry::RingEvent`] per attempt,
//! completion, breaker transition, and local refusal. The two payload
//! words carry a tagged packed encoding (documented on each `pack_*`
//! function); [`decode_all`] turns a drained snapshot back into typed
//! [`TraceEvent`]s, and [`validate_breaker_walk`] replays each worker's
//! events through the legal [`BreakerState`] transition graph — proving no
//! transition was lost or fabricated — while computing the total time each
//! breaker spent refusing (open), which the report publishes.

use priograph_serve::client::{AttemptClass, BreakerState};
use priograph_serve::protocol::ErrorKind;
use priograph_telemetry::RingEvent;

/// Tag byte for a completed operation (one per scheduled query that got a
/// final answer or gave up).
pub const TAG_DONE: u8 = 1;
/// Tag byte for one wire attempt inside a request.
pub const TAG_ATTEMPT: u8 = 2;
/// Tag byte for a breaker state transition.
pub const TAG_BREAKER: u8 = 3;
/// Tag byte for a local (breaker-open) refusal.
pub const TAG_REFUSAL: u8 = 4;

const KIND_NONE: u8 = 0xFF;

/// How a scheduled operation ended, from the worker's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// A typed success response.
    Ok,
    /// An in-band typed error (the server answered, with this kind).
    Err(ErrorKind),
    /// Gave up on a Busy admission refusal after exhausting retries.
    Busy,
    /// Refused locally by the open circuit breaker — never sent.
    Refused,
    /// Gave up on a socket error.
    Io,
    /// Gave up on a protocol-level error (malformed frame, version).
    Wire,
}

impl Outcome {
    fn code(self) -> (u8, u8) {
        match self {
            Outcome::Ok => (0, KIND_NONE),
            Outcome::Err(kind) => (1, kind_to_byte(kind)),
            Outcome::Busy => (2, KIND_NONE),
            Outcome::Refused => (3, KIND_NONE),
            Outcome::Io => (4, KIND_NONE),
            Outcome::Wire => (5, KIND_NONE),
        }
    }

    fn from_code(code: u8, kind: u8) -> Option<Outcome> {
        match code {
            0 => Some(Outcome::Ok),
            1 => Some(Outcome::Err(byte_to_kind(kind)?)),
            2 => Some(Outcome::Busy),
            3 => Some(Outcome::Refused),
            4 => Some(Outcome::Io),
            5 => Some(Outcome::Wire),
            _ => None,
        }
    }
}

fn kind_to_byte(kind: ErrorKind) -> u8 {
    // The wire discriminant is crate-private; the public ALL table is in
    // discriminant order, so the index is a stable encoding.
    ErrorKind::ALL
        .iter()
        .position(|k| *k == kind)
        .map_or(KIND_NONE, |i| i as u8)
}

fn byte_to_kind(byte: u8) -> Option<ErrorKind> {
    ErrorKind::ALL.get(usize::from(byte)).copied()
}

fn state_code(state: BreakerState) -> u8 {
    match state {
        BreakerState::Closed => 0,
        BreakerState::Open => 1,
        BreakerState::HalfOpen => 2,
    }
}

fn code_state(code: u8) -> Option<BreakerState> {
    match code {
        0 => Some(BreakerState::Closed),
        1 => Some(BreakerState::Open),
        2 => Some(BreakerState::HalfOpen),
        _ => None,
    }
}

/// Builds the shared `a` word: `byte7` tag, `bytes5..6` worker,
/// `byte4`/`byte3`/`byte2` free fields, `bytes0..1` a 16-bit field.
fn pack_a(tag: u8, worker: u16, f0: u8, f1: u8, f2: u8, f3: u16) -> u64 {
    (u64::from(tag) << 56)
        | (u64::from(worker) << 40)
        | (u64::from(f0) << 32)
        | (u64::from(f1) << 24)
        | (u64::from(f2) << 16)
        | u64::from(f3)
}

/// Packs a completion: outcome, error kind, breaker state at completion,
/// and attempts used into `a`; `b` is `latency_us` (from the scheduled
/// arrival) in the low 32 bits and `service_us` (from first send) in the
/// high 32, both saturated.
pub fn pack_done(
    worker: u16,
    outcome: Outcome,
    breaker: BreakerState,
    attempts: u16,
    latency_us: u64,
    service_us: u64,
) -> (u64, u64) {
    let (code, kind) = outcome.code();
    let a = pack_a(TAG_DONE, worker, code, kind, state_code(breaker), attempts);
    let lat = latency_us.min(u64::from(u32::MAX));
    let svc = service_us.min(u64::from(u32::MAX));
    (a, (svc << 32) | lat)
}

/// Packs one wire attempt: the [`AttemptClass`] and whether the breaker
/// policy counted it as a failure.
pub fn pack_attempt(worker: u16, class: &AttemptClass, failure: bool) -> (u64, u64) {
    let (code, kind) = match class {
        AttemptClass::Success => (0u8, KIND_NONE),
        AttemptClass::Error(kind) => (1, kind_to_byte(*kind)),
        AttemptClass::Busy => (2, KIND_NONE),
        AttemptClass::Io => (4, KIND_NONE),
        AttemptClass::Wire => (5, KIND_NONE),
    };
    (
        pack_a(TAG_ATTEMPT, worker, code, kind, u8::from(failure), 0),
        0,
    )
}

/// Packs a breaker transition edge.
pub fn pack_breaker(worker: u16, from: BreakerState, to: BreakerState) -> (u64, u64) {
    (
        pack_a(TAG_BREAKER, worker, state_code(from), state_code(to), 0, 0),
        0,
    )
}

/// Packs a local refusal; `b` carries the `retry_after_ms` hint.
pub fn pack_refusal(worker: u16, retry_after_ms: u64) -> (u64, u64) {
    (pack_a(TAG_REFUSAL, worker, 0, 0, 0, 0), retry_after_ms)
}

/// One decoded harness event (see the `pack_*` functions for packing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A scheduled operation finished (successfully or not).
    Done {
        /// Worker that drove the operation.
        worker: u16,
        /// Completion time, µs from ring origin.
        at_us: u64,
        /// Final disposition.
        outcome: Outcome,
        /// Breaker state observed at completion.
        breaker: BreakerState,
        /// Wire attempts spent (0 for a pure local refusal).
        attempts: u16,
        /// Latency from the *scheduled* arrival (queue delay charged).
        latency_us: u32,
        /// Latency from the first send (service view, no queue delay).
        service_us: u32,
    },
    /// One wire attempt inside a request.
    Attempt {
        /// Worker that made the attempt.
        worker: u16,
        /// Attempt time, µs from ring origin.
        at_us: u64,
        /// What the attempt resolved to.
        class: AttemptClass,
        /// Whether the breaker policy counted this attempt as a failure.
        failure: bool,
    },
    /// The worker's breaker changed state.
    Breaker {
        /// Worker whose breaker moved.
        worker: u16,
        /// Transition time, µs from ring origin.
        at_us: u64,
        /// State before.
        from: BreakerState,
        /// State after.
        to: BreakerState,
    },
    /// The open breaker refused an operation locally.
    Refusal {
        /// Worker that refused.
        worker: u16,
        /// Refusal time, µs from ring origin.
        at_us: u64,
        /// Backoff hint returned to the caller.
        retry_after_ms: u64,
    },
}

impl TraceEvent {
    /// The worker that recorded the event.
    pub fn worker(&self) -> u16 {
        match *self {
            TraceEvent::Done { worker, .. }
            | TraceEvent::Attempt { worker, .. }
            | TraceEvent::Breaker { worker, .. }
            | TraceEvent::Refusal { worker, .. } => worker,
        }
    }

    /// The event timestamp, µs from ring origin.
    pub fn at_us(&self) -> u64 {
        match *self {
            TraceEvent::Done { at_us, .. }
            | TraceEvent::Attempt { at_us, .. }
            | TraceEvent::Breaker { at_us, .. }
            | TraceEvent::Refusal { at_us, .. } => at_us,
        }
    }
}

/// Decodes one ring record.
///
/// # Errors
///
/// Describes an unknown tag or a field that decodes to no known value —
/// either means the ring was corrupted or the packing changed shape.
pub fn decode(event: RingEvent) -> Result<TraceEvent, String> {
    let tag = (event.a >> 56) as u8;
    let worker = (event.a >> 40) as u16;
    let f0 = (event.a >> 32) as u8;
    let f1 = (event.a >> 24) as u8;
    let f2 = (event.a >> 16) as u8;
    let f3 = event.a as u16;
    match tag {
        TAG_DONE => Ok(TraceEvent::Done {
            worker,
            at_us: event.at_us,
            outcome: Outcome::from_code(f0, f1)
                .ok_or_else(|| format!("bad outcome code {f0}/{f1}"))?,
            breaker: code_state(f2).ok_or_else(|| format!("bad breaker code {f2}"))?,
            attempts: f3,
            latency_us: event.b as u32,
            service_us: (event.b >> 32) as u32,
        }),
        TAG_ATTEMPT => Ok(TraceEvent::Attempt {
            worker,
            at_us: event.at_us,
            class: match f0 {
                0 => AttemptClass::Success,
                1 => AttemptClass::Error(
                    byte_to_kind(f1).ok_or_else(|| format!("bad error kind byte {f1}"))?,
                ),
                2 => AttemptClass::Busy,
                4 => AttemptClass::Io,
                5 => AttemptClass::Wire,
                other => return Err(format!("bad attempt class code {other}")),
            },
            failure: f2 != 0,
        }),
        TAG_BREAKER => Ok(TraceEvent::Breaker {
            worker,
            at_us: event.at_us,
            from: code_state(f0).ok_or_else(|| format!("bad breaker code {f0}"))?,
            to: code_state(f1).ok_or_else(|| format!("bad breaker code {f1}"))?,
        }),
        TAG_REFUSAL => Ok(TraceEvent::Refusal {
            worker,
            at_us: event.at_us,
            retry_after_ms: event.b,
        }),
        other => Err(format!("unknown event tag {other}")),
    }
}

/// Decodes a full ring snapshot, failing on the first malformed record.
///
/// # Errors
///
/// Propagates the first [`decode`] failure with its record index.
pub fn decode_all(events: &[RingEvent]) -> Result<Vec<TraceEvent>, String> {
    events
        .iter()
        .enumerate()
        .map(|(i, e)| decode(*e).map_err(|e| format!("record {i}: {e}")))
        .collect()
}

/// Aggregate result of a validated breaker state walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BreakerWalk {
    /// Total breaker transitions across all workers.
    pub transitions: u64,
    /// Times any breaker entered `Open`.
    pub opens: u64,
    /// Total µs any breaker spent in `Open` (refusing); overlapping
    /// workers sum, intervals still open at `end_us` are closed there.
    pub open_time_us: u64,
}

struct WorkerWalk {
    state: BreakerState,
    streak: u32,
    last_attempt_failed: Option<bool>,
    open_since: Option<u64>,
    last_at_us: u64,
}

impl Default for WorkerWalk {
    fn default() -> WorkerWalk {
        WorkerWalk {
            state: BreakerState::Closed,
            streak: 0,
            last_attempt_failed: None,
            open_since: None,
            last_at_us: 0,
        }
    }
}

/// Replays `events` through each worker's breaker state machine and
/// proves the walk is legal: every transition edge exists in the
/// three-state graph, every `from` matches the tracked state,
/// `Closed -> Open` only after at least `threshold` consecutive failure
/// attempts, a `HalfOpen` resolution matches its probe's outcome, local
/// refusals only happen while open, and per-worker timestamps never go
/// backwards. Returns the aggregate transition/open-time accounting.
///
/// # Errors
///
/// Describes the first illegal step — which means the client dropped or
/// fabricated a transition, exactly what the harness exists to catch.
pub fn validate_breaker_walk(
    events: &[TraceEvent],
    end_us: u64,
    threshold: u32,
) -> Result<BreakerWalk, String> {
    let mut workers: Vec<WorkerWalk> = Vec::new();
    let mut walk = BreakerWalk::default();
    for (i, event) in events.iter().enumerate() {
        let w = usize::from(event.worker());
        if workers.len() <= w {
            workers.resize_with(w + 1, WorkerWalk::default);
        }
        let ww = &mut workers[w];
        let at = event.at_us();
        if at < ww.last_at_us {
            return Err(format!(
                "event {i}: worker {w} time went backwards ({} -> {at}µs)",
                ww.last_at_us
            ));
        }
        ww.last_at_us = at;
        match *event {
            TraceEvent::Attempt { failure, .. } => {
                if ww.state == BreakerState::Open {
                    return Err(format!(
                        "event {i}: worker {w} attempted while the breaker was open"
                    ));
                }
                if failure {
                    ww.streak += 1;
                } else {
                    ww.streak = 0;
                }
                ww.last_attempt_failed = Some(failure);
            }
            TraceEvent::Breaker { from, to, .. } => {
                if from != ww.state {
                    return Err(format!(
                        "event {i}: worker {w} transition from {from:?} but tracked state is {:?}",
                        ww.state
                    ));
                }
                match (from, to) {
                    (BreakerState::Closed, BreakerState::Open) => {
                        if ww.streak < threshold {
                            return Err(format!(
                                "event {i}: worker {w} opened after {} consecutive failures, \
                                 threshold is {threshold}",
                                ww.streak
                            ));
                        }
                    }
                    (BreakerState::Open, BreakerState::HalfOpen) => {}
                    (BreakerState::HalfOpen, BreakerState::Open) => {
                        if ww.last_attempt_failed != Some(true) {
                            return Err(format!(
                                "event {i}: worker {w} half-open probe reopened without a \
                                 failed attempt"
                            ));
                        }
                    }
                    (BreakerState::HalfOpen, BreakerState::Closed) => {
                        if ww.last_attempt_failed != Some(false) {
                            return Err(format!(
                                "event {i}: worker {w} half-open probe closed without a \
                                 successful attempt"
                            ));
                        }
                    }
                    (from, to) => {
                        return Err(format!(
                            "event {i}: worker {w} illegal edge {from:?} -> {to:?}"
                        ));
                    }
                }
                walk.transitions += 1;
                ww.streak = 0;
                if to == BreakerState::Open {
                    walk.opens += 1;
                    ww.open_since = Some(at);
                } else if let Some(since) = ww.open_since.take() {
                    walk.open_time_us += at.saturating_sub(since);
                }
                ww.state = to;
            }
            TraceEvent::Refusal { .. } => {
                if ww.state != BreakerState::Open {
                    return Err(format!(
                        "event {i}: worker {w} refused locally while {:?}",
                        ww.state
                    ));
                }
            }
            TraceEvent::Done { .. } => {}
        }
    }
    for ww in &workers {
        if let Some(since) = ww.open_since {
            walk.open_time_us += end_us.saturating_sub(since);
        }
    }
    Ok(walk)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_decode_round_trips_every_shape() {
        let shapes = [
            pack_done(
                3,
                Outcome::Err(ErrorKind::Timeout),
                BreakerState::Closed,
                2,
                1_234,
                987,
            ),
            pack_done(0, Outcome::Ok, BreakerState::HalfOpen, 1, 5, 5),
            pack_attempt(65_535, &AttemptClass::Busy, true),
            pack_attempt(1, &AttemptClass::Error(ErrorKind::BadVertex), false),
            pack_breaker(7, BreakerState::Closed, BreakerState::Open),
            pack_refusal(2, 450),
        ];
        let records: Vec<RingEvent> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| RingEvent {
                at_us: i as u64,
                a,
                b,
            })
            .collect();
        let decoded = decode_all(&records).unwrap();
        assert_eq!(
            decoded[0],
            TraceEvent::Done {
                worker: 3,
                at_us: 0,
                outcome: Outcome::Err(ErrorKind::Timeout),
                breaker: BreakerState::Closed,
                attempts: 2,
                latency_us: 1_234,
                service_us: 987,
            }
        );
        assert_eq!(
            decoded[2],
            TraceEvent::Attempt {
                worker: 65_535,
                at_us: 2,
                class: AttemptClass::Busy,
                failure: true,
            }
        );
        assert_eq!(
            decoded[3],
            TraceEvent::Attempt {
                worker: 1,
                at_us: 3,
                class: AttemptClass::Error(ErrorKind::BadVertex),
                failure: false,
            }
        );
        assert_eq!(
            decoded[4],
            TraceEvent::Breaker {
                worker: 7,
                at_us: 4,
                from: BreakerState::Closed,
                to: BreakerState::Open,
            }
        );
        assert_eq!(
            decoded[5],
            TraceEvent::Refusal {
                worker: 2,
                at_us: 5,
                retry_after_ms: 450,
            }
        );
    }

    #[test]
    fn every_error_kind_survives_the_byte_encoding() {
        for kind in ErrorKind::ALL {
            assert_eq!(byte_to_kind(kind_to_byte(kind)), Some(kind));
        }
        assert_eq!(byte_to_kind(KIND_NONE), None);
    }

    fn attempt(worker: u16, at_us: u64, failure: bool) -> TraceEvent {
        TraceEvent::Attempt {
            worker,
            at_us,
            class: if failure {
                AttemptClass::Io
            } else {
                AttemptClass::Success
            },
            failure,
        }
    }

    fn edge(worker: u16, at_us: u64, from: BreakerState, to: BreakerState) -> TraceEvent {
        TraceEvent::Breaker {
            worker,
            at_us,
            from,
            to,
        }
    }

    #[test]
    fn legal_walk_accounts_open_time() {
        use BreakerState::{Closed, HalfOpen, Open};
        let events = [
            attempt(0, 10, true),
            attempt(0, 20, true),
            edge(0, 20, Closed, Open),
            TraceEvent::Refusal {
                worker: 0,
                at_us: 25,
                retry_after_ms: 5,
            },
            edge(0, 50, Open, HalfOpen),
            attempt(0, 60, true),
            edge(0, 60, HalfOpen, Open),
            edge(0, 100, Open, HalfOpen),
            attempt(0, 110, false),
            edge(0, 110, HalfOpen, Closed),
        ];
        let walk = validate_breaker_walk(&events, 1_000, 2).unwrap();
        assert_eq!(walk.transitions, 5);
        assert_eq!(walk.opens, 2);
        // Open 20..50 and 60..100 — 70µs total.
        assert_eq!(walk.open_time_us, 70);
    }

    #[test]
    fn open_interval_still_open_at_end_is_closed_there() {
        use BreakerState::{Closed, Open};
        let events = [
            attempt(1, 5, true),
            edge(1, 5, Closed, Open),
            attempt(0, 30, true),
            edge(0, 30, Closed, Open),
        ];
        let walk = validate_breaker_walk(&events, 100, 1).unwrap();
        assert_eq!(walk.opens, 2);
        // Worker 1 open 5..100, worker 0 open 30..100.
        assert_eq!(walk.open_time_us, 95 + 70);
    }

    #[test]
    fn illegal_walks_are_rejected() {
        use BreakerState::{Closed, HalfOpen, Open};
        // Opening without enough consecutive failures.
        let early = [attempt(0, 1, true), edge(0, 2, Closed, Open)];
        assert!(validate_breaker_walk(&early, 10, 2).is_err());
        // A success resets the streak.
        let reset = [
            attempt(0, 1, true),
            attempt(0, 2, false),
            attempt(0, 3, true),
            edge(0, 4, Closed, Open),
        ];
        assert!(validate_breaker_walk(&reset, 10, 2).is_err());
        // `from` must match the tracked state.
        let mismatched = [edge(0, 1, Open, HalfOpen)];
        assert!(validate_breaker_walk(&mismatched, 10, 1).is_err());
        // Skipping the half-open hop entirely is a lost transition.
        let skipped = [
            attempt(0, 1, true),
            edge(0, 1, Closed, Open),
            edge(0, 2, Open, HalfOpen),
            edge(0, 3, HalfOpen, Closed),
        ];
        assert!(validate_breaker_walk(&skipped, 10, 1).is_err());
        // Refusing while closed means the refusal event lied.
        let refused = [TraceEvent::Refusal {
            worker: 0,
            at_us: 1,
            retry_after_ms: 1,
        }];
        assert!(validate_breaker_walk(&refused, 10, 1).is_err());
        // Probing half-open closed requires the probe to have succeeded.
        let bad_probe = [
            attempt(0, 1, true),
            edge(0, 1, Closed, Open),
            edge(0, 2, Open, HalfOpen),
            attempt(0, 3, true),
            edge(0, 3, HalfOpen, Closed),
        ];
        assert!(validate_breaker_walk(&bad_probe, 10, 1).is_err());
    }
}
