//! The stepped-rate knee finder: the highest offered rate the server
//! sustains before the open-loop p99 crosses a budget.
//!
//! A single-rate latency number answers "how does the server feel at X
//! q/s" but not the capacity question the SLO actually asks: *up to what
//! rate does the server keep its promise?* The knee finder walks an
//! ascending rate ladder, runs the same seeded workload at each rung, and
//! stops at the first rung that is **unsustainable** — p99 over budget,
//! or too few queries completing (the server is refusing or failing its
//! way to a flattering latency distribution; a rung must not pass by
//! shedding). The knee is the last sustainable rung. It is published
//! smaller-is-better as nanoseconds per query (`1e9 / knee_qps`) so the
//! existing ratio-based bench gate can watch it: a halved knee doubles
//! the record.

use crate::run::{run, RunConfig, RunReport};

/// Ladder parameters.
#[derive(Debug, Clone)]
pub struct KneeConfig {
    /// The SLO: open-loop p99 budget in µs.
    pub budget_p99_us: u64,
    /// Offered rates to try, ascending, q/s.
    pub rates: Vec<f64>,
    /// Scheduled operations per rung.
    pub ops_per_step: usize,
    /// Minimum fraction of scheduled queries that must complete for a
    /// rung to count as sustained (guards against passing-by-shedding).
    pub min_completion: f64,
}

impl Default for KneeConfig {
    fn default() -> KneeConfig {
        KneeConfig {
            budget_p99_us: 50_000,
            rates: vec![50.0, 100.0, 200.0, 400.0, 800.0, 1_600.0],
            ops_per_step: 500,
            min_completion: 0.95,
        }
    }
}

/// One rung's verdict (the full [`RunReport`] is kept for inspection).
#[derive(Debug, Clone)]
pub struct KneeStep {
    /// Offered rate at this rung, q/s.
    pub rate_qps: f64,
    /// Open-loop p99 observed, µs.
    pub p99_us: u64,
    /// Queries completed / scheduled at this rung.
    pub completed: u64,
    /// Queries scheduled at this rung (tunes excluded).
    pub scheduled: u64,
    /// Whether the rung met the SLO.
    pub sustainable: bool,
    /// The underlying run.
    pub report: RunReport,
}

/// Sentinel `ns_per_query` when no rung was sustainable: 1e12 ns/query
/// (one query per ~17 minutes), large enough that any real knee gates as
/// a huge improvement against it rather than dividing by zero.
pub const NO_KNEE_NS_PER_QUERY: u64 = 1_000_000_000_000;

/// The ladder's outcome.
#[derive(Debug, Clone)]
pub struct KneeResult {
    /// Every rung executed, in ladder order (the ladder stops early at
    /// the first unsustainable rung — it is already past the knee).
    pub steps: Vec<KneeStep>,
    /// The highest sustainable offered rate, q/s (0.0 if none was).
    pub knee_qps: f64,
    /// `1e9 / knee_qps`, the smaller-is-better encoding the bench gate
    /// consumes; [`NO_KNEE_NS_PER_QUERY`] when nothing sustained.
    pub ns_per_query: u64,
}

/// Walks the rate ladder against the server in `base` (whose `rate_qps`
/// and `ops` are overridden per rung; each rung reseeds deterministically
/// from `base.seed` so rungs do not replay identical streams).
///
/// # Errors
///
/// Rejects empty/unsorted ladders and propagates any rung's run failure
/// (including ring overflow or an illegal breaker walk).
pub fn find_knee(base: &RunConfig, knee: &KneeConfig) -> Result<KneeResult, String> {
    if knee.rates.is_empty() {
        return Err("knee ladder needs at least one rate".to_string());
    }
    if knee.rates.windows(2).any(|w| w[0] >= w[1]) {
        return Err("knee ladder rates must be strictly ascending".to_string());
    }
    if !(0.0..=1.0).contains(&knee.min_completion) {
        return Err("min_completion must be within [0, 1]".to_string());
    }
    let mut steps: Vec<KneeStep> = Vec::new();
    let mut knee_qps = 0.0f64;
    for (i, &rate) in knee.rates.iter().enumerate() {
        let mut config = base.clone();
        config.rate_qps = rate;
        config.ops = knee.ops_per_step;
        // Distinct seed per rung: same ladder reproduces, rungs differ.
        config.seed = base.seed.wrapping_add((i as u64 + 1).wrapping_mul(7919));
        let report = run(&config)?;
        let scheduled = report.scheduled.saturating_sub(report.tunes);
        let floor = (scheduled as f64 * knee.min_completion).ceil() as u64;
        let sustainable =
            report.ok > 0 && report.latency.p99 <= knee.budget_p99_us && report.completed >= floor;
        steps.push(KneeStep {
            rate_qps: rate,
            p99_us: report.latency.p99,
            completed: report.completed,
            scheduled,
            sustainable,
            report,
        });
        if !sustainable {
            break;
        }
        knee_qps = rate;
        // Let in-flight work drain so the next rung starts clean.
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let ns_per_query = if knee_qps > 0.0 {
        ((1e9 / knee_qps) as u64).max(1)
    } else {
        NO_KNEE_NS_PER_QUERY
    };
    Ok(KneeResult {
        steps,
        knee_qps,
        ns_per_query,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::RunConfig;

    #[test]
    fn degenerate_ladders_are_rejected() {
        let base = RunConfig::new("127.0.0.1:1".parse().unwrap());
        let empty = KneeConfig {
            rates: vec![],
            ..KneeConfig::default()
        };
        assert!(find_knee(&base, &empty).is_err());
        let unsorted = KneeConfig {
            rates: vec![100.0, 50.0],
            ..KneeConfig::default()
        };
        assert!(find_knee(&base, &unsorted).is_err());
        let bad_floor = KneeConfig {
            min_completion: 1.5,
            ..KneeConfig::default()
        };
        assert!(find_knee(&base, &bad_floor).is_err());
    }
}
