//! Mixed query streams over weighted tenants.
//!
//! A serving workload has shape beyond its arrival rate: the *operation
//! mix* (cheap early-terminating PPSP vs. full-vector SSSP/wBFS/k-core
//! scans) and the *tenant skew* (one hot graph absorbing most traffic
//! while cold tenants tick along — exactly the case the per-graph
//! admission quotas exist for). [`WorkloadGen`] draws a deterministic
//! stream of [`LoadOp`]s from both distributions, seeded independently of
//! the arrival schedule so timing and content can be varied separately.

use priograph_serve::protocol::{GraphId, Query, QueryOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One resident graph as the workload sees it: its catalog id, its
/// selection weight (hot tenants get large weights), and its vertex count
/// (endpoint draws stay in range so no `BadVertex` noise pollutes the
/// error accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tenant {
    /// Catalog id queries address the graph by.
    pub graph: GraphId,
    /// Relative selection weight (0 is allowed; the tenant is then idle).
    pub weight: u32,
    /// Vertex count; endpoints are drawn uniformly from `0..vertices`.
    pub vertices: u32,
}

/// Relative operation weights plus the tune-storm intensity. The four
/// query weights need not sum to anything in particular; they are
/// normalized at draw time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixSpec {
    /// Mix name, used in report record names (e.g. `point-heavy`).
    pub name: String,
    /// Weight of point-to-point shortest path queries.
    pub ppsp: u32,
    /// Weight of full SSSP queries.
    pub sssp: u32,
    /// Weight of weighted-BFS queries.
    pub wbfs: u32,
    /// Weight of k-core queries.
    pub kcore: u32,
    /// Per-mille of scheduled slots that issue a `TuneGraph` instead of a
    /// query (a "tune storm" when large). Tunes are heavyweight: each owns
    /// the server pool for many trials.
    pub tune_per_thousand: u32,
}

impl MixSpec {
    /// The serving-path mix: dominated by cheap point queries, a thin
    /// tail of scans. Models an interactive routing workload.
    pub fn point_heavy() -> MixSpec {
        MixSpec {
            name: "point-heavy".to_string(),
            ppsp: 80,
            sssp: 10,
            wbfs: 8,
            kcore: 2,
            tune_per_thousand: 0,
        }
    }

    /// The analytics-path mix: full-vector scans dominate, point queries
    /// are the minority. Models batch consumers sharing the server.
    pub fn scan_heavy() -> MixSpec {
        MixSpec {
            name: "scan-heavy".to_string(),
            ppsp: 30,
            sssp: 40,
            wbfs: 20,
            kcore: 10,
            tune_per_thousand: 0,
        }
    }

    /// Looks up a named preset.
    ///
    /// # Errors
    ///
    /// Describes the unrecognized name.
    pub fn parse(name: &str) -> Result<MixSpec, String> {
        match name {
            "point-heavy" => Ok(MixSpec::point_heavy()),
            "scan-heavy" => Ok(MixSpec::scan_heavy()),
            other => Err(format!(
                "unknown mix {other:?} (want point-heavy or scan-heavy)"
            )),
        }
    }

    /// Returns the mix with a tune storm mixed in at `per_thousand`‰ of
    /// scheduled slots (clamped to 1000).
    pub fn with_tune_storm(mut self, per_thousand: u32) -> MixSpec {
        self.tune_per_thousand = per_thousand.min(1_000);
        self
    }

    fn total_query_weight(&self) -> u64 {
        u64::from(self.ppsp) + u64::from(self.sssp) + u64::from(self.wbfs) + u64::from(self.kcore)
    }
}

/// One scheduled operation: a query, or a tune run during a storm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadOp {
    /// A typed query, tenant and endpoints already drawn.
    Query(Query),
    /// A `TuneGraph` request (the autotuner owns the pool while it runs).
    Tune {
        /// Target graph.
        graph: GraphId,
        /// Algorithm family to retune.
        algo: QueryOp,
        /// Trial budget per schedule candidate.
        budget: u32,
    },
}

/// A deterministic stream of [`LoadOp`]s: weighted tenant pick, weighted
/// op pick, uniform in-range endpoints, optional tune slots. The stream
/// is a pure function of the constructor arguments.
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    mix: MixSpec,
    tenants: Vec<Tenant>,
    tenant_weight: u64,
    query_weight: u64,
    deadline_ms: u32,
    rng: StdRng,
}

impl WorkloadGen {
    /// A stream over `tenants` drawing from `mix`, stamping every query
    /// with `deadline_ms` (0 = no deadline).
    ///
    /// # Errors
    ///
    /// Rejects empty tenant sets, all-zero weights, and tenants without
    /// vertices.
    pub fn new(
        mix: MixSpec,
        tenants: Vec<Tenant>,
        deadline_ms: u32,
        seed: u64,
    ) -> Result<WorkloadGen, String> {
        if tenants.is_empty() {
            return Err("workload needs at least one tenant".to_string());
        }
        if tenants.iter().any(|t| t.vertices == 0 && t.weight > 0) {
            return Err("a weighted tenant has zero vertices".to_string());
        }
        let tenant_weight: u64 = tenants.iter().map(|t| u64::from(t.weight)).sum();
        if tenant_weight == 0 {
            return Err("tenant weights sum to zero".to_string());
        }
        let query_weight = mix.total_query_weight();
        if query_weight == 0 {
            return Err("query mix weights sum to zero".to_string());
        }
        Ok(WorkloadGen {
            mix,
            tenants,
            tenant_weight,
            query_weight,
            deadline_ms,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    fn pick_tenant(&mut self) -> Tenant {
        let mut ticket = self.rng.gen_range(0..self.tenant_weight);
        for t in &self.tenants {
            let w = u64::from(t.weight);
            if ticket < w {
                return *t;
            }
            ticket -= w;
        }
        // Unreachable: the ticket is below the weight sum. Fall back to
        // the last tenant rather than panicking in a harness.
        *self.tenants.last().unwrap_or(&Tenant {
            graph: 0,
            weight: 1,
            vertices: 1,
        })
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> LoadOp {
        if self.mix.tune_per_thousand > 0
            && self.rng.gen_range(0u32..1_000) < self.mix.tune_per_thousand
        {
            let tenant = self.pick_tenant();
            return LoadOp::Tune {
                graph: tenant.graph,
                algo: QueryOp::Sssp,
                budget: 1,
            };
        }
        let tenant = self.pick_tenant();
        let mut ticket = self.rng.gen_range(0..self.query_weight);
        let n = tenant.vertices;
        let endpoint = |rng: &mut StdRng| rng.gen_range(0..n);
        let query = if ticket < u64::from(self.mix.ppsp) {
            let s = endpoint(&mut self.rng);
            let t = endpoint(&mut self.rng);
            Query::ppsp(s, t)
        } else {
            ticket -= u64::from(self.mix.ppsp);
            if ticket < u64::from(self.mix.sssp) {
                Query::sssp(endpoint(&mut self.rng))
            } else {
                ticket -= u64::from(self.mix.sssp);
                if ticket < u64::from(self.mix.wbfs) {
                    Query::wbfs(endpoint(&mut self.rng))
                } else {
                    Query::kcore()
                }
            }
        };
        let query = query.on_graph(tenant.graph);
        let query = if self.deadline_ms > 0 {
            query.with_deadline(self.deadline_ms)
        } else {
            query
        };
        LoadOp::Query(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenants() -> Vec<Tenant> {
        vec![
            Tenant {
                graph: 0,
                weight: 4,
                vertices: 100,
            },
            Tenant {
                graph: 1,
                weight: 1,
                vertices: 50,
            },
        ]
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = WorkloadGen::new(MixSpec::point_heavy(), tenants(), 0, 11).unwrap();
        let mut b = WorkloadGen::new(MixSpec::point_heavy(), tenants(), 0, 11).unwrap();
        let mut c = WorkloadGen::new(MixSpec::point_heavy(), tenants(), 0, 12).unwrap();
        let sa: Vec<LoadOp> = (0..200).map(|_| a.next_op()).collect();
        let sb: Vec<LoadOp> = (0..200).map(|_| b.next_op()).collect();
        let sc: Vec<LoadOp> = (0..200).map(|_| c.next_op()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn hot_tenant_dominates_and_endpoints_stay_in_range() {
        let mut gen = WorkloadGen::new(MixSpec::point_heavy(), tenants(), 0, 3).unwrap();
        let mut hot = 0usize;
        for _ in 0..2_000 {
            match gen.next_op() {
                LoadOp::Query(q) => {
                    let n = if q.graph == 0 { 100 } else { 50 };
                    assert!(q.source < n || q.op == QueryOp::KCore);
                    if q.graph == 0 {
                        hot += 1;
                    }
                }
                LoadOp::Tune { .. } => panic!("no storm configured"),
            }
        }
        // Weight 4:1 — the hot tenant should take roughly 80%.
        assert!(
            (1_400..=1_800).contains(&hot),
            "hot tenant took {hot}/2000 picks"
        );
    }

    #[test]
    fn tune_storm_emits_tunes_at_roughly_the_configured_rate() {
        let mix = MixSpec::scan_heavy().with_tune_storm(100); // 10%
        let mut gen = WorkloadGen::new(mix, tenants(), 0, 5).unwrap();
        let tunes = (0..2_000)
            .filter(|_| matches!(gen.next_op(), LoadOp::Tune { .. }))
            .count();
        assert!(
            (120..=280).contains(&tunes),
            "expected ~200 tunes in 2000 ops, got {tunes}"
        );
    }

    #[test]
    fn deadlines_are_stamped_when_configured() {
        let mut gen = WorkloadGen::new(MixSpec::point_heavy(), tenants(), 250, 9).unwrap();
        for _ in 0..50 {
            if let LoadOp::Query(q) = gen.next_op() {
                assert_eq!(q.deadline_ms, 250);
            }
        }
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        assert!(WorkloadGen::new(MixSpec::point_heavy(), vec![], 0, 1).is_err());
        let zero_mix = MixSpec {
            name: "zero".to_string(),
            ppsp: 0,
            sssp: 0,
            wbfs: 0,
            kcore: 0,
            tune_per_thousand: 0,
        };
        assert!(WorkloadGen::new(zero_mix, tenants(), 0, 1).is_err());
        let unweighted = vec![Tenant {
            graph: 0,
            weight: 0,
            vertices: 10,
        }];
        assert!(WorkloadGen::new(MixSpec::point_heavy(), unweighted, 0, 1).is_err());
    }
}
