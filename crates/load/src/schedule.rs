//! Deterministic open-loop arrival schedules.
//!
//! An open-loop load generator decides *when* each query arrives before it
//! knows how long any query takes — arrivals never wait for departures.
//! The schedule here is the whole source of that timing: a seeded stream
//! of inter-arrival gaps, either fixed (`1/rate` exactly) or Poisson
//! (exponential gaps with mean `1/rate`, the classic model of independent
//! users). Both are driven by the vendored `rand` shim's xoshiro256++
//! stream, so the full arrival timeline is a pure function of
//! `(kind, rate, seed, count)` — reproducible across runs and machines.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The arrival process shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Exponential inter-arrival gaps with mean `1/rate` — independent
    /// arrivals, bursty at every timescale. The realistic default.
    Poisson,
    /// Constant `1/rate` gaps — a metronome. Useful to separate queueing
    /// caused by burstiness from queueing caused by plain overload.
    Fixed,
}

impl ArrivalKind {
    /// Parses `"poisson"` or `"fixed"`.
    ///
    /// # Errors
    ///
    /// Describes the unrecognized name.
    pub fn parse(text: &str) -> Result<ArrivalKind, String> {
        match text {
            "poisson" => Ok(ArrivalKind::Poisson),
            "fixed" => Ok(ArrivalKind::Fixed),
            other => Err(format!(
                "unknown arrival kind {other:?} (want poisson or fixed)"
            )),
        }
    }

    /// The canonical name (`parse`'s inverse).
    pub fn name(self) -> &'static str {
        match self {
            ArrivalKind::Poisson => "poisson",
            ArrivalKind::Fixed => "fixed",
        }
    }
}

/// A seeded generator of absolute arrival times (microseconds from run
/// start), monotone nondecreasing. Accumulation is in `f64` so a long
/// schedule does not drift from integer truncation of every gap.
#[derive(Debug, Clone)]
pub struct ArrivalSchedule {
    kind: ArrivalKind,
    mean_gap_us: f64,
    next_at_us: f64,
    rng: StdRng,
}

impl ArrivalSchedule {
    /// A schedule offering `rate_qps` queries per second.
    ///
    /// # Errors
    ///
    /// Rejects non-finite or non-positive rates.
    pub fn new(kind: ArrivalKind, rate_qps: f64, seed: u64) -> Result<ArrivalSchedule, String> {
        if !rate_qps.is_finite() || rate_qps <= 0.0 {
            return Err(format!("arrival rate must be positive, got {rate_qps}"));
        }
        Ok(ArrivalSchedule {
            kind,
            mean_gap_us: 1_000_000.0 / rate_qps,
            next_at_us: 0.0,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// The next absolute arrival time in microseconds from run start.
    /// The first call returns the first gap (the schedule does not start
    /// with an arrival at t = 0).
    pub fn next_arrival_us(&mut self) -> u64 {
        let gap = match self.kind {
            ArrivalKind::Fixed => self.mean_gap_us,
            ArrivalKind::Poisson => {
                // Inverse-CDF exponential sampling: -ln(1 - u) has mean 1
                // for u uniform in [0, 1); 1 - u is in (0, 1], so the log
                // is finite and the gap nonnegative.
                let u = self.rng.unit_f64();
                -(1.0 - u).ln() * self.mean_gap_us
            }
        };
        self.next_at_us += gap;
        // Saturate rather than wrap on absurd schedules; 2^53 µs is ~285
        // years, far beyond any run.
        if self.next_at_us >= u64::MAX as f64 {
            u64::MAX
        } else {
            self.next_at_us as u64
        }
    }
}

/// The full arrival timeline for `count` queries: `count` absolute
/// microsecond offsets, monotone nondecreasing, fully determined by the
/// arguments.
pub fn arrival_times_us(kind: ArrivalKind, rate_qps: f64, seed: u64, count: usize) -> Vec<u64> {
    match ArrivalSchedule::new(kind, rate_qps, seed) {
        Ok(mut schedule) => (0..count).map(|_| schedule.next_arrival_us()).collect(),
        Err(_) => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_schedule_is_a_metronome() {
        let times = arrival_times_us(ArrivalKind::Fixed, 1_000.0, 9, 10);
        let expected: Vec<u64> = (1..=10).map(|i| i * 1_000).collect();
        assert_eq!(times, expected);
    }

    #[test]
    fn same_seed_same_timeline_different_seed_differs() {
        let a = arrival_times_us(ArrivalKind::Poisson, 500.0, 42, 256);
        let b = arrival_times_us(ArrivalKind::Poisson, 500.0, 42, 256);
        let c = arrival_times_us(ArrivalKind::Poisson, 500.0, 43, 256);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_is_monotone_and_near_the_offered_rate() {
        let rate = 2_000.0;
        let n = 4_000;
        let times = arrival_times_us(ArrivalKind::Poisson, rate, 7, n);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // Mean of n exponential gaps concentrates: the last arrival is
        // n/rate seconds in expectation, with ~1/sqrt(n) relative sd.
        let expected_us = n as f64 / rate * 1e6;
        let got = *times.last().unwrap() as f64;
        assert!(
            (got - expected_us).abs() < 0.1 * expected_us,
            "poisson timeline ends at {got}us, expected ~{expected_us}us"
        );
    }

    #[test]
    fn bad_rates_are_rejected() {
        assert!(ArrivalSchedule::new(ArrivalKind::Fixed, 0.0, 1).is_err());
        assert!(ArrivalSchedule::new(ArrivalKind::Fixed, -5.0, 1).is_err());
        assert!(ArrivalSchedule::new(ArrivalKind::Poisson, f64::NAN, 1).is_err());
        assert!(arrival_times_us(ArrivalKind::Fixed, 0.0, 1, 5).is_empty());
    }
}
