//! `priograph-load` — an open-loop latency harness with SLO gating.
//!
//! Every number the bench crate publishes (`serve_throughput`,
//! `plan_quality`) is a **closed-loop** median: the client waits for each
//! answer before issuing the next request, so the measured rate and the
//! offered rate are the same thing and queueing never builds. Serving
//! "millions of users" (the ROADMAP north star) is the opposite regime —
//! arrivals do not wait for departures — and the paper's ordered-algorithm
//! speedups only matter there if they survive queueing at realistic rates.
//! This crate is the instrument for that claim:
//!
//! * [`schedule`] — deterministic **open-loop arrival schedules** (Poisson
//!   and fixed-rate), seeded through the vendored `rand` shim so a run is
//!   reproducible bit-for-bit;
//! * [`workload`] — mixed PPSP/SSSP/wBFS/k-core query streams over
//!   weighted (hot/cold) tenants, with optional tune storms;
//! * [`mod@run`] — rate-controlled workers driving
//!   [`priograph_serve::client::ResilientClient`] against a live server,
//!   measuring every query **from its scheduled arrival time** (so queue
//!   delay is charged — no coordinated omission) into
//!   [`priograph_telemetry::LatencyHistogram`]s, with one
//!   [`priograph_telemetry::EventRing`] record per attempt, completion,
//!   breaker transition, and local refusal;
//! * [`trace`] — the event packing, plus the breaker **state-walk
//!   validator** that proves no transition was lost and computes total
//!   breaker-open time from the drained log;
//! * [`report`] — `priograph-bench-v1` emission (percentiles, error/Busy
//!   rates, breaker-open time) and the **exactly-once reconciliation**
//!   against server `StatsV2` (`phase.total` span counts,
//!   `busy_rejections`, per-kind error counters);
//! * [`knee`] — the stepped-rate **knee finder**: the highest offered rate
//!   the server sustains before client-observed p99 crosses a budget;
//! * [`slo`] — the committed per-mix SLO file (`slo.toml`): p99 budgets,
//!   completion floors, and the tune-storm degradation bound, read by the
//!   binaries (and CI) instead of ad-hoc CLI flags.
//!
//! Binaries: `priograph-load` (one configuration, human-readable + JSON),
//! `load_knee` (the rate ladder, emitting the gated `BENCH_PR9_LOAD.json`),
//! and `load_lane` (the lane-fairness proof: point-heavy p99 with and
//! without a concurrent `TuneGraph` storm, emitting the gated
//! `BENCH_PR10_SCHED.json`). `docs/ARCHITECTURE.md` §9–§10 cover the
//! methodology.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod knee;
pub mod report;
pub mod run;
pub mod schedule;
pub mod slo;
pub mod trace;
pub mod workload;

pub use knee::{find_knee, KneeConfig, KneeResult, KneeStep};
pub use run::{run, RunConfig, RunReport, DISPATCHED_ERROR_KINDS};
pub use schedule::{arrival_times_us, ArrivalKind, ArrivalSchedule};
pub use slo::{LaneSlo, MixSlo, SloFile};
pub use trace::{validate_breaker_walk, BreakerWalk, TraceEvent};
pub use workload::{LoadOp, MixSpec, Tenant, WorkloadGen};
