//! The open-loop run engine: paced workers, resilient clients, and the
//! post-run accounting.
//!
//! One run is: a global arrival timeline (from [`crate::schedule`]), dealt
//! round-robin to `workers` threads, each thread drawing its operations
//! from its own seeded [`WorkloadGen`] and driving one
//! [`ResilientClient`] connection. Every latency is measured **from the
//! scheduled arrival time**, not from the send: when the server falls
//! behind, the queue delay the next user would feel is charged to the
//! measurement instead of silently absorbed (the coordinated-omission
//! trap closed-loop harnesses fall into). Every attempt, breaker
//! transition, local refusal, and completion is packed into a shared
//! [`EventRing`]; the run fails if the ring dropped anything, and the
//! drained log must pass [`crate::trace::validate_breaker_walk`] before a
//! report is produced.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use priograph_serve::client::{
    AttemptClass, Backoff, CircuitBreaker, ClientConfig, ClientEvent, ResilientClient,
};
use priograph_serve::protocol::{ErrorKind, Request, Response, WireError};
use priograph_telemetry::{EventRing, LatencyHistogram, Summary};

use crate::schedule::{arrival_times_us, ArrivalKind};
use crate::trace::{
    decode_all, pack_attempt, pack_breaker, pack_done, pack_refusal, validate_breaker_walk,
    BreakerWalk, Outcome, TraceEvent,
};
use crate::workload::{LoadOp, MixSpec, Tenant, WorkloadGen};

/// Error kinds whose queries were actually dispatched to an engine slot,
/// so the server recorded a `phase.total` span for them. `Ok` responses
/// plus finals of these kinds together equal the server-side span-count
/// delta — the exactly-once reconciliation in [`crate::report`]. The
/// other kinds (admission `Busy`, drain refusals, unknown graphs, decode
/// failures) are refused before dispatch and get no span.
pub const DISPATCHED_ERROR_KINDS: [ErrorKind; 5] = [
    ErrorKind::Internal,
    ErrorKind::BadVertex,
    ErrorKind::ScheduleRejected,
    ErrorKind::TooLarge,
    ErrorKind::Timeout,
];

/// Everything one run needs. Build with [`RunConfig::new`] and override
/// fields directly.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Server address to drive.
    pub addr: std::net::SocketAddr,
    /// Operation mix (and tune-storm intensity).
    pub mix: MixSpec,
    /// Weighted tenants (hot/cold graphs).
    pub tenants: Vec<Tenant>,
    /// Arrival process shape.
    pub arrivals: ArrivalKind,
    /// Offered rate, queries per second across all workers.
    pub rate_qps: f64,
    /// Total scheduled operations.
    pub ops: usize,
    /// Worker threads (one client connection each).
    pub workers: usize,
    /// Master seed; the arrival timeline, every worker's op stream, and
    /// every backoff jitter walk derive from it deterministically.
    pub seed: u64,
    /// Deadline stamped on every query, ms (0 = none).
    pub deadline_ms: u32,
    /// Retry budget per operation.
    pub max_attempts: u32,
    /// Breaker: consecutive failures before opening.
    pub breaker_threshold: u32,
    /// Breaker: cooldown before the half-open probe, ms.
    pub breaker_cooldown_ms: u64,
    /// Client socket read/write budget, ms (connect uses the same).
    pub timeout_ms: u64,
    /// Retry backoff base, ms (doubles per attempt, jittered).
    pub backoff_base_ms: u64,
    /// Retry backoff cap, ms.
    pub backoff_cap_ms: u64,
    /// Keep the raw per-success latency samples in the report (for exact
    /// percentile cross-checks in tests).
    pub keep_raw: bool,
}

impl RunConfig {
    /// A config with harness-appropriate defaults: point-heavy mix, one
    /// tenant placeholder (override!), Poisson arrivals at 100 q/s, 2
    /// workers, fast retries, 1s socket budgets.
    pub fn new(addr: std::net::SocketAddr) -> RunConfig {
        RunConfig {
            addr,
            mix: MixSpec::point_heavy(),
            tenants: vec![Tenant {
                graph: 0,
                weight: 1,
                vertices: 1,
            }],
            arrivals: ArrivalKind::Poisson,
            rate_qps: 100.0,
            ops: 1_000,
            workers: 2,
            seed: 42,
            deadline_ms: 0,
            max_attempts: 3,
            breaker_threshold: 5,
            breaker_cooldown_ms: 100,
            timeout_ms: 2_000,
            backoff_base_ms: 1,
            backoff_cap_ms: 50,
            keep_raw: false,
        }
    }
}

/// The per-worker schedule: each entry is (scheduled arrival µs from run
/// start, the operation). Pure function of the config — two calls with
/// the same config produce identical plans, which is the determinism the
/// property tests pin down.
///
/// # Errors
///
/// Rejects empty runs, zero workers, bad rates, and degenerate workloads.
pub fn plan(config: &RunConfig) -> Result<Vec<Vec<(u64, LoadOp)>>, String> {
    if config.ops == 0 {
        return Err("run needs at least one scheduled op".to_string());
    }
    if config.workers == 0 {
        return Err("run needs at least one worker".to_string());
    }
    let times = arrival_times_us(config.arrivals, config.rate_qps, config.seed, config.ops);
    if times.is_empty() {
        return Err(format!("bad arrival rate {}", config.rate_qps));
    }
    let mut plans: Vec<Vec<(u64, LoadOp)>> = vec![Vec::new(); config.workers];
    let mut gens: Vec<WorkloadGen> = (0..config.workers)
        .map(|w| {
            WorkloadGen::new(
                config.mix.clone(),
                config.tenants.clone(),
                config.deadline_ms,
                config
                    .seed
                    .wrapping_add((w as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            )
        })
        .collect::<Result<_, _>>()?;
    for (i, &at) in times.iter().enumerate() {
        let w = i % config.workers;
        plans[w].push((at, gens[w].next_op()));
    }
    Ok(plans)
}

/// Per-worker final-outcome tallies, summed into the report after join.
#[derive(Debug, Default, Clone)]
struct Tally {
    scheduled: u64,
    ok: u64,
    err_by_kind: [u64; ErrorKind::ALL.len()],
    busy_gave_up: u64,
    refused: u64,
    io_final: u64,
    wire_final: u64,
    tunes: u64,
    tunes_ok: u64,
    raw_latency_us: Vec<u64>,
}

/// What one run measured; [`crate::report`] turns this into bench
/// records, prose, and the StatsV2 reconciliation.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Mix name.
    pub mix: String,
    /// Arrival process name.
    pub arrivals: String,
    /// Offered rate, q/s.
    pub rate_qps: f64,
    /// Master seed.
    pub seed: u64,
    /// Worker threads used.
    pub workers: usize,
    /// Operations scheduled (queries + tunes).
    pub scheduled: u64,
    /// Queries the server dispatched and answered (`Ok` + finals of
    /// [`DISPATCHED_ERROR_KINDS`]) — must equal the server's
    /// `phase.total` span-count delta.
    pub completed: u64,
    /// Successful query responses.
    pub ok: u64,
    /// Tune operations attempted / succeeded.
    pub tunes: u64,
    /// Tune operations that installed a plan.
    pub tunes_ok: u64,
    /// Final outcomes per error kind, nonzero entries only, sorted.
    pub errors: Vec<(String, u64)>,
    /// Per-attempt in-band errors per kind (what the server counts),
    /// nonzero entries only, sorted.
    pub attempt_errors: Vec<(String, u64)>,
    /// Operations that exhausted retries on admission `Busy`.
    pub busy_gave_up: u64,
    /// Operations refused locally by an open breaker.
    pub refused: u64,
    /// Operations that ended on a socket error.
    pub io_errors: u64,
    /// Operations that ended on a framing/version error.
    pub wire_errors: u64,
    /// Total wire attempts.
    pub attempts: u64,
    /// Attempts answered `Busy` — must equal the server's
    /// `busy_rejections` delta.
    pub busy_attempts: u64,
    /// Local breaker refusal events.
    pub local_refusals: u64,
    /// Client-observed latency of successful queries, measured from the
    /// scheduled arrival (queue delay charged).
    pub latency: Summary,
    /// Same successes measured from first send (service view).
    pub service: Summary,
    /// Validated breaker accounting from the event log.
    pub breaker: BreakerWalk,
    /// Wall-clock run duration, µs.
    pub duration_us: u64,
    /// Completed queries per wall-clock second.
    pub achieved_qps: f64,
    /// Raw success latencies (µs), only when `keep_raw` was set.
    pub raw_latency_us: Vec<u64>,
}

fn classify(result: &Result<Response, WireError>) -> Outcome {
    match result {
        Ok(Response::Busy { .. }) | Err(WireError::Busy { .. }) => Outcome::Busy,
        Ok(Response::Error { kind, .. }) | Err(WireError::Remote { kind, .. }) => {
            Outcome::Err(*kind)
        }
        Ok(_) => Outcome::Ok,
        Err(WireError::CircuitOpen { .. }) => Outcome::Refused,
        Err(WireError::Io(_)) => Outcome::Io,
        Err(_) => Outcome::Wire,
    }
}

fn kind_index(kind: ErrorKind) -> usize {
    ErrorKind::ALL.iter().position(|k| *k == kind).unwrap_or(0)
}

fn micros_since(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Busy-waits only the last ~millisecond; longer gaps sleep (minus a
/// safety margin so an early wake never sends ahead of schedule).
fn pace_until(start: Instant, sched_at_us: u64) {
    loop {
        let now = micros_since(start);
        if now >= sched_at_us {
            return;
        }
        let gap = sched_at_us - now;
        if gap > 1_500 {
            std::thread::sleep(Duration::from_micros(gap - 1_000));
        } else {
            std::thread::yield_now();
        }
    }
}

fn worker_client(config: &RunConfig, worker: usize) -> ResilientClient {
    ResilientClient::with_policy(
        config.addr,
        ClientConfig {
            connect_timeout_ms: config.timeout_ms,
            read_timeout_ms: config.timeout_ms,
            write_timeout_ms: config.timeout_ms,
        },
        CircuitBreaker::new(
            config.breaker_threshold,
            Duration::from_millis(config.breaker_cooldown_ms),
        ),
        Backoff::new(
            config.backoff_base_ms,
            config.backoff_cap_ms,
            config.seed.wrapping_add(worker as u64) | 1,
        ),
        config.max_attempts,
    )
}

#[allow(clippy::too_many_lines)]
fn worker_loop(
    config: &RunConfig,
    worker: usize,
    ops: Vec<(u64, LoadOp)>,
    start: Instant,
    ring: &Arc<EventRing>,
    latency: &LatencyHistogram,
    service: &LatencyHistogram,
) -> Tally {
    let mut tally = Tally {
        scheduled: ops.len() as u64,
        ..Tally::default()
    };
    let mut client = worker_client(config, worker);
    let wid = worker as u16;
    let per_req_attempts = Arc::new(AtomicU32::new(0));
    {
        let ring = Arc::clone(ring);
        let per_req_attempts = Arc::clone(&per_req_attempts);
        client.set_event_sink(move |event| match event {
            ClientEvent::Attempt { class, failure, .. } => {
                per_req_attempts.fetch_add(1, Ordering::Relaxed);
                let (a, b) = pack_attempt(wid, &class, failure);
                ring.record(a, b);
            }
            ClientEvent::Breaker { from, to } => {
                let (a, b) = pack_breaker(wid, from, to);
                ring.record(a, b);
            }
            ClientEvent::LocalRefusal { retry_after_ms } => {
                let (a, b) = pack_refusal(wid, retry_after_ms);
                ring.record(a, b);
            }
        });
    }
    for (sched_at, op) in ops {
        pace_until(start, sched_at);
        per_req_attempts.store(0, Ordering::Relaxed);
        let sent_at = micros_since(start);
        let (result, is_tune) = match op {
            LoadOp::Query(q) => (client.query(q), false),
            LoadOp::Tune {
                graph,
                algo,
                budget,
            } => (
                client.request(&Request::TuneGraph {
                    graph,
                    algo,
                    budget,
                }),
                true,
            ),
        };
        let done_at = micros_since(start);
        let outcome = classify(&result);
        let attempts = per_req_attempts.load(Ordering::Relaxed).min(65_535) as u16;
        // Open-loop latency: from the scheduled arrival, so time spent
        // waiting behind a slow server (send happened late) is charged.
        let open_loop_us = done_at.saturating_sub(sched_at);
        let service_us = done_at.saturating_sub(sent_at);
        let (a, b) = pack_done(
            wid,
            outcome,
            client.breaker_state(),
            attempts,
            open_loop_us,
            service_us,
        );
        ring.record(a, b);
        if is_tune {
            tally.tunes += 1;
            if outcome == Outcome::Ok {
                tally.tunes_ok += 1;
            }
            continue;
        }
        match outcome {
            Outcome::Ok => {
                tally.ok += 1;
                latency.record_value(open_loop_us);
                service.record_value(service_us);
                if config.keep_raw {
                    tally.raw_latency_us.push(open_loop_us);
                }
            }
            Outcome::Err(kind) => tally.err_by_kind[kind_index(kind)] += 1,
            Outcome::Busy => tally.busy_gave_up += 1,
            Outcome::Refused => tally.refused += 1,
            Outcome::Io => tally.io_final += 1,
            Outcome::Wire => tally.wire_final += 1,
        }
    }
    tally
}

fn nonzero_sorted(counts: &[u64; ErrorKind::ALL.len()]) -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = ErrorKind::ALL
        .iter()
        .enumerate()
        .filter(|&(i, _)| counts[i] > 0)
        .map(|(i, kind)| (kind.to_string(), counts[i]))
        .collect();
    out.sort();
    out
}

/// Executes one open-loop run and validates its event log.
///
/// # Errors
///
/// Configuration problems, a ring overflow (the capacity formula was
/// violated), an undecodable event, or an illegal breaker walk.
pub fn run(config: &RunConfig) -> Result<RunReport, String> {
    let plans = plan(config)?;
    // Worst case per operation: every attempt can emit a preflight
    // transition, the attempt itself, and a post-attempt transition; plus
    // one completion and one local refusal.
    let capacity = config
        .ops
        .saturating_mul(3 * config.max_attempts as usize + 2)
        + 64;
    let ring = Arc::new(EventRing::new(capacity));
    let latency = Arc::new(LatencyHistogram::new());
    let service = Arc::new(LatencyHistogram::new());
    let start = Instant::now();
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = plans
            .into_iter()
            .enumerate()
            .map(|(w, ops)| {
                let ring = Arc::clone(&ring);
                let latency = Arc::clone(&latency);
                let service = Arc::clone(&service);
                scope.spawn(move || worker_loop(config, w, ops, start, &ring, &latency, &service))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let duration_us = micros_since(start);
    let end_us = ring.now_us();
    if ring.dropped() > 0 {
        return Err(format!(
            "event ring dropped {} records (capacity {capacity}) — accounting is incomplete",
            ring.dropped()
        ));
    }
    let raw = ring.snapshot();
    let events = decode_all(&raw)?;
    let breaker = validate_breaker_walk(&events, end_us, config.breaker_threshold)?;

    let mut attempts = 0u64;
    let mut busy_attempts = 0u64;
    let mut local_refusals = 0u64;
    let mut attempt_err_by_kind = [0u64; ErrorKind::ALL.len()];
    for event in &events {
        match event {
            TraceEvent::Attempt { class, .. } => {
                attempts += 1;
                match class {
                    AttemptClass::Busy => busy_attempts += 1,
                    AttemptClass::Error(kind) => attempt_err_by_kind[kind_index(*kind)] += 1,
                    _ => {}
                }
            }
            TraceEvent::Refusal { .. } => local_refusals += 1,
            _ => {}
        }
    }

    let mut totals = Tally::default();
    for t in tallies {
        totals.scheduled += t.scheduled;
        totals.ok += t.ok;
        for (i, n) in t.err_by_kind.iter().enumerate() {
            totals.err_by_kind[i] += n;
        }
        totals.busy_gave_up += t.busy_gave_up;
        totals.refused += t.refused;
        totals.io_final += t.io_final;
        totals.wire_final += t.wire_final;
        totals.tunes += t.tunes;
        totals.tunes_ok += t.tunes_ok;
        totals.raw_latency_us.extend(t.raw_latency_us);
    }
    let dispatched_errors: u64 = DISPATCHED_ERROR_KINDS
        .iter()
        .map(|&k| totals.err_by_kind[kind_index(k)])
        .sum();
    let completed = totals.ok + dispatched_errors;
    let achieved_qps = if duration_us > 0 {
        completed as f64 * 1e6 / duration_us as f64
    } else {
        0.0
    };
    Ok(RunReport {
        mix: config.mix.name.clone(),
        arrivals: config.arrivals.name().to_string(),
        rate_qps: config.rate_qps,
        seed: config.seed,
        workers: config.workers,
        scheduled: totals.scheduled,
        completed,
        ok: totals.ok,
        tunes: totals.tunes,
        tunes_ok: totals.tunes_ok,
        errors: nonzero_sorted(&totals.err_by_kind),
        attempt_errors: nonzero_sorted(&attempt_err_by_kind),
        busy_gave_up: totals.busy_gave_up,
        refused: totals.refused,
        io_errors: totals.io_final,
        wire_errors: totals.wire_final,
        attempts,
        busy_attempts,
        local_refusals,
        latency: latency.summary(),
        service: service.summary(),
        breaker,
        duration_us,
        achieved_qps,
        raw_latency_us: totals.raw_latency_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> RunConfig {
        let mut c = RunConfig::new("127.0.0.1:1".parse().unwrap());
        c.tenants = vec![
            Tenant {
                graph: 0,
                weight: 4,
                vertices: 100,
            },
            Tenant {
                graph: 1,
                weight: 1,
                vertices: 64,
            },
        ];
        c.ops = 300;
        c.workers = 3;
        c
    }

    #[test]
    fn plans_are_deterministic_and_cover_every_op() {
        let c = config();
        let a = plan(&c).unwrap();
        let b = plan(&c).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.iter().map(Vec::len).sum::<usize>(), 300);
        // Round-robin deal: worker sizes differ by at most one.
        let sizes: Vec<usize> = a.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        // Arrival times are monotone within each worker.
        for ops in &a {
            assert!(ops.windows(2).all(|w| w[0].0 <= w[1].0));
        }
        let mut c2 = config();
        c2.seed += 1;
        assert_ne!(plan(&c2).unwrap(), a);
    }

    #[test]
    fn degenerate_run_configs_are_rejected() {
        let mut c = config();
        c.ops = 0;
        assert!(plan(&c).is_err());
        let mut c = config();
        c.workers = 0;
        assert!(plan(&c).is_err());
        let mut c = config();
        c.rate_qps = 0.0;
        assert!(plan(&c).is_err());
    }
}
