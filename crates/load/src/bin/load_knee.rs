//! The stepped-rate knee finder: max sustainable q/s before p99 crosses
//! the budget, per workload mix, emitted as gateable bench records.
//!
//! For each `--mixes` entry the binary serves a fresh loopback server
//! from the `--graphs` specs (first graph hot), walks the ascending
//! `--rates` ladder with `priograph_load::find_knee`, and records:
//!
//! * `knee-<mix>-ns-per-query` — `1e9 / knee_qps`, smaller is better (a
//!   halved knee doubles the record, tripping the ratio gate);
//! * `knee-<mix>-p99-us` — the open-loop p99 at the knee rung.
//!
//! Each mix's p99 budget and completion floor come from the committed
//! per-mix SLO file (`slo.toml`, see `priograph_load::slo`) when present;
//! `--budget-p99-ms` / `--min-completion` override it for experiments, and
//! the built-in defaults apply when neither exists. The committed
//! `BENCH_PR9_LOAD.json` is produced by this binary with default flags;
//! CI regenerates it at the pinned seeds and gates with
//! `scripts/bench_compare --fail-ratio 10.0` (cross-machine slack — the
//! gate catches collapses, not jitter).
//!
//! ```text
//! load_knee [--out BENCH_PR9_LOAD.json] [--mixes point-heavy,scan-heavy]
//!           [--rates 50,...,6400] [--ops 400] [--slo slo.toml]
//!           [--budget-p99-ms 50] [--workers 2] [--seed 42]
//!           [--graphs grid:40,grid:30] [--threads 2] [--hot-weight 4]
//!           [--min-completion 0.95]
//! ```

use priograph_bench::record::BenchReport;
use priograph_load::knee::{find_knee, KneeConfig};
use priograph_load::run::RunConfig;
use priograph_load::slo::{SloFile, DEFAULT_SLO_PATH};
use priograph_load::workload::{MixSpec, Tenant};
use priograph_serve::server::{serve_named, ServerConfig};
use priograph_serve::spec::graph_from_spec;

struct Args {
    out: std::path::PathBuf,
    mixes: Vec<String>,
    rates: Vec<f64>,
    ops: usize,
    budget_p99_ms: Option<u64>,
    workers: usize,
    seed: u64,
    graphs: Vec<String>,
    threads: usize,
    hot_weight: u32,
    min_completion: Option<f64>,
    slo: Option<std::path::PathBuf>,
}

fn parse_rates(text: &str) -> Vec<f64> {
    text.split(',')
        .map(|part| {
            part.trim().parse::<f64>().ok().unwrap_or_else(|| {
                eprintln!("--rates expects a comma-separated list of numbers");
                std::process::exit(2);
            })
        })
        .collect()
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            out: std::path::PathBuf::from("BENCH_PR9_LOAD.json"),
            mixes: vec!["point-heavy".to_string(), "scan-heavy".to_string()],
            // Raised ladder (ISSUE 10): with the work-stealing core the
            // knee is no longer pinned to the dispatcher's round rate, so
            // the old 800 q/s top rung censored the measurement.
            rates: vec![50.0, 100.0, 200.0, 400.0, 800.0, 1_600.0, 3_200.0, 6_400.0],
            ops: 400,
            budget_p99_ms: None,
            workers: 2,
            seed: 42,
            graphs: vec!["grid:40".to_string(), "grid:30".to_string()],
            threads: 2,
            hot_weight: 4,
            min_completion: None,
            slo: None,
        };
        let mut argv = std::env::args().skip(1);
        while let Some(flag) = argv.next() {
            let mut take = |what: &str| -> String {
                argv.next()
                    .unwrap_or_else(|| panic!("{what} expects a value"))
            };
            match flag.as_str() {
                "--out" => args.out = take("--out").into(),
                "--mixes" => args.mixes = take("--mixes").split(',').map(str::to_string).collect(),
                "--rates" => args.rates = parse_rates(&take("--rates")),
                "--ops" => args.ops = take("--ops").parse().expect("--ops"),
                "--budget-p99-ms" => {
                    args.budget_p99_ms =
                        Some(take("--budget-p99-ms").parse().expect("--budget-p99-ms"));
                }
                "--slo" => args.slo = Some(take("--slo").into()),
                "--workers" => args.workers = take("--workers").parse().expect("--workers"),
                "--seed" => args.seed = take("--seed").parse().expect("--seed"),
                "--graphs" => {
                    args.graphs = take("--graphs").split(',').map(str::to_string).collect();
                }
                "--threads" => args.threads = take("--threads").parse().expect("--threads"),
                "--hot-weight" => {
                    args.hot_weight = take("--hot-weight").parse().expect("--hot-weight");
                }
                "--min-completion" => {
                    args.min_completion =
                        Some(take("--min-completion").parse().expect("--min-completion"));
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --out PATH  --mixes LIST  --rates LIST  --ops N\n\
                         \x20      --slo PATH  --budget-p99-ms N  --workers N  --seed N\n\
                         \x20      --graphs SPEC,SPEC  --threads N  --hot-weight N\n\
                         \x20      --min-completion F"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; see --help");
                    std::process::exit(2);
                }
            }
        }
        args
    }
}

/// Loads the SLO file: the `--slo` path must parse; the default path is
/// optional (absent ⇒ built-in defaults) but must parse when present.
fn load_slo(explicit: Option<&std::path::Path>) -> SloFile {
    let (path, required) = match explicit {
        Some(p) => (p.to_path_buf(), true),
        None => (std::path::PathBuf::from(DEFAULT_SLO_PATH), false),
    };
    if !required && !path.exists() {
        return SloFile::default();
    }
    SloFile::load(&path).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

fn main() {
    let args = Args::parse();
    let slo = load_slo(args.slo.as_deref());
    let mut bench = BenchReport::new(args.workers);

    for mix_name in &args.mixes {
        let mix = MixSpec::parse(mix_name).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        // A fresh server per mix: rungs within a ladder share it (drained
        // between rungs), but mixes never see each other's warm state.
        let mut named = Vec::new();
        let mut tenants = Vec::new();
        for (i, spec) in args.graphs.iter().enumerate() {
            let graph = graph_from_spec(spec).unwrap_or_else(|e| {
                eprintln!("bad --graphs entry {spec:?}: {e}");
                std::process::exit(2);
            });
            tenants.push(Tenant {
                graph: i as u32,
                weight: if i == 0 { args.hot_weight.max(1) } else { 1 },
                vertices: graph.num_vertices() as u32,
            });
            named.push((format!("g{i}"), graph));
        }
        let handle = serve_named(
            named,
            ServerConfig {
                threads: args.threads.max(1),
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback server");

        let mut base = RunConfig::new(handle.addr());
        base.mix = mix;
        base.tenants = tenants;
        base.workers = args.workers.max(1);
        base.seed = args.seed;
        // Precedence per mix: CLI flag > slo.toml entry > built-in default.
        let mix_slo = slo.mix(mix_name);
        let budget_p99_us = args
            .budget_p99_ms
            .map(|ms| ms.saturating_mul(1_000))
            .or(mix_slo.map(|m| m.p99_budget_us))
            .unwrap_or(50_000);
        let min_completion = args
            .min_completion
            .or(mix_slo.map(|m| m.min_completion))
            .unwrap_or(0.95);
        let knee_config = KneeConfig {
            budget_p99_us,
            rates: args.rates.clone(),
            ops_per_step: args.ops,
            min_completion,
        };
        let result = find_knee(&base, &knee_config).unwrap_or_else(|e| {
            eprintln!("knee ladder failed for {mix_name}: {e}");
            std::process::exit(1);
        });
        handle.stop();

        for step in &result.steps {
            eprintln!(
                "{mix_name:<12} {:>7.0} q/s  p99 {:>8}us  completed {}/{}  {}",
                step.rate_qps,
                step.p99_us,
                step.completed,
                step.scheduled,
                if step.sustainable { "ok" } else { "KNEE" }
            );
        }
        eprintln!(
            "{mix_name:<12} knee = {:.0} q/s ({} ns/query)",
            result.knee_qps, result.ns_per_query
        );

        // p99 at the knee rung (the last sustainable step); the first
        // rung's p99 if nothing sustained, so the record is never zero.
        let knee_p99 = result
            .steps
            .iter()
            .rev()
            .find(|s| s.sustainable)
            .or(result.steps.first())
            .map_or(1, |s| s.p99_us.max(1));
        let samples = args.ops * args.rates.len();
        bench.push_value(
            format!("knee-{mix_name}-ns-per-query"),
            result.ns_per_query,
            samples,
            "ns-per-query",
        );
        bench.push_value(format!("knee-{mix_name}-p99-us"), knee_p99, samples, "us");
    }

    bench.write(&args.out).expect("writing bench report");
    eprintln!(
        "wrote {} ({} records, rev {})",
        args.out.display(),
        bench.records.len(),
        bench.git_rev
    );
}
