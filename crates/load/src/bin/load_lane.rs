//! The lane-fairness proof: point-heavy p99 with and without a concurrent
//! `TuneGraph` storm, gated against the committed SLO.
//!
//! This is the acceptance instrument for the work-stealing execution core
//! (ISSUE 10). Under the old single-dispatcher architecture a tune run
//! owned the pool for many measured trials while admitted point queries
//! queued behind it — the exact scenario this binary makes a number:
//!
//! 1. **Baseline**: a fresh loopback server, one seeded open-loop
//!    point-heavy run, record the open-loop p99.
//! 2. **Storm**: an identical fresh server and the *same seeded run*, but
//!    with `--storm-conns` extra connections issuing back-to-back
//!    `TuneGraph` requests against the hot graph for the whole run.
//! 3. **Gate**: `storm p99 / baseline p99` must stay within the committed
//!    `[lane.point-heavy]` SLO (`slo.toml`: `storm_p99_ratio_max`, with
//!    `storm_p99_floor_us` as an absolute grace floor so timer noise on a
//!    millisecond baseline cannot fail the ratio). Violation exits 1.
//!
//! Emitted records (`BENCH_PR10_SCHED.json`, gateable by `bench_compare`):
//!
//! * `lane-<mix>-baseline-p99-us` — storm-free open-loop p99;
//! * `lane-<mix>-storm-p99-us` — the same run's p99 under the storm;
//! * `lane-<mix>-storm-ratio-x1000` — the degradation ratio × 1000,
//!   machine-speed-independent, smaller is better.
//!
//! ```text
//! load_lane [--out BENCH_PR10_SCHED.json] [--mix point-heavy] [--rate 300]
//!           [--ops 400] [--workers 2] [--seed 42] [--graphs grid:40,grid:30]
//!           [--threads 2] [--hot-weight 4] [--storm-conns 2]
//!           [--tune-budget 2] [--slo slo.toml] [--no-gate]
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use priograph_bench::record::BenchReport;
use priograph_load::run::{run, RunConfig, RunReport};
use priograph_load::slo::{LaneSlo, SloFile, DEFAULT_SLO_PATH};
use priograph_load::workload::{MixSpec, Tenant};
use priograph_serve::client::Client;
use priograph_serve::protocol::QueryOp;
use priograph_serve::server::{serve_named, ServerConfig, ServerHandle};
use priograph_serve::spec::graph_from_spec;

struct Args {
    out: std::path::PathBuf,
    mix: String,
    rate: f64,
    ops: usize,
    workers: usize,
    seed: u64,
    graphs: Vec<String>,
    threads: usize,
    hot_weight: u32,
    storm_conns: usize,
    tune_budget: u32,
    slo: Option<std::path::PathBuf>,
    gate: bool,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            out: std::path::PathBuf::from("BENCH_PR10_SCHED.json"),
            mix: "point-heavy".to_string(),
            rate: 300.0,
            ops: 400,
            workers: 2,
            seed: 42,
            graphs: vec!["grid:40".to_string(), "grid:30".to_string()],
            threads: 2,
            hot_weight: 4,
            storm_conns: 2,
            tune_budget: 2,
            slo: None,
            gate: true,
        };
        let mut argv = std::env::args().skip(1);
        while let Some(flag) = argv.next() {
            let mut take = |what: &str| -> String {
                argv.next()
                    .unwrap_or_else(|| panic!("{what} expects a value"))
            };
            match flag.as_str() {
                "--out" => args.out = take("--out").into(),
                "--mix" => args.mix = take("--mix"),
                "--rate" => args.rate = take("--rate").parse().expect("--rate"),
                "--ops" => args.ops = take("--ops").parse().expect("--ops"),
                "--workers" => args.workers = take("--workers").parse().expect("--workers"),
                "--seed" => args.seed = take("--seed").parse().expect("--seed"),
                "--graphs" => {
                    args.graphs = take("--graphs").split(',').map(str::to_string).collect();
                }
                "--threads" => args.threads = take("--threads").parse().expect("--threads"),
                "--hot-weight" => {
                    args.hot_weight = take("--hot-weight").parse().expect("--hot-weight");
                }
                "--storm-conns" => {
                    args.storm_conns = take("--storm-conns").parse().expect("--storm-conns");
                }
                "--tune-budget" => {
                    args.tune_budget = take("--tune-budget").parse().expect("--tune-budget");
                }
                "--slo" => args.slo = Some(take("--slo").into()),
                "--no-gate" => args.gate = false,
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --out PATH  --mix NAME  --rate QPS  --ops N  --workers N\n\
                         \x20      --seed N  --graphs SPEC,SPEC  --threads N  --hot-weight N\n\
                         \x20      --storm-conns N  --tune-budget N  --slo PATH  --no-gate"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; see --help");
                    std::process::exit(2);
                }
            }
        }
        args
    }
}

fn fresh_server(args: &Args) -> (ServerHandle, Vec<Tenant>) {
    let mut named = Vec::new();
    let mut tenants = Vec::new();
    for (i, spec) in args.graphs.iter().enumerate() {
        let graph = graph_from_spec(spec).unwrap_or_else(|e| {
            eprintln!("bad --graphs entry {spec:?}: {e}");
            std::process::exit(2);
        });
        tenants.push(Tenant {
            graph: i as u32,
            weight: if i == 0 { args.hot_weight.max(1) } else { 1 },
            vertices: graph.num_vertices() as u32,
        });
        named.push((format!("g{i}"), graph));
    }
    let handle = serve_named(
        named,
        ServerConfig {
            threads: args.threads.max(1),
            ..ServerConfig::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("bind loopback server: {e}");
        std::process::exit(1);
    });
    (handle, tenants)
}

fn measured_run(
    args: &Args,
    mix: MixSpec,
    addr: std::net::SocketAddr,
    tenants: Vec<Tenant>,
) -> RunReport {
    let mut config = RunConfig::new(addr);
    config.mix = mix;
    config.tenants = tenants;
    config.rate_qps = args.rate;
    config.ops = args.ops;
    config.workers = args.workers.max(1);
    config.seed = args.seed;
    run(&config).unwrap_or_else(|e| {
        eprintln!("run failed: {e}");
        std::process::exit(1);
    })
}

/// One storm connection: back-to-back `TuneGraph` requests against the hot
/// graph until told to stop. Errors (e.g. Busy under quota pressure) are
/// tolerated — the storm's only job is to keep background tune packets in
/// flight; `tunes_done` counts the ones that landed.
fn storm_loop(addr: std::net::SocketAddr, budget: u32, stop: &AtomicBool, tunes_done: &AtomicU64) {
    while !stop.load(Ordering::Acquire) {
        let Ok(mut client) = Client::connect(addr) else {
            std::thread::sleep(std::time::Duration::from_millis(5));
            continue;
        };
        while !stop.load(Ordering::Acquire) {
            match client.tune_graph(0, QueryOp::Sssp, budget) {
                Ok(_) => {
                    tunes_done.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => break, // reconnect (or exit on the stop flag)
            }
        }
    }
}

fn main() {
    let args = Args::parse();
    let slo_file = match &args.slo {
        Some(path) => SloFile::load(path).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        }),
        None => {
            let default = std::path::Path::new(DEFAULT_SLO_PATH);
            if default.exists() {
                SloFile::load(default).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                })
            } else {
                SloFile::default()
            }
        }
    };
    let lane_slo = slo_file.lane(&args.mix).unwrap_or(LaneSlo {
        storm_p99_ratio_max: 2.0,
        storm_p99_floor_us: 20_000,
    });
    let mix = MixSpec::parse(&args.mix).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    // Phase 1: the storm-free baseline on a fresh server.
    let (handle, tenants) = fresh_server(&args);
    let baseline = measured_run(&args, mix.clone(), handle.addr(), tenants);
    handle.stop();
    eprintln!(
        "baseline  p99 {:>8}us  ok {}/{}  ({:.0} q/s achieved)",
        baseline.latency.p99, baseline.ok, baseline.scheduled, baseline.achieved_qps
    );

    // Phase 2: the identical seeded run on an identical fresh server,
    // under a continuous TuneGraph storm on the hot graph.
    let (handle, tenants) = fresh_server(&args);
    let addr = handle.addr();
    let stop = Arc::new(AtomicBool::new(false));
    let tunes_done = Arc::new(AtomicU64::new(0));
    let storm: Vec<_> = (0..args.storm_conns)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let tunes_done = Arc::clone(&tunes_done);
            let budget = args.tune_budget;
            std::thread::spawn(move || storm_loop(addr, budget, &stop, &tunes_done))
        })
        .collect();
    let stormed = measured_run(&args, mix, addr, tenants);
    stop.store(true, Ordering::Release);
    handle.stop(); // unblocks any storm conn mid-tune
    for h in storm {
        let _ = h.join();
    }
    let tunes = tunes_done.load(Ordering::Relaxed);
    eprintln!(
        "stormed   p99 {:>8}us  ok {}/{}  ({} concurrent tunes completed)",
        stormed.latency.p99, stormed.ok, stormed.scheduled, tunes
    );
    eprintln!(
        "          service p99 {}us  attempts {} (busy {})  vs baseline service p99 {}us  attempts {} (busy {})",
        stormed.service.p99,
        stormed.attempts,
        stormed.busy_attempts,
        baseline.service.p99,
        baseline.attempts,
        baseline.busy_attempts,
    );
    if !stormed.attempt_errors.is_empty() || stormed.io_errors + stormed.wire_errors > 0 {
        eprintln!(
            "          storm-phase attempt errors: {:?} (io {}, wire {})",
            stormed.attempt_errors, stormed.io_errors, stormed.wire_errors
        );
    }
    if tunes == 0 && args.gate {
        eprintln!(
            "no concurrent tune completed — the storm never materialized; not a valid measurement"
        );
        std::process::exit(1);
    }

    let base_p99 = baseline.latency.p99.max(1);
    let storm_p99 = stormed.latency.p99.max(1);
    let ratio = storm_p99 as f64 / base_p99 as f64;
    eprintln!(
        "degradation ratio {ratio:.2}x (SLO max {:.2}x, grace floor {}us)",
        lane_slo.storm_p99_ratio_max, lane_slo.storm_p99_floor_us
    );

    let mut bench = BenchReport::new(args.workers);
    let samples = args.ops;
    let mix_name = &args.mix;
    bench.push_value(
        format!("lane-{mix_name}-baseline-p99-us"),
        base_p99,
        samples,
        "us",
    );
    bench.push_value(
        format!("lane-{mix_name}-storm-p99-us"),
        storm_p99,
        samples,
        "us",
    );
    bench.push_value(
        format!("lane-{mix_name}-storm-ratio-x1000"),
        ((ratio * 1_000.0) as u64).max(1),
        samples,
        "ratio-x1000",
    );
    bench.write(&args.out).expect("writing bench report");
    eprintln!(
        "wrote {} ({} records, rev {})",
        args.out.display(),
        bench.records.len(),
        bench.git_rev
    );

    let within_ratio = ratio <= lane_slo.storm_p99_ratio_max;
    let within_floor = storm_p99 <= lane_slo.storm_p99_floor_us;
    if args.gate && !within_ratio && !within_floor {
        eprintln!(
            "GATE FAILED: storm p99 {storm_p99}us exceeds {:.2}x baseline ({base_p99}us) \
             and the {}us grace floor — interactive queries are not overtaking tunes",
            lane_slo.storm_p99_ratio_max, lane_slo.storm_p99_floor_us
        );
        std::process::exit(1);
    }
}
