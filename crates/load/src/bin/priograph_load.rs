//! One open-loop load run against a priograph server.
//!
//! By default the binary self-hosts: it generates the `--graphs` specs,
//! serves them on a loopback port (first graph hot at `--hot-weight`),
//! runs the configured open-loop workload, prints the human-readable
//! summary, and optionally writes `priograph-bench-v1` records. Point it
//! at an existing server with `--connect` (tenants are then discovered
//! via `ListGraphs`).
//!
//! `--check-stats` turns the run into a correctness check: a `StatsV2`
//! frame is fetched before and after, and the harness tallies must
//! reconcile **exactly** against the server's counters (completed queries
//! vs `phase.total` spans, per-attempt Busy vs `busy_rejections`,
//! per-kind in-band errors). Requires a quiet server. Exit code 1 on any
//! mismatch.
//!
//! ```text
//! priograph-load [--connect ADDR | --graphs grid:40,grid:30 --threads 2]
//!                [--mix point-heavy|scan-heavy] [--arrivals poisson|fixed]
//!                [--rate 200] [--ops 1000] [--workers 2] [--seed 42]
//!                [--deadline-ms 0] [--tune-per-thousand 0] [--hot-weight 4]
//!                [--check-stats] [--out PATH] [--prefix NAME]
//! ```

use priograph_bench::record::BenchReport;
use priograph_load::report::{push_run_records, reconcile_settled, render};
use priograph_load::run::{run, RunConfig};
use priograph_load::schedule::ArrivalKind;
use priograph_load::workload::{MixSpec, Tenant};
use priograph_serve::client::Client;
use priograph_serve::server::{serve_named, ServerConfig, ServerHandle};
use priograph_serve::spec::graph_from_spec;

struct Args {
    connect: Option<std::net::SocketAddr>,
    graphs: Vec<String>,
    threads: usize,
    mix: String,
    arrivals: ArrivalKind,
    rate: f64,
    ops: usize,
    workers: usize,
    seed: u64,
    deadline_ms: u32,
    tune_per_thousand: u32,
    hot_weight: u32,
    check_stats: bool,
    out: Option<std::path::PathBuf>,
    prefix: Option<String>,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            connect: None,
            graphs: vec!["grid:40".to_string(), "grid:30".to_string()],
            threads: 2,
            mix: "point-heavy".to_string(),
            arrivals: ArrivalKind::Poisson,
            rate: 200.0,
            ops: 1_000,
            workers: 2,
            seed: 42,
            deadline_ms: 0,
            tune_per_thousand: 0,
            hot_weight: 4,
            check_stats: false,
            out: None,
            prefix: None,
        };
        let mut argv = std::env::args().skip(1);
        while let Some(flag) = argv.next() {
            let mut take = |what: &str| -> String {
                argv.next()
                    .unwrap_or_else(|| panic!("{what} expects a value"))
            };
            match flag.as_str() {
                "--connect" => {
                    args.connect = Some(take("--connect").parse().expect("--connect ADDR"));
                }
                "--graphs" => {
                    args.graphs = take("--graphs").split(',').map(str::to_string).collect();
                }
                "--threads" => args.threads = take("--threads").parse().expect("--threads"),
                "--mix" => args.mix = take("--mix"),
                "--arrivals" => {
                    args.arrivals = ArrivalKind::parse(&take("--arrivals")).expect("--arrivals");
                }
                "--rate" => args.rate = take("--rate").parse().expect("--rate"),
                "--ops" => args.ops = take("--ops").parse().expect("--ops"),
                "--workers" => args.workers = take("--workers").parse().expect("--workers"),
                "--seed" => args.seed = take("--seed").parse().expect("--seed"),
                "--deadline-ms" => {
                    args.deadline_ms = take("--deadline-ms").parse().expect("--deadline-ms");
                }
                "--tune-per-thousand" => {
                    args.tune_per_thousand = take("--tune-per-thousand")
                        .parse()
                        .expect("--tune-per-thousand");
                }
                "--hot-weight" => {
                    args.hot_weight = take("--hot-weight").parse().expect("--hot-weight");
                }
                "--check-stats" => args.check_stats = true,
                "--out" => args.out = Some(take("--out").into()),
                "--prefix" => args.prefix = Some(take("--prefix")),
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --connect ADDR | --graphs SPEC,SPEC --threads N\n\
                         \x20      --mix NAME  --arrivals poisson|fixed  --rate QPS  --ops N\n\
                         \x20      --workers N  --seed N  --deadline-ms N  --tune-per-thousand N\n\
                         \x20      --hot-weight N  --check-stats  --out PATH  --prefix NAME"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; see --help");
                    std::process::exit(2);
                }
            }
        }
        args
    }
}

/// Generates and serves the `--graphs` specs on loopback; the returned
/// tenants mirror the catalog (first graph hot).
fn self_host(args: &Args) -> (ServerHandle, Vec<Tenant>) {
    let mut named = Vec::new();
    let mut tenants = Vec::new();
    for (i, spec) in args.graphs.iter().enumerate() {
        let graph = graph_from_spec(spec).unwrap_or_else(|e| {
            eprintln!("bad --graphs entry {spec:?}: {e}");
            std::process::exit(2);
        });
        tenants.push(Tenant {
            graph: i as u32,
            weight: if i == 0 { args.hot_weight.max(1) } else { 1 },
            vertices: graph.num_vertices() as u32,
        });
        named.push((format!("g{i}"), graph));
    }
    let handle = serve_named(
        named,
        ServerConfig {
            threads: args.threads.max(1),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback server");
    (handle, tenants)
}

/// Discovers tenants from a live server's catalog (first listed hot).
fn discover_tenants(addr: std::net::SocketAddr, hot_weight: u32) -> Vec<Tenant> {
    let mut client = Client::connect(addr).expect("connect for ListGraphs");
    let infos = client.list_graphs().expect("ListGraphs");
    assert!(!infos.is_empty(), "server has no resident graphs");
    infos
        .iter()
        .enumerate()
        .map(|(i, info)| Tenant {
            graph: info.id,
            weight: if i == 0 { hot_weight.max(1) } else { 1 },
            vertices: u32::try_from(info.vertices).unwrap_or(u32::MAX),
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let (handle, addr, tenants) = match args.connect {
        Some(addr) => (None, addr, discover_tenants(addr, args.hot_weight)),
        None => {
            let (handle, tenants) = self_host(&args);
            let addr = handle.addr();
            (Some(handle), addr, tenants)
        }
    };

    let mix = MixSpec::parse(&args.mix)
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
        .with_tune_storm(args.tune_per_thousand);
    let mut config = RunConfig::new(addr);
    config.mix = mix;
    config.tenants = tenants;
    config.arrivals = args.arrivals;
    config.rate_qps = args.rate;
    config.ops = args.ops;
    config.workers = args.workers.max(1);
    config.seed = args.seed;
    config.deadline_ms = args.deadline_ms;

    let before = args.check_stats.then(|| {
        let mut client = Client::connect(addr).expect("connect for StatsV2");
        client.stats_v2().expect("StatsV2 before run")
    });

    let report = run(&config).unwrap_or_else(|e| {
        eprintln!("load run failed: {e}");
        std::process::exit(1);
    });
    eprint!("{}", render(&report));

    let mut failed = false;
    if let Some(before) = before {
        let mut client = Client::connect(addr).expect("connect for StatsV2");
        let fetch = || {
            client
                .stats_v2()
                .map_err(|e| format!("StatsV2 after run: {e:?}"))
        };
        match reconcile_settled(&report, &before, fetch, 2_000) {
            Ok(()) => eprintln!(
                "stats reconciliation OK: {} completed == phase.total delta, \
                 {} busy attempts == busy_rejections delta",
                report.completed, report.busy_attempts
            ),
            Err(e) => {
                eprintln!("stats reconciliation FAILED: {e}");
                failed = true;
            }
        }
    }

    if let Some(out) = &args.out {
        let mut bench = BenchReport::new(config.workers);
        let prefix = args
            .prefix
            .clone()
            .unwrap_or_else(|| format!("load-{}", report.mix));
        push_run_records(&mut bench, &prefix, &report);
        bench.write(out).expect("writing bench report");
        eprintln!("wrote {} ({} records)", out.display(), bench.records.len());
    }

    if let Some(handle) = handle {
        handle.stop();
    }
    if failed {
        std::process::exit(1);
    }
}
