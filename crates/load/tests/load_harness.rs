//! The harness's own acceptance suite: determinism properties of the
//! open-loop schedule and run plan, the histogram-vs-exact percentile
//! bound, live-server runs with exactly-once `StatsV2` reconciliation,
//! and the breaker state-walk against a server that goes away.

use priograph_graph::gen::GraphGen;
use priograph_load::report::{push_run_records, reconcile_settled};
use priograph_load::run::{plan, run, RunConfig};
use priograph_load::schedule::{arrival_times_us, ArrivalKind};
use priograph_load::workload::{MixSpec, Tenant};
use priograph_serve::client::Client;
use priograph_serve::server::{serve_named, ServerConfig, ServerHandle};
use priograph_telemetry::{bucket_ceiling, LatencyHistogram};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The arrival timeline is a pure function of (kind, rate, seed): the
    /// same seed replays bit-for-bit, a different seed diverges (for
    /// Poisson), and the timeline is always monotone nondecreasing.
    #[test]
    fn arrival_timelines_are_deterministic(seed in 0u64..1_000_000, rate_x10 in 10u64..50_000) {
        let rate = rate_x10 as f64 / 10.0;
        for kind in [ArrivalKind::Poisson, ArrivalKind::Fixed] {
            let a = arrival_times_us(kind, rate, seed, 64);
            let b = arrival_times_us(kind, rate, seed, 64);
            prop_assert_eq!(&a, &b);
            prop_assert!(a.windows(2).all(|w| w[0] <= w[1]));
        }
        let c = arrival_times_us(ArrivalKind::Poisson, rate, seed, 64);
        let d = arrival_times_us(ArrivalKind::Poisson, rate, seed.wrapping_add(1), 64);
        prop_assert!(c != d, "different seeds must diverge");
    }

    /// The full per-worker run plan (arrival time + drawn operation) is
    /// deterministic per seed, covers exactly `ops` operations, and deals
    /// them evenly across workers.
    #[test]
    fn run_plans_are_deterministic(seed in 0u64..1_000_000, workers in 1usize..5, ops in 1usize..200) {
        let mut config = RunConfig::new("127.0.0.1:1".parse().unwrap());
        config.tenants = vec![
            Tenant { graph: 0, weight: 3, vertices: 90 },
            Tenant { graph: 1, weight: 1, vertices: 40 },
        ];
        config.seed = seed;
        config.workers = workers;
        config.ops = ops;
        let a = plan(&config).unwrap();
        let b = plan(&config).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), workers);
        prop_assert_eq!(a.iter().map(Vec::len).sum::<usize>(), ops);
        let sizes: Vec<usize> = a.iter().map(Vec::len).collect();
        prop_assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    /// The histogram the harness reports percentiles from quantizes each
    /// value into a log-linear bucket: its p99 must sit between the exact
    /// nearest-rank p99 of the raw samples and that value's bucket
    /// ceiling (≤ 1/16 relative error), never outside.
    #[test]
    fn histogram_p99_is_within_one_bucket_of_exact(seed in 0u64..1_000_000, n in 1usize..400) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let hist = LatencyHistogram::new();
        let mut raw: Vec<u64> = (0..n)
            .map(|_| {
                // Span several octaves, like real latencies do.
                let magnitude = rng.gen_range(0u32..20);
                rng.gen_range(0u64..=(1u64 << magnitude))
            })
            .collect();
        for &v in &raw {
            hist.record_value(v);
        }
        raw.sort_unstable();
        let rank = ((0.99 * n as f64).ceil() as usize).clamp(1, n);
        let exact = raw[rank - 1];
        let reported = hist.summary().p99;
        prop_assert!(
            exact <= reported && reported <= bucket_ceiling(exact),
            "exact {} reported {} ceiling {}", exact, reported, bucket_ceiling(exact)
        );
    }
}

fn grid_server(threads: usize) -> (ServerHandle, Vec<Tenant>) {
    let hot = GraphGen::road_grid(30, 30).seed(1).build();
    let cold = GraphGen::road_grid(20, 20).seed(2).build();
    let tenants = vec![
        Tenant {
            graph: 0,
            weight: 4,
            vertices: hot.num_vertices() as u32,
        },
        Tenant {
            graph: 1,
            weight: 1,
            vertices: cold.num_vertices() as u32,
        },
    ];
    let handle = serve_named(
        vec![("hot".to_string(), hot), ("cold".to_string(), cold)],
        ServerConfig {
            threads,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback server");
    (handle, tenants)
}

/// A live run: every scheduled query completes, the report's p99 is
/// within one bucket of the exact percentile over the raw samples it
/// kept, and the client-side tallies reconcile exactly with the server's
/// `StatsV2` counters.
#[test]
fn live_run_reconciles_and_reports_exact_percentiles() {
    let (handle, tenants) = grid_server(2);
    let addr = handle.addr();
    let mut config = RunConfig::new(addr);
    config.tenants = tenants;
    config.rate_qps = 400.0;
    config.ops = 200;
    config.workers = 2;
    config.keep_raw = true;

    let mut stats_client = Client::connect(addr).expect("connect");
    let before = stats_client.stats_v2().expect("stats before");
    let report = run(&config).expect("run");

    assert_eq!(report.scheduled, 200);
    assert_eq!(report.ok, 200, "healthy server answers everything");
    assert_eq!(report.completed, 200);
    assert_eq!(report.attempts, 200, "no retries needed");
    assert_eq!(report.latency.count, 200);
    assert_eq!(report.raw_latency_us.len(), 200);

    // Histogram p99 vs the exact nearest-rank percentile of the same
    // samples: within one bucket ceiling.
    let mut raw = report.raw_latency_us.clone();
    raw.sort_unstable();
    let rank = ((0.99 * raw.len() as f64).ceil() as usize).clamp(1, raw.len());
    let exact = raw[rank - 1];
    assert!(
        exact <= report.latency.p99 && report.latency.p99 <= bucket_ceiling(exact),
        "exact {exact} reported {} ceiling {}",
        report.latency.p99,
        bucket_ceiling(exact)
    );
    // Percentiles are monotone.
    assert!(report.latency.p50 <= report.latency.p99);
    assert!(report.latency.p99 <= report.latency.p999);
    assert!(report.latency.p999 <= report.latency.max);

    reconcile_settled(
        &report,
        &before,
        || {
            stats_client
                .stats_v2()
                .map_err(|e| format!("stats after: {e:?}"))
        },
        2_000,
    )
    .expect("exactly-once reconciliation");
    handle.stop();
}

/// Tune storms ride the same stream: tunes are excluded from the latency
/// histogram and from `completed`, and the run still reconciles (tunes
/// get no phase span server-side either).
#[test]
fn tune_storm_runs_reconcile_with_tunes_excluded() {
    let (handle, tenants) = grid_server(2);
    let addr = handle.addr();
    let mut config = RunConfig::new(addr);
    config.mix = MixSpec::scan_heavy().with_tune_storm(60);
    config.tenants = tenants;
    config.rate_qps = 300.0;
    config.ops = 120;
    config.workers = 2;

    let mut stats_client = Client::connect(addr).expect("connect");
    let before = stats_client.stats_v2().expect("stats before");
    let report = run(&config).expect("run");

    assert!(report.tunes > 0, "storm at 6% of 120 ops should fire");
    assert_eq!(report.tunes_ok, report.tunes);
    assert_eq!(report.completed, report.ok, "no errors expected");
    assert_eq!(u64::from(u32::try_from(report.scheduled).unwrap()), 120);
    assert_eq!(report.ok + report.tunes, 120);
    assert_eq!(
        report.latency.count, report.ok,
        "tunes must not pollute the latency histogram"
    );
    reconcile_settled(
        &report,
        &before,
        || {
            stats_client
                .stats_v2()
                .map_err(|e| format!("stats after: {e:?}"))
        },
        2_000,
    )
    .expect("reconciliation with tunes in the stream");
    handle.stop();
}

/// When the server disappears mid-workload, the breaker must open after
/// exactly `threshold` consecutive IO failures and the run's event log
/// must still validate — the walk proves no transition was lost, and the
/// reported open time covers the refusal window.
#[test]
fn breaker_walk_survives_a_server_going_away() {
    // Phase 1: a healthy run, then stop the server but keep its address.
    let (handle, tenants) = grid_server(1);
    let addr = handle.addr();
    let mut config = RunConfig::new(addr);
    config.tenants = tenants;
    config.rate_qps = 500.0;
    config.ops = 40;
    config.workers = 1;
    let healthy = run(&config).expect("healthy run");
    assert_eq!(healthy.ok, 40);
    assert_eq!(healthy.breaker.opens, 0);
    handle.stop();

    // Phase 2: same address, dead server. One worker, breaker threshold
    // 2, long cooldown: the first request eats IO failures until the
    // breaker opens, everything after is refused locally. The run itself
    // validates the state walk (it errors on any lost transition).
    config.rate_qps = 2_000.0;
    config.ops = 30;
    config.breaker_threshold = 2;
    config.breaker_cooldown_ms = 60_000;
    config.max_attempts = 2;
    config.timeout_ms = 200;
    config.backoff_base_ms = 1;
    config.backoff_cap_ms = 2;
    let dead = run(&config).expect("dead-server run still validates");

    assert_eq!(dead.ok, 0);
    assert!(dead.io_errors > 0, "the first ops fail on the socket");
    assert!(dead.refused > 0, "later ops are refused locally");
    assert_eq!(dead.breaker.opens, 1, "one open, cooldown never elapses");
    assert_eq!(dead.breaker.transitions, 1);
    assert!(
        dead.breaker.open_time_us > 0,
        "the open interval is charged to the end of the run"
    );
    assert_eq!(dead.local_refusals, dead.refused);
    // Every IO attempt was observed: 2 attempts per failing op.
    assert_eq!(dead.attempts, dead.io_errors * 2);
    assert_eq!(dead.io_errors + dead.refused, 30);
}

/// The bench records derived from a run carry units and survive a JSON
/// round-trip through the gate's parser.
#[test]
fn run_records_round_trip_through_bench_json() {
    let (handle, tenants) = grid_server(1);
    let addr = handle.addr();
    let mut config = RunConfig::new(addr);
    config.tenants = tenants;
    config.rate_qps = 600.0;
    config.ops = 60;
    config.workers = 1;
    let report = run(&config).expect("run");
    handle.stop();

    let mut bench = priograph_bench::record::BenchReport::new(1);
    push_run_records(&mut bench, "smoke", &report);
    let parsed = priograph_bench::record::BenchReport::parse(&bench.to_json()).expect("parse");
    assert_eq!(parsed.records.len(), 9);
    assert!(parsed.records.iter().all(|r| r.unit.is_some()));
    let p99 = parsed
        .records
        .iter()
        .find(|r| r.name == "smoke-p99-us")
        .expect("p99 record");
    assert_eq!(p99.median_ns, report.latency.p99.max(1));
}
