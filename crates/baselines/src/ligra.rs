//! Ligra-style unordered frontier processing (Shun & Blelloch, PPoPP'13):
//! Bellman-Ford via `edge_map` with the signature sparse/dense direction
//! switching (threshold `|outEdges(frontier)| > m / 20`).

use crate::BaselineRun;
use priograph_buckets::SharedFrontier;
use priograph_graph::{CsrGraph, VertexId};
use priograph_parallel::atomics::{atomic_vec, write_min};
use priograph_parallel::Pool;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

const INF: i64 = priograph_buckets::NULL_PRIORITY;

/// Runs Ligra-style (unordered) Bellman-Ford SSSP.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bellman_ford(pool: &Pool, graph: &CsrGraph, source: VertexId) -> BaselineRun {
    assert!((source as usize) < graph.num_vertices());
    let started = Instant::now();
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let dist = atomic_vec(n, INF);
    dist[source as usize].store(0, Ordering::Relaxed);

    let out = SharedFrontier::new(n + 1);
    let stamps: Box<[AtomicU64]> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let mut frontier = vec![source];
    let mut rounds = 0u64;
    let mut relaxations = 0u64;

    while !frontier.is_empty() {
        rounds += 1;
        let degree_sum = graph.out_degree_sum(&frontier) + frontier.len() as u64;
        out.reset();
        let dist_ref = &dist;
        let out_ref = &out;
        let stamps_ref = &stamps;

        if degree_sum as usize > m / 20 {
            // Dense direction: scan every vertex's in-edges.
            relaxations += m as u64;
            let mut in_frontier = vec![false; n];
            for &v in &frontier {
                in_frontier[v as usize] = true;
            }
            let in_frontier_ref = &in_frontier;
            pool.parallel_for(0..n, 256, move |d| {
                let mut best = dist_ref[d].load(Ordering::Relaxed);
                let mut changed = false;
                for e in graph.in_edges(d as VertexId) {
                    if in_frontier_ref[e.dst as usize] {
                        let cand =
                            dist_ref[e.dst as usize].load(Ordering::Relaxed) + i64::from(e.weight);
                        if cand < best {
                            best = cand;
                            changed = true;
                        }
                    }
                }
                if changed {
                    dist_ref[d].store(best, Ordering::Relaxed);
                    out_ref.push(d as VertexId);
                }
            });
        } else {
            // Sparse direction: push from the frontier.
            relaxations += graph.out_degree_sum(&frontier);
            let frontier_ref = &frontier;
            pool.parallel_for(0..frontier.len(), 64, move |i| {
                let src = frontier_ref[i];
                let base = dist_ref[src as usize].load(Ordering::Relaxed);
                for e in graph.out_edges(src) {
                    if write_min(&dist_ref[e.dst as usize], base + i64::from(e.weight))
                        && stamps_ref[e.dst as usize].swap(rounds, Ordering::Relaxed) != rounds
                    {
                        out_ref.push(e.dst);
                    }
                }
            });
        }
        frontier = out.to_vec();
    }

    BaselineRun {
        dist: dist.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        rounds,
        relaxations,
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priograph_algorithms::serial::dijkstra;
    use priograph_graph::gen::GraphGen;

    #[test]
    fn ligra_matches_dijkstra_on_social() {
        let pool = Pool::new(4);
        // Dense rounds will trigger on this graph (hub frontiers).
        let g = GraphGen::rmat(8, 8).seed(7).weights_uniform(1, 100).build();
        let run = bellman_ford(&pool, &g, 0);
        assert_eq!(run.dist, dijkstra(&g, 0));
    }

    #[test]
    fn ligra_matches_dijkstra_on_road() {
        let pool = Pool::new(2);
        // Sparse rounds dominate here (tiny frontiers).
        let g = GraphGen::road_grid(14, 14).seed(1).build();
        let run = bellman_ford(&pool, &g, 0);
        assert_eq!(run.dist, dijkstra(&g, 0));
        assert!(run.rounds >= 14, "rounds follow the hop diameter");
    }

    #[test]
    fn unreachable_stay_inf() {
        let g = priograph_graph::GraphBuilder::new(3).edge(0, 1, 2).build();
        let pool = Pool::new(1);
        let run = bellman_ford(&pool, &g, 0);
        assert_eq!(run.dist, vec![0, 2, INF]);
    }
}
