//! Julienne-style lazy bucketing with the framework's *original* interface
//! (Dhulipala et al., SPAA'17, as of early 2019 — before it adopted this
//! paper's optimized interface).
//!
//! Two measured overheads distinguish it from `priograph`'s lazy engine
//! (paper §6.2):
//!
//! 1. **Lambda-based priority computation** — the bucket structure calls a
//!    boxed `Fn(vertex) -> bucket` for every insertion and extraction check
//!    instead of reading a priority vector directly ("Julienne's original
//!    interface invokes a lambda function call to compute the priority").
//! 2. **Per-round out-degree sums** — Julienne's `edgeMap` computes the
//!    frontier's out-degree total every round to drive direction selection,
//!    even when the sparse direction always wins.

use crate::BaselineRun;
use priograph_graph::{CsrGraph, VertexId};
use priograph_parallel::atomics::{add_clamped, atomic_vec, write_min};
use priograph_parallel::Pool;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

const INF: i64 = priograph_buckets::NULL_PRIORITY;

/// The original Julienne bucket structure: a window of open buckets plus an
/// overflow bucket, with *all* bucket computations going through a boxed
/// lambda.
pub struct LambdaBuckets<'a> {
    bucket_of: Box<dyn Fn(VertexId) -> Option<i64> + Sync + 'a>,
    num_open: usize,
    window_start: i64,
    scan_pos: i64,
    last_returned: i64,
    open: Vec<Vec<VertexId>>,
    overflow: Vec<VertexId>,
    stamps: Box<[AtomicU64]>,
    round: u64,
}

impl std::fmt::Debug for LambdaBuckets<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LambdaBuckets")
            .field("scan_pos", &self.scan_pos)
            .finish()
    }
}

impl<'a> LambdaBuckets<'a> {
    /// Creates the structure over `n` vertices with a priority lambda.
    pub fn new<F>(n: usize, num_open: usize, bucket_of: F) -> Self
    where
        F: Fn(VertexId) -> Option<i64> + Sync + 'a,
    {
        LambdaBuckets {
            bucket_of: Box::new(bucket_of),
            num_open,
            window_start: 0,
            scan_pos: 0,
            last_returned: i64::MIN,
            open: (0..num_open).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            stamps: (0..n).map(|_| AtomicU64::new(0)).collect(),
            round: 0,
        }
    }

    /// Inserts `v` at the bucket computed by the lambda.
    pub fn insert(&mut self, v: VertexId) {
        let Some(b) = (self.bucket_of)(v) else { return };
        let b = b.max(self.last_returned);
        self.scan_pos = self.scan_pos.min(b);
        let slot = b - self.window_start;
        if (0..self.num_open as i64).contains(&slot) {
            self.open[slot as usize].push(v);
        } else {
            self.overflow.push(v);
        }
    }

    /// Extracts the next ready bucket (id, live vertices).
    pub fn next_bucket(&mut self) -> Option<(i64, Vec<VertexId>)> {
        loop {
            if self.scan_pos < self.window_start && !self.rewindow() {
                return None;
            }
            while self.scan_pos - self.window_start < self.num_open as i64 {
                let slot = (self.scan_pos - self.window_start) as usize;
                if self.open[slot].is_empty() {
                    self.scan_pos += 1;
                    continue;
                }
                let raw = std::mem::take(&mut self.open[slot]);
                self.round += 1;
                let round = self.round;
                let ready: Vec<VertexId> = raw
                    .into_iter()
                    .filter(|&v| {
                        // Lambda call per extraction check — the measured
                        // overhead.
                        (self.bucket_of)(v).map(|b| b.max(self.last_returned))
                            == Some(self.scan_pos)
                            && self.stamps[v as usize].swap(round, Ordering::Relaxed) != round
                    })
                    .collect();
                if !ready.is_empty() {
                    self.last_returned = self.scan_pos;
                    return Some((self.scan_pos, ready));
                }
            }
            if self.overflow.is_empty() || !self.rewindow() {
                return None;
            }
        }
    }

    fn rewindow(&mut self) -> bool {
        let mut items: Vec<VertexId> = std::mem::take(&mut self.overflow);
        for slot in &mut self.open {
            items.append(slot);
        }
        let min_bucket = items
            .iter()
            .filter_map(|&v| (self.bucket_of)(v))
            .map(|b| b.max(self.last_returned))
            .min();
        let Some(min_bucket) = min_bucket else {
            return false;
        };
        self.window_start = min_bucket;
        self.scan_pos = min_bucket;
        for v in items {
            if let Some(b) = (self.bucket_of)(v) {
                let b = b.max(self.last_returned);
                let slot = b - self.window_start;
                if (0..self.num_open as i64).contains(&slot) {
                    self.open[slot as usize].push(v);
                } else {
                    self.overflow.push(v);
                }
            }
        }
        true
    }
}

/// Julienne-style SSSP with Δ-stepping: lazy rounds, lambda buckets, and a
/// per-round out-degree sum.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn sssp(pool: &Pool, graph: &CsrGraph, source: VertexId, delta: i64) -> BaselineRun {
    assert!((source as usize) < graph.num_vertices());
    let started = Instant::now();
    let n = graph.num_vertices();
    let dist = atomic_vec(n, INF);
    dist[source as usize].store(0, Ordering::Relaxed);

    let dist_ref = &dist;
    let mut buckets = LambdaBuckets::new(n, 128, move |v: VertexId| {
        let d = dist_ref[v as usize].load(Ordering::Relaxed);
        (d < INF).then_some(d / delta)
    });
    buckets.insert(source);

    let mut rounds = 0u64;
    let mut relaxations = 0u64;
    let out = priograph_buckets::SharedFrontier::new(n + 1);
    let stamps: Box<[AtomicU64]> = (0..n).map(|_| AtomicU64::new(0)).collect();

    while let Some((_bucket, frontier)) = buckets.next_bucket() {
        rounds += 1;
        // Direction-selection overhead: Julienne evaluates the frontier's
        // out-degree sum every round (paper §6.2).
        let degree_sum = graph.out_degree_sum(&frontier);
        relaxations += degree_sum;
        let _would_go_dense = degree_sum > (graph.num_edges() as u64) / 20;

        out.reset();
        let out_ref = &out;
        let stamps_ref = &stamps;
        let frontier_ref = &frontier;
        pool.parallel_for(0..frontier.len(), 64, move |i| {
            let src = frontier_ref[i];
            let base = dist_ref[src as usize].load(Ordering::Relaxed);
            for e in graph.out_edges(src) {
                if write_min(&dist_ref[e.dst as usize], base + i64::from(e.weight))
                    && stamps_ref[e.dst as usize].swap(rounds, Ordering::Relaxed) != rounds
                {
                    out_ref.push(e.dst);
                }
            }
        });
        for v in out.to_vec() {
            buckets.insert(v);
        }
    }

    BaselineRun {
        dist: dist.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        rounds,
        relaxations,
        elapsed: started.elapsed(),
    }
}

/// Julienne-style k-core: lazy peeling with lambda buckets (strict order,
/// Δ = 1). Returns coreness values.
pub fn kcore(pool: &Pool, graph: &CsrGraph) -> BaselineRun {
    assert!(graph.is_symmetric(), "k-core needs a symmetric graph");
    let started = Instant::now();
    let n = graph.num_vertices();
    let degrees: Vec<AtomicI64> = graph
        .vertices()
        .map(|v| AtomicI64::new(graph.out_degree(v) as i64))
        .collect();

    let deg_ref = &degrees;
    let mut buckets = LambdaBuckets::new(n, 128, move |v: VertexId| {
        Some(deg_ref[v as usize].load(Ordering::Relaxed))
    });
    for v in graph.vertices() {
        buckets.insert(v);
    }

    let mut rounds = 0u64;
    let mut relaxations = 0u64;
    let out = priograph_buckets::SharedFrontier::new(n + 1);
    let round_stamp: Box<[AtomicU64]> = (0..n).map(|_| AtomicU64::new(0)).collect();

    while let Some((k, frontier)) = buckets.next_bucket() {
        rounds += 1;
        relaxations += graph.out_degree_sum(&frontier);
        out.reset();
        let out_ref = &out;
        let stamp_ref = &round_stamp;
        let frontier_ref = &frontier;
        pool.parallel_for(0..frontier.len(), 64, move |i| {
            let v = frontier_ref[i];
            for e in graph.out_edges(v) {
                if add_clamped(&deg_ref[e.dst as usize], -1, k).is_some()
                    && stamp_ref[e.dst as usize].swap(rounds, Ordering::Relaxed) != rounds
                {
                    out_ref.push(e.dst);
                }
            }
        });
        for v in out.to_vec() {
            buckets.insert(v);
        }
    }

    BaselineRun {
        dist: degrees.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        rounds,
        relaxations,
        elapsed: started.elapsed(),
    }
}

/// Julienne-style approximate set cover: identical claim/decide rounds to
/// `priograph_algorithms::setcover`, but driven through the lambda bucket
/// interface with serial re-insertion — the measured interface overhead.
///
/// Returns the chosen set ids (sorted) and loop counters.
pub fn set_cover(
    pool: &Pool,
    instance: &priograph_algorithms::setcover::SetCoverInstance,
    // kept for signature symmetry with the priograph driver
) -> (Vec<u32>, BaselineRun) {
    let started = Instant::now();
    let graph = instance.to_graph();
    let num_sets = instance.num_sets();
    let element_base = num_sets as u32;

    let coverage: Vec<AtomicI64> = instance
        .sets
        .iter()
        .map(|s| AtomicI64::new(s.len() as i64))
        .collect();
    let cov_ref = &coverage;
    // Decreasing priority mapped through a lambda (negated so lower bucket =
    // higher coverage).
    let mut buckets = LambdaBuckets::new(num_sets, 128, move |v: VertexId| {
        let c = cov_ref[v as usize].load(Ordering::Relaxed);
        (c > i64::MIN / 2).then_some(-c)
    });
    for s in 0..num_sets as VertexId {
        buckets.insert(s);
    }

    let owner: Vec<std::sync::atomic::AtomicU32> = (0..instance.num_elements)
        .map(|_| std::sync::atomic::AtomicU32::new(u32::MAX))
        .collect();
    let covered: Vec<std::sync::atomic::AtomicU8> = (0..instance.num_elements)
        .map(|_| std::sync::atomic::AtomicU8::new(0))
        .collect();
    let chosen: parking_lot::Mutex<Vec<u32>> = parking_lot::Mutex::new(Vec::new());
    let reinsert: parking_lot::Mutex<Vec<VertexId>> = parking_lot::Mutex::new(Vec::new());
    let mut rounds = 0u64;
    let mut relaxations = 0u64;
    let is_covered = |e: usize| covered[e].load(Ordering::Relaxed) != 0;

    while let Some((neg_cov, sets)) = buckets.next_bucket() {
        let cov = -neg_cov;
        rounds += 1;
        if cov <= 0 {
            for &s in &sets {
                cov_ref[s as usize].store(i64::MIN, Ordering::Relaxed);
            }
            continue;
        }
        relaxations += 2 * graph.out_degree_sum(&sets);
        let sets_ref = &sets;
        pool.parallel_for(0..sets.len(), 8, |i| {
            let sid = sets_ref[i];
            for edge in graph.out_edges(sid) {
                let e = (edge.dst - element_base) as usize;
                if !is_covered(e) {
                    owner[e].fetch_min(sid, Ordering::Relaxed);
                }
            }
        });
        pool.parallel_for(0..sets.len(), 8, |i| {
            let sid = sets_ref[i];
            let mut won = 0i64;
            let mut uncovered = 0i64;
            for edge in graph.out_edges(sid) {
                let e = (edge.dst - element_base) as usize;
                if !is_covered(e) {
                    uncovered += 1;
                    if owner[e].load(Ordering::Relaxed) == sid {
                        won += 1;
                    }
                }
            }
            if uncovered == cov && won == uncovered {
                for edge in graph.out_edges(sid) {
                    let e = (edge.dst - element_base) as usize;
                    if owner[e].load(Ordering::Relaxed) == sid {
                        covered[e].store(1, Ordering::Relaxed);
                    }
                }
                chosen.lock().push(sid);
                cov_ref[sid as usize].store(i64::MIN, Ordering::Relaxed);
            } else {
                for edge in graph.out_edges(sid) {
                    let e = (edge.dst - element_base) as usize;
                    let _ = owner[e].compare_exchange(
                        sid,
                        u32::MAX,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    );
                }
                cov_ref[sid as usize].store(uncovered, Ordering::Relaxed);
                reinsert.lock().push(sid);
            }
        });
        for s in reinsert.lock().drain(..) {
            buckets.insert(s);
        }
    }

    let mut chosen = chosen.into_inner();
    chosen.sort_unstable();
    let run = BaselineRun {
        dist: coverage.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        rounds,
        relaxations,
        elapsed: started.elapsed(),
    };
    (chosen, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use priograph_algorithms::serial::{dijkstra, kcore_serial};
    use priograph_graph::gen::GraphGen;

    #[test]
    fn julienne_sssp_matches_dijkstra() {
        let pool = Pool::new(4);
        let g = GraphGen::rmat(8, 8).seed(2).weights_uniform(1, 200).build();
        let run = sssp(&pool, &g, 0, 16);
        assert_eq!(run.dist, dijkstra(&g, 0));
        assert!(run.rounds > 0);
    }

    #[test]
    fn julienne_sssp_on_road_grid() {
        let pool = Pool::new(2);
        let g = GraphGen::road_grid(14, 14).seed(5).build();
        let run = sssp(&pool, &g, 0, 256);
        assert_eq!(run.dist, dijkstra(&g, 0));
    }

    #[test]
    fn julienne_kcore_matches_serial() {
        let pool = Pool::new(4);
        let g = GraphGen::rmat(7, 6).seed(4).build().symmetrize();
        let run = kcore(&pool, &g);
        assert_eq!(run.dist, kcore_serial(&g));
    }

    #[test]
    fn julienne_setcover_covers_everything() {
        let pool = Pool::new(2);
        let inst = priograph_algorithms::setcover::SetCoverInstance::new(
            6,
            vec![
                vec![0, 1, 2, 3],
                vec![0, 1],
                vec![2, 3],
                vec![4],
                vec![4, 5],
            ],
        );
        let (chosen, run) = set_cover(&pool, &inst);
        priograph_algorithms::validate::validate_cover(&inst, &chosen).unwrap();
        assert_eq!(chosen, vec![0, 4]);
        assert!(run.rounds > 0);
    }

    #[test]
    fn lambda_buckets_order_and_dedup() {
        let pri: Vec<AtomicI64> = [3i64, 1, 1, 9].iter().map(|&p| AtomicI64::new(p)).collect();
        let pri_ref = &pri;
        let mut b = LambdaBuckets::new(4, 4, move |v: VertexId| {
            Some(pri_ref[v as usize].load(Ordering::Relaxed))
        });
        for v in 0..4 {
            b.insert(v);
        }
        b.insert(1); // duplicate
        let (k1, mut v1) = b.next_bucket().unwrap();
        v1.sort_unstable();
        assert_eq!((k1, v1), (1, vec![1, 2]));
        assert_eq!(b.next_bucket().unwrap(), (3, vec![0]));
        assert_eq!(b.next_bucket().unwrap(), (9, vec![3]));
        assert!(b.next_bucket().is_none());
    }
}
