//! Galois-style approximate priority ordering (Nguyen et al., SOSP'13).
//!
//! Galois's ordered-list / OBIM scheduler keeps priority bins but never
//! synchronizes globally per priority: threads grab work from the lowest
//! bin they can find and push updates into bins lock-free, so vertices of
//! different priorities execute concurrently (paper §7: "approximate
//! priority ordering ... does not synchronize globally"). The result is a
//! label-correcting computation — correct for SSSP-family algorithms but
//! work-inefficient relative to strict ordering, and *unable* to express
//! k-core/SetCover (which need per-priority synchronization) — exactly the
//! gaps Table 4 shows for Galois.
//!
//! Implementation: an array of lock-free bags ([`crossbeam::queue::SegQueue`])
//! indexed by coarsened priority, a global in-flight counter for
//! termination, and per-thread forward-moving cursors with a monotonically
//! decreasing global hint for restarts. No barriers anywhere.

use crate::BaselineRun;
use crossbeam::queue::SegQueue;
use priograph_graph::{CsrGraph, VertexId};
use priograph_parallel::atomics::{atomic_vec, write_min};
use priograph_parallel::Pool;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

const INF: i64 = priograph_buckets::NULL_PRIORITY;
/// Bags are allocated lazily in blocks of this many buckets.
const BLOCK: usize = 256;
/// Maximum addressable buckets (blocks * BLOCK).
const MAX_BLOCKS: usize = 1 << 14;

/// Lazily allocated array of lock-free bags indexed by bucket.
struct BucketBags {
    blocks: Vec<OnceLock<Box<[SegQueue<VertexId>]>>>,
}

impl BucketBags {
    fn new() -> Self {
        BucketBags {
            blocks: (0..MAX_BLOCKS).map(|_| OnceLock::new()).collect(),
        }
    }

    fn bag(&self, bucket: usize) -> &SegQueue<VertexId> {
        let block = bucket / BLOCK;
        assert!(
            block < MAX_BLOCKS,
            "priority bucket {bucket} exceeds the OBIM range"
        );
        let queues =
            self.blocks[block].get_or_init(|| (0..BLOCK).map(|_| SegQueue::new()).collect());
        &queues[bucket % BLOCK]
    }

    /// True if the block holding `bucket` was never touched (fast skip).
    fn block_untouched(&self, bucket: usize) -> bool {
        self.blocks[bucket / BLOCK].get().is_none()
    }
}

/// Shared scheduler state.
struct Obim {
    bags: BucketBags,
    /// Items pushed but not yet fully processed; 0 = done.
    pending: AtomicI64,
    /// Monotonically decreasing lower bound on occupied buckets.
    hint: AtomicUsize,
    /// Highest bucket ever pushed (scan upper bound).
    max_pushed: AtomicUsize,
}

impl Obim {
    fn new() -> Self {
        Obim {
            bags: BucketBags::new(),
            pending: AtomicI64::new(0),
            hint: AtomicUsize::new(usize::MAX),
            max_pushed: AtomicUsize::new(0),
        }
    }

    fn push(&self, bucket: usize, v: VertexId) {
        self.pending.fetch_add(1, Ordering::AcqRel);
        self.bags.bag(bucket).push(v);
        self.hint.fetch_min(bucket, Ordering::AcqRel);
        self.max_pushed.fetch_max(bucket, Ordering::AcqRel);
    }

    /// Pops one vertex from the lowest non-empty bag at or after `from`.
    fn pop_from(&self, from: usize) -> Option<(usize, VertexId)> {
        let hi = self.max_pushed.load(Ordering::Acquire);
        let mut b = from;
        while b <= hi {
            if self.bags.block_untouched(b) {
                b = (b / BLOCK + 1) * BLOCK;
                continue;
            }
            if let Some(v) = self.bags.bag(b).pop() {
                return Some((b, v));
            }
            b += 1;
        }
        None
    }
}

/// Runs Galois-style SSSP with approximate priority ordering.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn sssp(pool: &Pool, graph: &CsrGraph, source: VertexId, delta: i64) -> BaselineRun {
    run(pool, graph, source, delta, None)
}

/// Point-to-point variant: vertices whose bucket lies at or past the
/// target's current distance are pruned.
pub fn ppsp(
    pool: &Pool,
    graph: &CsrGraph,
    source: VertexId,
    target: VertexId,
    delta: i64,
) -> BaselineRun {
    run(pool, graph, source, delta, Some(target))
}

fn run(
    pool: &Pool,
    graph: &CsrGraph,
    source: VertexId,
    delta: i64,
    target: Option<VertexId>,
) -> BaselineRun {
    assert!((source as usize) < graph.num_vertices());
    assert!(delta >= 1);
    let started = Instant::now();
    let n = graph.num_vertices();
    let dist = atomic_vec(n, INF);
    dist[source as usize].store(0, Ordering::Relaxed);

    let obim = Obim::new();
    obim.push(0, source);
    let relaxations = AtomicU64::new(0);

    pool.broadcast(|_w| {
        let mut cursor = 0usize;
        let mut local_relax = 0u64;
        let mut idle_spins = 0u32;
        loop {
            if obim.pending.load(Ordering::Acquire) == 0 {
                break;
            }
            let Some((bucket, v)) = obim.pop_from(cursor) else {
                // Nothing at or after the cursor; restart from the hint.
                cursor = obim.hint.load(Ordering::Acquire).min(cursor);
                idle_spins += 1;
                if idle_spins > 64 {
                    std::thread::yield_now();
                }
                continue;
            };
            idle_spins = 0;
            cursor = bucket;
            let dv = dist[v as usize].load(Ordering::Relaxed);
            // Stale entry: the vertex improved past this bucket already.
            let stale = (dv / delta) < bucket as i64;
            // Point-to-point pruning: no path through this bucket can beat
            // the target's current distance.
            let pruned = target
                .is_some_and(|t| bucket as i64 * delta >= dist[t as usize].load(Ordering::Relaxed));
            if !stale && !pruned {
                for e in graph.out_edges(v) {
                    let new_dist = dv + i64::from(e.weight);
                    local_relax += 1;
                    if write_min(&dist[e.dst as usize], new_dist) {
                        obim.push((new_dist / delta) as usize, e.dst);
                    }
                }
            }
            obim.pending.fetch_sub(1, Ordering::AcqRel);
        }
        relaxations.fetch_add(local_relax, Ordering::Relaxed);
    });

    BaselineRun {
        dist: dist.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        rounds: 0, // barrier-free by construction
        relaxations: relaxations.into_inner(),
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priograph_algorithms::serial::dijkstra;
    use priograph_graph::gen::GraphGen;

    #[test]
    fn galois_sssp_matches_dijkstra() {
        let pool = Pool::new(4);
        for seed in [3, 12] {
            let g = GraphGen::rmat(8, 8)
                .seed(seed)
                .weights_uniform(1, 300)
                .build();
            let run = sssp(&pool, &g, 0, 16);
            assert_eq!(run.dist, dijkstra(&g, 0), "seed={seed}");
            assert_eq!(run.rounds, 0, "no global synchronization");
        }
    }

    #[test]
    fn galois_sssp_on_road_grid() {
        let pool = Pool::new(4);
        let g = GraphGen::road_grid(16, 16).seed(9).build();
        let run = sssp(&pool, &g, 0, 512);
        assert_eq!(run.dist, dijkstra(&g, 0));
    }

    #[test]
    fn galois_ppsp_finds_target_distance() {
        let pool = Pool::new(2);
        let g = GraphGen::rmat(7, 8).seed(5).weights_uniform(1, 100).build();
        let reference = dijkstra(&g, 0);
        let run = ppsp(&pool, &g, 0, 42, 16);
        assert_eq!(run.dist[42], reference[42]);
    }

    #[test]
    fn single_thread_terminates() {
        let pool = Pool::new(1);
        let g = GraphGen::cycle(10).build();
        let run = sssp(&pool, &g, 0, 1);
        assert_eq!(run.dist, dijkstra(&g, 0));
    }

    #[test]
    fn obim_push_pop_roundtrip() {
        let obim = Obim::new();
        obim.push(5, 7);
        obim.push(2, 3);
        assert_eq!(obim.pop_from(0), Some((2, 3)));
        assert_eq!(obim.pop_from(0), Some((5, 7)));
        assert_eq!(obim.pop_from(0), None);
        assert_eq!(obim.pending.load(Ordering::Relaxed), 2);
    }
}
