//! GAPBS-style hand-optimized Δ-stepping (Beamer et al.), the eager
//! baseline of paper Table 4 — structurally the code of paper Figure 9(c)
//! *without* bucket fusion.

use crate::BaselineRun;
use priograph_buckets::{LocalBins, SharedFrontier};
use priograph_graph::{CsrGraph, VertexId};
use priograph_parallel::atomics::{atomic_vec, write_min};
use priograph_parallel::{ChunkCursor, Pool};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Unreachable sentinel (matches the core engines).
const INF: i64 = priograph_buckets::NULL_PRIORITY;
const NO_BIN: usize = usize::MAX;

/// Runs GAPBS-style Δ-stepping SSSP.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn sssp(pool: &Pool, graph: &CsrGraph, source: VertexId, delta: i64) -> BaselineRun {
    assert!((source as usize) < graph.num_vertices(), "source in range");
    assert!(delta >= 1, "delta must be >= 1");
    let started = Instant::now();
    let n = graph.num_vertices();
    let dist = atomic_vec(n, INF);
    dist[source as usize].store(0, Ordering::Relaxed);

    let frontier = SharedFrontier::new(graph.num_edges() + n + 1);
    let cursor = ChunkCursor::new(0, 64);
    let next_bin = AtomicUsize::new(NO_BIN);
    let done = AtomicBool::new(false);
    let rounds = AtomicU64::new(0);
    let relaxations = AtomicU64::new(0);

    pool.broadcast(|w| {
        let mut local_bins = LocalBins::new();
        let mut local_relax = 0u64;
        if w.tid() == 0 {
            local_bins.push(0, source);
        }
        let mut curr_bin = 0usize;
        loop {
            if let Some(b) = local_bins.min_nonempty_from(curr_bin) {
                next_bin.fetch_min(b, Ordering::AcqRel);
            }
            w.barrier();
            if w.tid() == 0 {
                if next_bin.load(Ordering::Acquire) == NO_BIN {
                    done.store(true, Ordering::Release);
                } else {
                    rounds.fetch_add(1, Ordering::Relaxed);
                }
                frontier.reset();
            }
            w.barrier();
            if done.load(Ordering::Acquire) {
                break;
            }
            let next = next_bin.load(Ordering::Acquire);
            let mine = local_bins.take(next);
            frontier.append(&mine);
            w.barrier();
            if w.tid() == 0 {
                cursor.reset(frontier.len());
                next_bin.store(NO_BIN, Ordering::Release);
            }
            w.barrier();
            curr_bin = next;

            // The GAPBS relaxation loop (sssp.cc): process u only if its
            // distance still belongs to the current bin.
            while let Some(chunk) = cursor.next_chunk() {
                for i in chunk {
                    let u = frontier.get(i);
                    let du = dist[u as usize].load(Ordering::Relaxed);
                    if du >= delta * curr_bin as i64 {
                        for e in graph.out_edges(u) {
                            let new_dist = du + i64::from(e.weight);
                            local_relax += 1;
                            if write_min(&dist[e.dst as usize], new_dist) {
                                let dest_bin = (new_dist / delta) as usize;
                                local_bins.push(dest_bin, e.dst);
                            }
                        }
                    }
                }
            }
        }
        relaxations.fetch_add(local_relax, Ordering::Relaxed);
    });

    BaselineRun {
        dist: dist.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        rounds: rounds.into_inner(),
        relaxations: relaxations.into_inner(),
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priograph_algorithms::serial::dijkstra;
    use priograph_graph::gen::GraphGen;

    #[test]
    fn gapbs_matches_dijkstra() {
        let pool = Pool::new(4);
        for seed in [1, 6] {
            let g = GraphGen::rmat(8, 8)
                .seed(seed)
                .weights_uniform(1, 500)
                .build();
            let run = sssp(&pool, &g, 0, 32);
            assert_eq!(run.dist, dijkstra(&g, 0), "seed={seed}");
        }
    }

    #[test]
    fn gapbs_matches_on_road_grid_all_deltas() {
        let pool = Pool::new(2);
        let g = GraphGen::road_grid(15, 15).seed(3).build();
        let reference = dijkstra(&g, 7);
        for delta in [1, 64, 1024] {
            let run = sssp(&pool, &g, 7, delta);
            assert_eq!(run.dist, reference, "delta={delta}");
        }
    }

    #[test]
    fn gapbs_never_fuses_so_rounds_at_least_buckets() {
        let pool = Pool::new(2);
        let g = GraphGen::road_grid(16, 16).seed(2).build();
        let run = sssp(&pool, &g, 0, 64);
        let fused = priograph_algorithms::sssp::delta_stepping_on(
            &pool,
            &g,
            0,
            &priograph_core::schedule::Schedule::eager_with_fusion(64),
        )
        .unwrap();
        assert_eq!(run.dist, fused.dist);
        assert!(
            run.rounds > fused.stats.rounds,
            "fusion must reduce synchronized rounds: gapbs {} vs fused {}",
            run.rounds,
            fused.stats.rounds
        );
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = Pool::new(1);
        let g = GraphGen::rmat(6, 4).seed(8).weights_uniform(1, 20).build();
        assert_eq!(sssp(&pool, &g, 0, 8).dist, dijkstra(&g, 0));
    }
}
