//! Reimplementations of the comparison frameworks from the paper's
//! evaluation (§6), each reproducing the *strategy* that distinguishes it:
//!
//! | Module | Stands in for | Distinguishing strategy |
//! |---|---|---|
//! | [`gapbs`] | GAPBS | hand-written eager Δ-stepping, thread-local bins, **no fusion** |
//! | [`julienne`] | Julienne (early 2019) | lazy bucketing with the *original lambda* priority interface + per-round out-degree sums for direction selection |
//! | [`galois`] | Galois v4 | approximate priority ordering: lock-free bucket bags, no per-priority global synchronization |
//! | [`ligra`] | Ligra | unordered frontier `edge_map` with sparse/dense direction switching |
//!
//! All four share the same substrate (pool, CSR graph) as `priograph-core`,
//! so measured differences isolate the strategies rather than unrelated
//! engineering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod galois;
pub mod gapbs;
pub mod julienne;
pub mod ligra;

/// Distance result shared by the baseline engines.
#[derive(Debug, Clone)]
pub struct BaselineRun {
    /// Final distances (or priorities), `NULL`-sentineled like the core
    /// engines.
    pub dist: Vec<i64>,
    /// Synchronized rounds (0 for the barrier-free Galois engine).
    pub rounds: u64,
    /// Edge relaxations performed.
    pub relaxations: u64,
    /// Wall-clock time.
    pub elapsed: std::time::Duration,
}

impl BaselineRun {
    /// Milliseconds elapsed.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed.as_secs_f64() * 1e3
    }
}
