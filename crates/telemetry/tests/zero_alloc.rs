//! Steady-state zero-allocation proof for the hot-path primitives.
//!
//! A counting global allocator wraps the system allocator; after the
//! instruments are constructed (the only allocations they ever make),
//! ~100k records across `LatencyHistogram`, `Counter`, and
//! `PhaseHistograms` must not move the allocation counter at all. This is
//! the property the serving path relies on: recording telemetry never
//! takes the allocator lock and never introduces a malloc into the
//! dispatcher or engine inner loops.

use priograph_telemetry::{Counter, LatencyHistogram, PhaseHistograms, QuerySpan};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counts every allocation (and reallocation) routed through the global
/// allocator, delegating the actual work to [`System`].
struct CountingAlloc {
    allocs: AtomicU64,
}

static ALLOC: CountingAlloc = CountingAlloc {
    allocs: AtomicU64::new(0),
};

#[global_allocator]
static GLOBAL: &CountingAlloc = &ALLOC;

// SAFETY: pure delegation to `System`, which upholds the GlobalAlloc
// contract; the only addition is a relaxed counter bump, which cannot
// violate layout or aliasing requirements.
unsafe impl GlobalAlloc for &CountingAlloc {
    // SAFETY: same contract as `System::alloc`, to which this delegates.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller guarantees `layout` is valid; forwarded as-is.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: same contract as `System::dealloc`, to which this delegates.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller guarantees `ptr` came from this allocator with
        // this `layout`; `alloc` forwards to `System`, so this matches.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: same contract as `System::realloc`, to which this delegates.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller guarantees the (ptr, layout, new_size) triple per
        // the GlobalAlloc contract; forwarded as-is.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

fn allocations() -> u64 {
    ALLOC.allocs.load(Ordering::Relaxed)
}

#[test]
fn recording_steady_state_performs_no_allocations() {
    // Construction is allowed to allocate (bucket arrays, counter stripes).
    let hist = LatencyHistogram::new();
    let counter = Counter::new(4);
    let phases = PhaseHistograms::new();
    let span = QuerySpan {
        queued_us: 12,
        planned_us: 3,
        executed_us: 450,
        responded_us: 7,
    };

    // Warm up every code path once so lazy init (if any ever appears)
    // happens before the measured window.
    hist.record_value(1);
    hist.record(Duration::from_micros(250));
    counter.incr(0);
    counter.add(1, 2);
    phases.record(&span);

    let before = allocations();
    for i in 0..100_000u64 {
        hist.record_value(i % 10_000);
        counter.add((i % 4) as usize, 1);
        phases.record(&span);
    }
    hist.record(Duration::from_millis(3));
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "steady-state recording allocated {} time(s)",
        after - before
    );
    assert_eq!(hist.count(), 100_003);
    assert_eq!(counter.sum(), 100_003);
    assert_eq!(phases.count(), 100_001);
}

#[test]
fn merge_is_allocation_free() {
    let a = LatencyHistogram::new();
    let b = LatencyHistogram::new();
    for i in 0..1_000 {
        a.record_value(i);
        b.record_value(i * 3);
    }
    let before = allocations();
    a.merge(&b);
    let after = allocations();
    assert_eq!(after - before, 0, "merge allocated");
    assert_eq!(a.count(), 2_000);
}
