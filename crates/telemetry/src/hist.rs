//! A fixed-footprint log-linear histogram (HDR-style) for latency and
//! other unsigned values.
//!
//! The value axis is split into octaves (powers of two), each octave into
//! [`SUB_BUCKETS`] linear sub-buckets, so a bucket's width is at most
//! `1/16` of its lower bound: any recorded value is reproducible from the
//! histogram within **6.25% relative error** (values below 16 are exact —
//! their buckets have width 1). With 27 octaves the range covers
//! `0 .. 2^31` — in microseconds, a microsecond to ~35 minutes, far past
//! the ~100s the serving path can ever observe under its own timeouts.
//!
//! The footprint is a fixed array of [`BUCKET_COUNT`] `AtomicU64`s
//! (~3.5 KiB): recording is one index computation plus relaxed
//! `fetch_add`s — no allocation, no locks, no CAS loops — so any thread
//! (dispatcher, pool leader, connection handlers) can record concurrently
//! while readers [`LatencyHistogram::snapshot`] without stopping them.
//! Histograms merge bucket-wise, so per-worker instances can be folded
//! into one digest off the hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-buckets per octave; bounds the relative error at
/// `1 / SUB_BUCKETS`.
pub const SUB_BUCKETS: usize = 16;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();

/// Power-of-two ranges above the linear region.
const OCTAVES: usize = 27;

/// Total bucket count: one exact bucket per value below [`SUB_BUCKETS`],
/// then [`SUB_BUCKETS`] per octave.
pub const BUCKET_COUNT: usize = SUB_BUCKETS + OCTAVES * SUB_BUCKETS;

/// Largest representable value; larger records clamp here (and are still
/// counted — the clamp loses resolution, never events).
pub const MAX_VALUE: u64 = ((2 * SUB_BUCKETS as u64) << (OCTAVES - 1)) - 1;

/// The bucket index holding `v`. `v` must already be clamped to
/// [`MAX_VALUE`].
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = (msb - SUB_BITS) as usize;
    let sub = ((v >> octave) as usize) - SUB_BUCKETS;
    SUB_BUCKETS + octave * SUB_BUCKETS + sub
}

/// The half-open value range `[low, high)` bucket `i` covers.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUB_BUCKETS {
        return (i as u64, i as u64 + 1);
    }
    let octave = (i - SUB_BUCKETS) / SUB_BUCKETS;
    let sub = (i - SUB_BUCKETS) % SUB_BUCKETS;
    let low = ((SUB_BUCKETS + sub) as u64) << octave;
    (low, low + (1u64 << octave))
}

/// The largest value that lands in the same bucket as `v` — the histogram's
/// report for anything recorded in that bucket. The gap to `v` is the
/// quantization error tests bound percentiles by.
pub fn bucket_ceiling(v: u64) -> u64 {
    bucket_bounds(bucket_index(v.min(MAX_VALUE))).1 - 1
}

/// A concurrent log-linear histogram of `u64` values (see module docs).
///
/// Thread model: any number of concurrent recorders; any number of
/// concurrent snapshot readers; all relaxed atomics. A snapshot taken
/// while writers are active sees each bucket at some point in time — never
/// torn counts, at worst a record that lands in the next snapshot.
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64; BUCKET_COUNT]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LatencyHistogram(count = {})",
            self.count.load(Ordering::Relaxed)
        )
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram. The bucket array is the only allocation the
    /// histogram ever performs.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: Box::new([const { AtomicU64::new(0) }; BUCKET_COUNT]),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value: bucket + count + sum + max, all relaxed
    /// `fetch_add`/`fetch_max` — no allocation, no locks, no retries.
    pub fn record_value(&self, v: u64) {
        let v = v.min(MAX_VALUE);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in microseconds (the serving path's unit).
    pub fn record(&self, d: Duration) {
        self.record_value(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Events recorded so far (relaxed read; exact once writers quiesce).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Folds `other`'s buckets into `self`, bucket-wise. Equivalent (for
    /// every percentile and the count/sum/max digests) to having recorded
    /// `other`'s values into `self` directly.
    pub fn merge(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// An owned point-in-time copy, safe to take while writers are
    /// recording. Allocates (the snapshot's count vector) — snapshots are
    /// for reporting paths, never the hot path.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// The five-point digest of the current contents.
    pub fn summary(&self) -> Summary {
        self.snapshot().summary()
    }
}

/// An owned copy of a histogram's buckets, for percentile math off the hot
/// path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// Events recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded value (exact, not quantized).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (exact sum over exact count), 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The value at percentile `p` (0–100): the ceiling of the bucket the
    /// rank-`⌈p/100·count⌉` event landed in, capped at the exact observed
    /// max — so the report is within one bucket's width of the true
    /// percentile (≤ 1/16 relative error), and `percentile(100) == max()`
    /// exactly. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return (bucket_bounds(i).1 - 1).min(self.max);
            }
        }
        self.max
    }

    /// The five-point digest (p50/p90/p99/p999/max + count).
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p99: self.percentile(99.0),
            p999: self.percentile(99.9),
            max: self.max,
        }
    }
}

/// A five-point percentile digest of one histogram — what [`crate`]
/// consumers put on the wire per series.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Summary {
    /// Events recorded.
    pub count: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Exact maximum.
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_index_and_bounds_are_consistent() {
        for v in (0..1024).chain([4095, 4096, 4097, 1 << 20, MAX_VALUE]) {
            let i = bucket_index(v);
            let (low, high) = bucket_bounds(i);
            assert!(low <= v && v < high, "v={v} i={i} [{low},{high})");
        }
        assert_eq!(bucket_index(MAX_VALUE), BUCKET_COUNT - 1);
    }

    #[test]
    fn small_values_are_exact_and_large_values_clamp() {
        let h = LatencyHistogram::new();
        for v in 0..16 {
            h.record_value(v);
        }
        h.record_value(u64::MAX); // clamps to MAX_VALUE, still counted
        let s = h.snapshot();
        assert_eq!(s.count(), 17);
        assert_eq!(s.percentile(50.0), 8);
        assert_eq!(s.max(), MAX_VALUE);
    }

    #[test]
    fn percentile_100_is_the_exact_max() {
        let h = LatencyHistogram::new();
        for v in [3, 17, 999, 123_456] {
            h.record_value(v);
        }
        assert_eq!(h.snapshot().percentile(100.0), 123_456);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.percentile(99.0), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0);
    }

    /// Deterministic value stream: a splitmix64 walk spread across the
    /// histogram's octaves (the vendored proptest only offers integer
    /// strategies, so the stream is derived from a seeded walk).
    fn stream(seed: u64, len: usize) -> Vec<u64> {
        let mut state = seed;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            // Spread magnitudes: pick an octave, then a value inside it.
            let shift = (z % 31) as u32;
            out.push((z >> 16) & ((1u64 << shift) | (shift as u64)));
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every reported percentile is within its bucket's quantization
        /// of the exact order statistic.
        #[test]
        fn percentiles_within_one_bucket_of_exact(seed in 0u64..1_000_000, len in 1usize..400) {
            let values = stream(seed, len);
            let h = LatencyHistogram::new();
            for &v in &values {
                h.record_value(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let snap = h.snapshot();
            for p in [50.0, 90.0, 99.0, 99.9] {
                let rank = ((p / 100.0 * len as f64).ceil() as usize).clamp(1, len);
                let exact = sorted[rank - 1];
                let got = snap.percentile(p);
                // The report is the ceiling of *some* recorded value's
                // bucket at that rank: at least the exact statistic, at
                // most its bucket ceiling (or the capped max).
                prop_assert!(got >= exact, "p{p}: {got} < exact {exact}");
                prop_assert!(
                    got <= bucket_ceiling(exact).min(snap.max()),
                    "p{p}: {got} beyond ceiling of {exact}"
                );
            }
            prop_assert_eq!(snap.max(), sorted[len - 1]);
            prop_assert_eq!(snap.count(), len as u64);
        }

        /// merge(a, b) is indistinguishable from recording everything into
        /// one histogram.
        #[test]
        fn merge_equals_record_all_in_one(seed in 0u64..1_000_000, split in 0usize..300) {
            let values = stream(seed, 300);
            let split = split.min(values.len());
            let (left, right) = values.split_at(split);
            let a = LatencyHistogram::new();
            let b = LatencyHistogram::new();
            let one = LatencyHistogram::new();
            for &v in left {
                a.record_value(v);
                one.record_value(v);
            }
            for &v in right {
                b.record_value(v);
                one.record_value(v);
            }
            a.merge(&b);
            prop_assert_eq!(a.snapshot(), one.snapshot());
        }
    }

    #[test]
    fn concurrent_recording_from_four_threads_loses_no_counts() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        const PER_THREAD: u64 = 50_000;
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record_value(t * 1_000 + (i % 997));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 4 * PER_THREAD);
        // The bucket array agrees with the count axis: no increment was
        // lost on either side.
        assert_eq!(snap.buckets.iter().sum::<u64>(), 4 * PER_THREAD);
        let again = h.snapshot();
        assert_eq!(snap, again, "writers quiesced: snapshots identical");
        assert_eq!(snap.max(), 3 * 1_000 + 996);
    }
}
