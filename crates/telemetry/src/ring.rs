//! A bounded ring of the worst (slowest) observations.
//!
//! [`SlowRing`] keeps the `N` entries with the largest score seen so far.
//! The hot path pays one relaxed atomic load: `offer` first compares the
//! score against a cached admission threshold (the current minimum in the
//! ring once full) and returns without locking — and without even
//! *constructing* the entry, which is why insertion takes a closure — for
//! the overwhelming majority of queries that are not in the worst-N.
//! Only a genuine candidate takes the mutex and allocates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// A bounded worst-N ring keyed by a `u64` score (e.g. total latency in
/// microseconds).
#[derive(Debug)]
pub struct SlowRing<T> {
    capacity: usize,
    /// Scores below this cannot enter the ring; updated under the lock,
    /// read lock-free on the fast path. Starts at 0 (everything admitted
    /// until the ring fills).
    floor: AtomicU64,
    entries: Mutex<Vec<(u64, T)>>,
}

impl<T> SlowRing<T> {
    /// A ring keeping the worst `capacity` entries (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        SlowRing {
            capacity: capacity.max(1),
            floor: AtomicU64::new(0),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Offers a score; if it beats the current worst-N floor, `make` is
    /// called to build the entry and it displaces the minimum. Fast path
    /// (score below floor, ring full): one relaxed load, no lock, no call
    /// to `make`, no allocation.
    pub fn offer(&self, score: u64, make: impl FnOnce() -> T) {
        if score < self.floor.load(Ordering::Relaxed) {
            return;
        }
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        if entries.len() < self.capacity {
            entries.push((score, make()));
            if entries.len() == self.capacity {
                self.update_floor(&entries);
            }
            return;
        }
        // Full: replace the minimum if we beat it. The floor may lag a
        // concurrent insert, so re-check under the lock.
        let (min_idx, min_score) = match entries.iter().enumerate().min_by_key(|(_, (s, _))| *s) {
            Some((i, (s, _))) => (i, *s),
            None => return, // capacity ≥ 1, so unreachable; stay panic-free
        };
        if score <= min_score {
            return;
        }
        entries[min_idx] = (score, make());
        self.update_floor(&entries);
    }

    fn update_floor(&self, entries: &[(u64, T)]) {
        let min = entries.iter().map(|(s, _)| *s).min().unwrap_or(0);
        self.floor.store(min, Ordering::Relaxed);
    }

    /// Entries recorded so far, worst first.
    pub fn snapshot(&self) -> Vec<(u64, T)>
    where
        T: Clone,
    {
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = entries.clone();
        out.sort_by_key(|entry| std::cmp::Reverse(entry.0));
        out
    }

    /// Empties the ring and resets the admission floor.
    pub fn clear(&self) {
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        entries.clear();
        self.floor.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn keeps_the_worst_n() {
        let ring = SlowRing::new(3);
        for score in [5u64, 1, 9, 3, 7, 2, 8] {
            ring.offer(score, move || score);
        }
        let snap = ring.snapshot();
        let scores: Vec<u64> = snap.iter().map(|(s, _)| *s).collect();
        assert_eq!(scores, vec![9, 8, 7]);
    }

    #[test]
    fn fast_path_skips_entry_construction() {
        let ring = SlowRing::new(2);
        ring.offer(100, || "a");
        ring.offer(200, || "b");
        // Ring is full with floor 100; a score of 5 must not build.
        let built = AtomicUsize::new(0);
        ring.offer(5, || {
            built.fetch_add(1, Ordering::Relaxed);
            "c"
        });
        assert_eq!(built.load(Ordering::Relaxed), 0);
        assert_eq!(ring.snapshot().len(), 2);
    }

    #[test]
    fn ties_do_not_displace() {
        let ring = SlowRing::new(1);
        ring.offer(10, || "first");
        ring.offer(10, || "second");
        assert_eq!(ring.snapshot(), vec![(10, "first")]);
        ring.offer(11, || "third");
        assert_eq!(ring.snapshot(), vec![(11, "third")]);
    }

    #[test]
    fn clear_reopens_admission() {
        let ring = SlowRing::new(1);
        ring.offer(100, || ());
        ring.clear();
        assert!(ring.snapshot().is_empty());
        ring.offer(1, || ());
        assert_eq!(ring.snapshot().len(), 1);
    }

    #[test]
    fn concurrent_offers_keep_global_worst() {
        let ring = std::sync::Arc::new(SlowRing::new(4));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        let score = t * 1_000 + i;
                        ring.offer(score, move || score);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let scores: Vec<u64> = ring.snapshot().iter().map(|(s, _)| *s).collect();
        assert_eq!(scores, vec![3_999, 3_998, 3_997, 3_996]);
    }
}
