//! Per-query phase spans and the histograms that absorb them.
//!
//! A query's life on the server splits into four phases, all measured on
//! the dispatcher side (client RTT is strictly larger — it adds both
//! socket legs):
//!
//! ```text
//! admitted ──queued──▶ partition ──planned──▶ exec ──executed──▶ done ──responded──▶ reply sent
//! └──────────────────────────────── total ─────────────────────────────────────────┘
//! ```
//!
//! A [`QuerySpan`] is the four durations in microseconds — a plain value,
//! built on the dispatcher from `Instant` deltas. [`PhaseHistograms`] is
//! the sink: five [`LatencyHistogram`]s (one per phase plus the total),
//! recorded in one call with no allocation or locking.

use crate::hist::{LatencyHistogram, Summary};

/// The four phase durations of one query, in microseconds.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct QuerySpan {
    /// Admission to the start of the batch round that picked the query up.
    pub queued_us: u64,
    /// Partitioning/planning: grouping, schedule resolution, shedding.
    pub planned_us: u64,
    /// Time inside the engine (for grouped point queries: the group's
    /// execution window, attributed to each member).
    pub executed_us: u64,
    /// Execution end to the reply handed back to the connection thread.
    pub responded_us: u64,
}

impl QuerySpan {
    /// End-to-end dispatcher-side latency.
    pub fn total_us(&self) -> u64 {
        self.queued_us
            .saturating_add(self.planned_us)
            .saturating_add(self.executed_us)
            .saturating_add(self.responded_us)
    }
}

/// One histogram per phase plus the total — the per-series sink spans are
/// folded into.
#[derive(Debug, Default)]
pub struct PhaseHistograms {
    /// Queue-wait distribution.
    pub queued: LatencyHistogram,
    /// Planning distribution.
    pub planned: LatencyHistogram,
    /// Execution distribution.
    pub executed: LatencyHistogram,
    /// Reply distribution.
    pub responded: LatencyHistogram,
    /// End-to-end distribution.
    pub total: LatencyHistogram,
}

/// The four phase names, in span order — the canonical spelling for wire
/// series and docs.
pub const PHASE_NAMES: [&str; 5] = ["queued", "planned", "executed", "responded", "total"];

impl PhaseHistograms {
    /// An empty set of phase histograms.
    pub fn new() -> Self {
        PhaseHistograms::default()
    }

    /// Records one query's span across all five histograms. Five relaxed
    /// bucket increments — no allocation, no locks.
    pub fn record(&self, span: &QuerySpan) {
        self.queued.record_value(span.queued_us);
        self.planned.record_value(span.planned_us);
        self.executed.record_value(span.executed_us);
        self.responded.record_value(span.responded_us);
        self.total.record_value(span.total_us());
    }

    /// Queries recorded (every phase sees each query exactly once).
    pub fn count(&self) -> u64 {
        self.total.count()
    }

    /// Five-point digests in [`PHASE_NAMES`] order.
    pub fn summaries(&self) -> [Summary; 5] {
        [
            self.queued.summary(),
            self.planned.summary(),
            self.executed.summary(),
            self.responded.summary(),
            self.total.summary(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_the_sum_of_phases() {
        let span = QuerySpan {
            queued_us: 10,
            planned_us: 2,
            executed_us: 500,
            responded_us: 3,
        };
        assert_eq!(span.total_us(), 515);
    }

    #[test]
    fn total_saturates_instead_of_overflowing() {
        let span = QuerySpan {
            queued_us: u64::MAX,
            planned_us: u64::MAX,
            executed_us: 1,
            responded_us: 1,
        };
        assert_eq!(span.total_us(), u64::MAX);
    }

    #[test]
    fn record_feeds_every_phase_once() {
        let phases = PhaseHistograms::new();
        for i in 0..10 {
            phases.record(&QuerySpan {
                queued_us: i,
                planned_us: 1,
                executed_us: 100 + i,
                responded_us: 1,
            });
        }
        assert_eq!(phases.count(), 10);
        let [queued, planned, executed, responded, total] = phases.summaries();
        for s in [&queued, &planned, &executed, &responded, &total] {
            assert_eq!(s.count, 10);
        }
        assert_eq!(planned.max, 1);
        assert_eq!(executed.max, 109);
        assert!(total.p50 >= executed.p50);
    }
}
