//! Lock-free serving telemetry for priograph.
//!
//! This crate holds the primitives the server threads through its hot
//! path, all built to the same discipline as the parallel core's
//! `WorkerLocal`/`SliceWriter`: **no allocation and no locks on the
//! recording path**, relaxed atomics only, fixed footprints, and
//! snapshot-readable without stopping writers.
//!
//! - [`LatencyHistogram`] — a fixed-footprint log-linear (HDR-style)
//!   histogram: ~3.5 KiB of atomics covering a microsecond to ~35
//!   minutes at ≤ 6.25% relative error, mergeable bucket-wise.
//! - [`Counter`] — a cache-padded striped counter for hot multi-writer
//!   tallies.
//! - [`QuerySpan`] / [`PhaseHistograms`] — the four per-query phases
//!   (queued → planned → executed → responded) and the five histograms
//!   that absorb them.
//! - [`SlowRing`] — a bounded worst-N ring whose fast path is a single
//!   relaxed load, for capturing the slowest queries with full context.
//! - [`EventRing`] — a bounded append-only wall-clock event log that
//!   drops (and counts) on overflow instead of overwriting, for
//!   harnesses that need a complete, time-ordered record of a run.
//!
//! The crate is deliberately free-standing: it knows nothing about the
//! wire protocol, graphs, or schedules. The server maps these primitives
//! onto named series (`docs/PROTOCOL.md` §4.3, "StatsV2") and the engine's
//! `RoundObserver` hook lives in `priograph-core` so the engines don't
//! depend on this crate.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod counter;
mod events;
mod hist;
mod ring;
mod span;

pub use counter::Counter;
pub use events::{EventRing, RingEvent};
pub use hist::{
    bucket_bounds, bucket_ceiling, HistogramSnapshot, LatencyHistogram, Summary, BUCKET_COUNT,
    MAX_VALUE, SUB_BUCKETS,
};
pub use ring::SlowRing;
pub use span::{PhaseHistograms, QuerySpan, PHASE_NAMES};
