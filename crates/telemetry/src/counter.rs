//! Cache-padded striped counters.
//!
//! A [`Counter`] spreads increments across per-stripe `AtomicU64`s, each
//! on its own cache line (`CachePadded`), so concurrent writers from
//! different pool workers never bounce a line between cores — the same
//! false-sharing discipline as the parallel crate's `WorkerLocal`.
//! Reads ([`Counter::sum`]) fold the stripes and are approximate while
//! writers are active, exact once they quiesce.

use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter striped across cache lines.
#[derive(Debug)]
pub struct Counter {
    stripes: Box<[CachePadded<AtomicU64>]>,
}

impl Counter {
    /// A counter with one stripe per expected writer (workers, connection
    /// threads). `stripes` is clamped to at least 1.
    pub fn new(stripes: usize) -> Self {
        Counter {
            stripes: (0..stripes.max(1))
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Number of stripes (use the writer's worker id modulo this).
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    /// Adds `n` on stripe `stripe` (wrapped into range). Relaxed
    /// `fetch_add`: no locks, no allocation.
    pub fn add(&self, stripe: usize, n: u64) {
        self.stripes[stripe % self.stripes.len()].fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 on stripe `stripe`.
    pub fn incr(&self, stripe: usize) {
        self.add(stripe, 1);
    }

    /// Folds all stripes into one total.
    pub fn sum(&self) -> u64 {
        self.stripes.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn stripes_fold_into_one_total() {
        let c = Counter::new(4);
        c.add(0, 5);
        c.incr(1);
        c.incr(5); // wraps onto stripe 1
        c.add(3, 10);
        assert_eq!(c.sum(), 17);
        assert_eq!(c.stripes(), 4);
    }

    #[test]
    fn zero_stripes_clamps_to_one() {
        let c = Counter::new(0);
        c.incr(7);
        assert_eq!(c.sum(), 1);
        assert_eq!(c.stripes(), 1);
    }

    #[test]
    fn concurrent_increments_lose_nothing() {
        let c = Arc::new(Counter::new(4));
        let handles: Vec<_> = (0..4usize)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.incr(t);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.sum(), 40_000);
    }
}
