//! A bounded wall-clock event ring: fixed-capacity, lock-free recording of
//! timestamped events for post-run forensics.
//!
//! The load harness (`priograph-load`) needs one record per query — when it
//! was *scheduled* to arrive, when it was sent, how it resolved, what the
//! circuit breaker was doing — without perturbing the run it is measuring.
//! [`EventRing`] provides that: recording is one `fetch_add` on a cursor
//! plus three relaxed stores and one release store (the commit flag); no
//! locks, no allocation, any number of concurrent writers.
//!
//! Unlike [`crate::SlowRing`] (which keeps the worst N by displacement),
//! this ring is **append-only and honest about loss**: once the fixed
//! capacity is spent, further events are dropped and *counted* — the
//! earliest events are never silently overwritten, because consumers
//! (breaker-walk reconciliation, exactly-once error accounting) need a
//! complete prefix, not a recent window. Size the ring for the worst case
//! and assert [`EventRing::dropped`] is zero.
//!
//! Timestamps are microseconds since the ring's construction, stamped from
//! one shared monotonic origin — every writer's events are directly
//! comparable, which is what makes breaker *open-time* computable from the
//! drained log.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One drained event: a wall-clock stamp plus two opaque payload words.
/// The ring does not interpret `a`/`b`; callers define their own packing
/// (the load harness keeps an event tag and indices in `a`, measured
/// durations in `b`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RingEvent {
    /// Microseconds since [`EventRing::new`], from the ring's own clock.
    pub at_us: u64,
    /// First payload word (caller-defined).
    pub a: u64,
    /// Second payload word (caller-defined).
    pub b: u64,
}

/// One slot: a commit flag (0 = empty, 1 = published) guarding the three
/// payload words. The writer stores the payload relaxed, then publishes
/// with a release store; readers acquire the flag before trusting the
/// payload.
#[derive(Debug)]
struct Slot {
    committed: AtomicU64,
    at_us: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

/// A fixed-capacity, multi-writer, wall-clock event log (see module docs).
///
/// Thread model: any number of concurrent [`EventRing::record`] callers;
/// [`EventRing::snapshot`] may run concurrently (it skips slots whose
/// commit flag is not yet visible) but is exact once writers quiesce.
#[derive(Debug)]
pub struct EventRing {
    origin: Instant,
    slots: Box<[Slot]>,
    cursor: AtomicU64,
    dropped: AtomicU64,
}

impl EventRing {
    /// An empty ring with room for `capacity` events (the slot array is
    /// the only allocation the ring ever performs). A zero capacity is
    /// rounded up to one slot.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            slots.push(Slot {
                committed: AtomicU64::new(0),
                at_us: AtomicU64::new(0),
                a: AtomicU64::new(0),
                b: AtomicU64::new(0),
            });
        }
        EventRing {
            origin: Instant::now(),
            slots: slots.into_boxed_slice(),
            cursor: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Microseconds since the ring's construction on its own clock — use
    /// this to stamp measurements that must be comparable with recorded
    /// events.
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Records one event stamped `now_us()`. Returns `false` (and counts
    /// the drop) when the ring is full.
    pub fn record(&self, a: u64, b: u64) -> bool {
        self.record_at(self.now_us(), a, b)
    }

    /// Records one event with an explicit stamp (a caller that already
    /// read [`EventRing::now_us`] for its measurement avoids a second
    /// clock read). Returns `false` when the ring is full.
    pub fn record_at(&self, at_us: u64, a: u64, b: u64) -> bool {
        let idx = self.cursor.fetch_add(1, Ordering::Relaxed);
        let Some(slot) = self.slots.get(idx as usize) else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        slot.at_us.store(at_us, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.committed.store(1, Ordering::Release);
        true
    }

    /// Events recorded (committed or in flight), capped at capacity.
    pub fn len(&self) -> usize {
        (self.cursor.load(Ordering::Relaxed) as usize).min(self.slots.len())
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.cursor.load(Ordering::Relaxed) == 0
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events refused because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The committed events in record order. Taken concurrently with
    /// writers it skips not-yet-published slots; after writers quiesce it
    /// is the complete log.
    pub fn snapshot(&self) -> Vec<RingEvent> {
        let len = self.len();
        let mut out = Vec::with_capacity(len);
        for slot in self.slots.iter().take(len) {
            if slot.committed.load(Ordering::Acquire) == 1 {
                out.push(RingEvent {
                    at_us: slot.at_us.load(Ordering::Relaxed),
                    a: slot.a.load(Ordering::Relaxed),
                    b: slot.b.load(Ordering::Relaxed),
                });
            }
        }
        out
    }

    /// Empties the ring for reuse (cursor, commit flags, and the drop
    /// counter). The caller must have quiesced all writers first — a
    /// record racing a reset may land anywhere or be lost. The clock
    /// origin is preserved so stamps stay comparable across resets.
    pub fn reset(&self) {
        let len = self.len();
        for slot in self.slots.iter().take(len) {
            slot.committed.store(0, Ordering::Relaxed);
        }
        self.dropped.store(0, Ordering::Relaxed);
        self.cursor.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_are_drained_in_order_with_stamps() {
        let ring = EventRing::new(8);
        assert!(ring.is_empty());
        for i in 0..5u64 {
            assert!(ring.record_at(i * 10, i, i * 100));
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            let i = i as u64;
            assert_eq!(
                *e,
                RingEvent {
                    at_us: i * 10,
                    a: i,
                    b: i * 100
                }
            );
        }
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn overflow_drops_and_counts_never_overwrites() {
        let ring = EventRing::new(3);
        for i in 0..10u64 {
            ring.record_at(i, i, 0);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 7);
        let events = ring.snapshot();
        // The earliest events survive; later ones were refused.
        assert_eq!(
            events.iter().map(|e| e.a).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn reset_reuses_the_ring_and_keeps_the_clock() {
        let ring = EventRing::new(2);
        ring.record(1, 1);
        ring.record(2, 2);
        ring.record(3, 3); // dropped
        assert_eq!(ring.dropped(), 1);
        let before = ring.now_us();
        ring.reset();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
        assert!(ring.snapshot().is_empty());
        ring.record(4, 4);
        assert_eq!(ring.snapshot().len(), 1);
        assert_eq!(ring.snapshot()[0].a, 4);
        // Origin preserved: stamps after the reset continue the same axis.
        assert!(ring.now_us() >= before);
    }

    #[test]
    fn concurrent_writers_lose_nothing_below_capacity() {
        const WRITERS: u64 = 4;
        const PER_WRITER: u64 = 5_000;
        let ring = Arc::new(EventRing::new((WRITERS * PER_WRITER) as usize));
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..PER_WRITER {
                        assert!(ring.record(w, i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), (WRITERS * PER_WRITER) as usize);
        assert_eq!(ring.dropped(), 0);
        // Every writer's full sequence is present exactly once.
        for w in 0..WRITERS {
            let mut seen: Vec<u64> = events.iter().filter(|e| e.a == w).map(|e| e.b).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..PER_WRITER).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_capacity_rounds_up_and_wall_clock_advances() {
        let ring = EventRing::new(0);
        assert_eq!(ring.capacity(), 1);
        assert!(ring.record(1, 2));
        assert!(!ring.record(3, 4));
        let t0 = ring.now_us();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(ring.now_us() >= t0 + 1_000);
    }
}
