//! Histogram-based reduction of constant-sum priority updates.
//!
//! For algorithms whose UDF always changes a priority by the same constant
//! (k-core decrements by 1 per peeled neighbor), the lazy engine can buffer
//! raw neighbor occurrences and *count* them instead of applying each update
//! atomically — the "lazy with constant sum reduction" optimization the
//! compiler selects after proving the update is a constant sum (paper §5.1,
//! Figure 10). The transformed UDF then receives `(vertex, count)` pairs.

use priograph_parallel::scan::filter_map_compact_into;
use priograph_parallel::shared::WorkerLocal;
use priograph_parallel::Pool;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

type VertexId = u32;

/// A reusable per-vertex occurrence counter.
///
/// Allocation happens once; per-round cleanup is proportional to the number
/// of *touched* vertices, not to `n` (k-core runs thousands of rounds).
///
/// # Example
///
/// ```
/// use priograph_parallel::Pool;
/// use priograph_buckets::histogram::Histogram;
///
/// let pool = Pool::new(2);
/// let hist = Histogram::new(5);
/// let mut distinct = hist.accumulate(&pool, &[1, 3, 1, 1]);
/// distinct.sort_unstable();
/// assert_eq!(hist.count(1), 3);
/// assert_eq!(hist.count(3), 1);
/// assert_eq!(distinct, vec![1, 3]);
/// hist.clear(&pool, &distinct);
/// assert_eq!(hist.count(1), 0);
/// ```
pub struct Histogram {
    counts: Vec<AtomicU32>,
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("len", &self.counts.len())
            .finish()
    }
}

impl Histogram {
    /// Creates a zeroed histogram over `num_vertices` counters.
    pub fn new(num_vertices: usize) -> Self {
        Histogram {
            counts: (0..num_vertices).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if the histogram tracks no vertices.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Adds one occurrence per item and returns the distinct vertices touched
    /// (each exactly once, unordered). Allocating convenience wrapper over
    /// [`Histogram::accumulate_into`].
    pub fn accumulate(&self, pool: &Pool, items: &[VertexId]) -> Vec<VertexId> {
        let mut locals = WorkerLocal::default();
        let mut out = Vec::new();
        self.accumulate_into(pool, items, &mut locals, &mut out);
        out
    }

    /// Adds one occurrence per item, compacting the distinct vertices
    /// touched (each exactly once) into `out` through the caller's reusable
    /// per-worker buffers — lock-free and allocation-free once warm.
    ///
    /// The first thread to raise a counter from zero claims the vertex for
    /// the distinct list — this is the "one bucket update per vertex" half of
    /// the constant-sum reduction.
    pub fn accumulate_into(
        &self,
        pool: &Pool,
        items: &[VertexId],
        locals: &mut WorkerLocal<Vec<VertexId>>,
        out: &mut Vec<VertexId>,
    ) {
        locals.ensure(pool.num_threads());
        filter_map_compact_into(
            pool,
            items,
            |&v| (self.counts[v as usize].fetch_add(1, Ordering::Relaxed) == 0).then_some(v),
            locals,
            out,
        );
    }

    /// Current count for `v`.
    #[inline]
    pub fn count(&self, v: VertexId) -> u32 {
        self.counts[v as usize].load(Ordering::Relaxed)
    }

    /// Zeroes the counters listed in `touched` (O(touched), not O(n)).
    pub fn clear(&self, pool: &Pool, touched: &[VertexId]) {
        if touched.len() < 4096 || pool.num_threads() == 1 {
            for &v in touched {
                self.counts[v as usize].store(0, Ordering::Relaxed);
            }
        } else {
            pool.parallel_for(0..touched.len(), 512, |i| {
                self.counts[touched[i] as usize].store(0, Ordering::Relaxed);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn counts_match_naive_histogram() {
        let pool = Pool::new(4);
        let items: Vec<VertexId> = (0..20_000).map(|i| (i * 37 % 97) as VertexId).collect();
        let hist = Histogram::new(100);
        let distinct = hist.accumulate(&pool, &items);
        let mut naive: HashMap<VertexId, u32> = HashMap::new();
        for &v in &items {
            *naive.entry(v).or_default() += 1;
        }
        for (v, &c) in naive.iter() {
            assert_eq!(hist.count(*v), c);
        }
        assert_eq!(distinct.len(), naive.len());
        let mut d = distinct.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), distinct.len(), "distinct list has duplicates");
    }

    #[test]
    fn clear_resets_only_touched() {
        let pool = Pool::new(2);
        let hist = Histogram::new(4);
        let distinct = hist.accumulate(&pool, &[2, 2, 0]);
        hist.clear(&pool, &distinct);
        for v in 0..4 {
            assert_eq!(hist.count(v), 0);
        }
        // Reusable after clear.
        let d2 = hist.accumulate(&pool, &[1]);
        assert_eq!(d2, vec![1]);
        assert_eq!(hist.count(1), 1);
    }

    #[test]
    fn empty_input() {
        let pool = Pool::new(2);
        let hist = Histogram::new(4);
        assert!(hist.accumulate(&pool, &[]).is_empty());
        assert_eq!(hist.len(), 4);
        assert!(!hist.is_empty());
    }

    #[test]
    fn all_same_vertex() {
        let pool = Pool::new(2);
        let items = vec![2u32; 10_000];
        let hist = Histogram::new(3);
        let distinct = hist.accumulate(&pool, &items);
        assert_eq!(hist.count(2), 10_000);
        assert_eq!(distinct, vec![2]);
    }
}
