//! The lazy engine's per-round output-edge buffer.
//!
//! Paper Figure 9(a): the generated SparsePush code sizes a buffer by the
//! frontier's out-degree sum, gives each source vertex a private slot range
//! (via prefix sums over degrees), writes the destination vertex id into the
//! slot when its priority changed (or a hole otherwise), and finally
//! compacts the buffer into the next frontier (`setupFrontier`).

use parking_lot::Mutex;
use priograph_parallel::shared::DisjointSlice;
use priograph_parallel::Pool;
use std::fmt;

type VertexId = u32;

/// Hole marker for slots whose update did not win (`UINT_MAX` in the paper's
/// generated code).
pub const HOLE: VertexId = VertexId::MAX;

/// Fixed-size per-round buffer of candidate frontier vertices with holes.
pub struct EdgeBuffer {
    slots: DisjointSlice<VertexId>,
}

impl fmt::Debug for EdgeBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EdgeBuffer")
            .field("capacity", &self.slots.len())
            .finish()
    }
}

impl EdgeBuffer {
    /// Allocates a buffer of `capacity` slots, all holes.
    pub fn new(capacity: usize) -> Self {
        EdgeBuffer {
            slots: DisjointSlice::new(capacity, HOLE),
        }
    }

    /// Capacity in slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Writes `v` into `slot`. Slot ranges are disjoint per source vertex,
    /// so concurrent writes never alias.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds.
    #[inline]
    pub fn write(&self, slot: usize, v: VertexId) {
        self.slots.write(slot, v);
    }

    /// Explicitly writes a hole (kept for symmetry with the generated code;
    /// slots start as holes).
    #[inline]
    pub fn write_hole(&self, slot: usize) {
        self.slots.write(slot, HOLE);
    }

    /// Compacts the non-hole entries into a frontier vector
    /// (the paper's `setupFrontier` prefix-sum compaction).
    pub fn compact(&self, pool: &Pool) -> Vec<VertexId> {
        let len = self.slots.len();
        if len < 4096 || pool.num_threads() == 1 {
            return (0..len)
                .map(|i| self.slots.read(i))
                .filter(|&v| v != HOLE)
                .collect();
        }
        let partials: Mutex<Vec<Vec<VertexId>>> = Mutex::new(Vec::new());
        pool.broadcast(|w| {
            let range = w.static_range(len);
            let mut local = Vec::new();
            for i in range {
                let v = self.slots.read(i);
                if v != HOLE {
                    local.push(v);
                }
            }
            partials.lock().push(local);
        });
        partials.into_inner().into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_keeps_only_written_slots() {
        let pool = Pool::new(1);
        let buf = EdgeBuffer::new(10);
        buf.write(2, 42);
        buf.write(7, 7);
        buf.write_hole(3);
        let mut out = buf.compact(&pool);
        out.sort_unstable();
        assert_eq!(out, vec![7, 42]);
    }

    #[test]
    fn empty_buffer_compacts_to_nothing() {
        let pool = Pool::new(2);
        let buf = EdgeBuffer::new(0);
        assert!(buf.compact(&pool).is_empty());
        assert_eq!(buf.capacity(), 0);
    }

    #[test]
    fn parallel_compact_matches_serial() {
        let par = Pool::new(4);
        let ser = Pool::new(1);
        let buf = EdgeBuffer::new(50_000);
        for i in (0..50_000).step_by(3) {
            buf.write(i, (i / 3) as VertexId);
        }
        let mut a = buf.compact(&par);
        let mut b = buf.compact(&ser);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(a.len(), 50_000 / 3 + 1);
    }

    #[test]
    fn concurrent_disjoint_writes_then_compact() {
        let pool = Pool::new(4);
        let buf = EdgeBuffer::new(8192);
        pool.parallel_for(0..8192, 64, |i| {
            if i % 2 == 0 {
                buf.write(i, i as VertexId);
            }
        });
        let out = buf.compact(&pool);
        assert_eq!(out.len(), 4096);
        assert!(out.iter().all(|&v| v % 2 == 0));
    }
}
