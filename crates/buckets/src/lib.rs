//! Bucketing data structures for ordered graph algorithms.
//!
//! The paper contrasts two families of bucket maintenance (§3):
//!
//! * **Lazy bucket updates** (Julienne): priority changes are buffered during
//!   a round; a single bulk pass then re-buckets each vertex once. Efficient
//!   when vertices change buckets many times per round (k-core), at the cost
//!   of buffer maintenance and a reduction per round. → [`LazyBucketQueue`],
//!   [`EdgeBuffer`], [`histogram`].
//! * **Eager bucket updates** (GAPBS): the moment a priority changes, the
//!   updating thread appends the vertex to its *thread-local* bucket for the
//!   new priority — no buffering, no reduction, but possibly several
//!   insertions per vertex per round. → [`LocalBins`], [`SharedFrontier`].
//!
//! Bucket indices are *coarsened* priorities: `bucket = priority / Δ`
//! ([`PriorityMap`]), the priority-coarsening optimization of §2. A
//! [`BucketOrder`] maps both lower-priority-first (SSSP) and
//! higher-priority-first (SetCover) executions onto monotonically increasing
//! bucket ids.
//!
//! Both families follow the zero-allocation worker-local round protocol
//! (documented on `priograph_parallel::shared`): per-round data lives in
//! reusable per-worker buffers that are merged by scan compaction and
//! cleared — never dropped — between rounds. [`LazyBucketQueue`]'s module
//! docs describe the lazy side; on the eager side [`LocalBins::flush_into`]
//! and [`LocalBins::swap_bin`] keep bin storage warm across rounds, and
//! [`SharedFrontier`] appends and drains with single `memcpy`s.
//!
//! # Example
//!
//! ```
//! use priograph_buckets::{BucketOrder, PriorityMap};
//!
//! let map = PriorityMap::new(BucketOrder::Increasing, 4);
//! assert_eq!(map.bucket_of(0), Some(0));
//! assert_eq!(map.bucket_of(7), Some(1));
//! assert_eq!(map.bucket_of(priograph_buckets::NULL_PRIORITY), None);
//! ```

// See crates/graph/src/lib.rs: docs on public items are enforced, not
// suggested, for the crates the serving stack exposes.
#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod buffer;
mod eager;
pub mod histogram;
mod lazy;
mod priority_map;

pub use buffer::EdgeBuffer;
pub use eager::{LocalBins, SharedFrontier};
pub use lazy::LazyBucketQueue;
pub use priority_map::{BucketOrder, PriorityMap, NULL_PRIORITY};

/// Number of materialized ("open") buckets the lazy queue keeps, after
/// Julienne's default. Buckets beyond the window live in one overflow bucket.
pub const DEFAULT_OPEN_BUCKETS: usize = 128;
