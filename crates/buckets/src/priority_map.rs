//! Mapping from dynamic vertex priorities to monotone bucket ids.

/// The null priority ∅ (paper §2): vertices holding it are not scheduled.
///
/// Chosen so that `NULL_PRIORITY + max_weight` cannot overflow `i64`, letting
/// relaxation code add first and compare later, like the paper's generated
/// C++ adds to `INT_MAX`-guarded values.
pub const NULL_PRIORITY: i64 = i64::MAX / 4;

/// Whether lower or higher priority values execute first
/// (`lower_first` / `higher_first` in the priority-queue constructor,
/// paper Table 1).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum BucketOrder {
    /// Lower priority values first (SSSP, wBFS, PPSP, A\*, k-core).
    Increasing,
    /// Higher priority values first (SetCover's cost-per-element buckets).
    Decreasing,
}

/// Computes bucket ids from priorities: `bucket = priority / Δ`, sign-folded
/// so that execution always proceeds over *increasing* bucket ids regardless
/// of [`BucketOrder`].
///
/// Δ > 1 is the priority-coarsening optimization (§2): it trades algorithmic
/// work-efficiency for parallelism and is only legal for algorithms that
/// tolerate priority inversions within a bucket (SSSP family, not k-core).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PriorityMap {
    order: BucketOrder,
    delta: i64,
}

impl PriorityMap {
    /// Creates a map with coarsening factor `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `delta < 1`.
    pub fn new(order: BucketOrder, delta: i64) -> Self {
        assert!(delta >= 1, "coarsening factor must be at least 1");
        PriorityMap { order, delta }
    }

    /// The coarsening factor Δ.
    pub fn delta(&self) -> i64 {
        self.delta
    }

    /// The configured execution order.
    pub fn order(&self) -> BucketOrder {
        self.order
    }

    /// Maps a priority to its bucket id, or `None` for the null priority.
    ///
    /// Bucket ids increase in execution order for both directions.
    #[inline]
    pub fn bucket_of(&self, priority: i64) -> Option<i64> {
        if priority.abs() >= NULL_PRIORITY {
            return None;
        }
        let coarse = priority.div_euclid(self.delta);
        Some(match self.order {
            BucketOrder::Increasing => coarse,
            BucketOrder::Decreasing => -coarse,
        })
    }

    /// The smallest priority belonging to `bucket` (its representative),
    /// inverse of [`PriorityMap::bucket_of`] up to coarsening.
    #[inline]
    pub fn priority_of_bucket(&self, bucket: i64) -> i64 {
        match self.order {
            BucketOrder::Increasing => bucket * self.delta,
            BucketOrder::Decreasing => -bucket * self.delta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increasing_maps_forward() {
        let m = PriorityMap::new(BucketOrder::Increasing, 10);
        assert_eq!(m.bucket_of(0), Some(0));
        assert_eq!(m.bucket_of(9), Some(0));
        assert_eq!(m.bucket_of(10), Some(1));
        assert_eq!(m.bucket_of(25), Some(2));
    }

    #[test]
    fn decreasing_negates_so_higher_runs_first() {
        let m = PriorityMap::new(BucketOrder::Decreasing, 1);
        let high = m.bucket_of(100).unwrap();
        let low = m.bucket_of(5).unwrap();
        assert!(high < low, "higher priority must map to earlier bucket");
    }

    #[test]
    fn null_priority_is_unbucketed() {
        for order in [BucketOrder::Increasing, BucketOrder::Decreasing] {
            let m = PriorityMap::new(order, 4);
            assert_eq!(m.bucket_of(NULL_PRIORITY), None);
            assert_eq!(m.bucket_of(i64::MAX / 2), None);
            assert_eq!(m.bucket_of(-NULL_PRIORITY), None);
        }
    }

    #[test]
    fn delta_one_is_identity_on_increasing() {
        let m = PriorityMap::new(BucketOrder::Increasing, 1);
        for p in [0i64, 1, 7, 1000] {
            assert_eq!(m.bucket_of(p), Some(p));
        }
    }

    #[test]
    fn representative_priority_round_trips() {
        let m = PriorityMap::new(BucketOrder::Increasing, 16);
        for b in [0i64, 1, 5, 117] {
            assert_eq!(m.bucket_of(m.priority_of_bucket(b)), Some(b));
        }
        let d = PriorityMap::new(BucketOrder::Decreasing, 1);
        for b in [-50i64, 0, 3] {
            assert_eq!(d.bucket_of(d.priority_of_bucket(b)), Some(b));
        }
    }

    #[test]
    fn accessors_report_config() {
        let m = PriorityMap::new(BucketOrder::Decreasing, 8);
        assert_eq!(m.delta(), 8);
        assert_eq!(m.order(), BucketOrder::Decreasing);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_delta_panics() {
        let _ = PriorityMap::new(BucketOrder::Increasing, 0);
    }
}
