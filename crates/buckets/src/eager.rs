//! Eager bucketing: thread-local bins and the shared global frontier.
//!
//! In the eager strategy (paper Figure 6) each thread owns a `LocalBins`
//! instance created *inside* the parallel region — bucket insertions are
//! plain unsynchronized pushes. Per round, threads agree on the minimum
//! non-empty bucket across all bins and copy their local entries for that
//! bucket into a [`SharedFrontier`] ("copying local buckets into a global
//! bucket helps redistribute the work among threads", §3.2).

use crossbeam::utils::CachePadded;
use priograph_parallel::shared::DisjointSlice;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

type VertexId = u32;

/// Per-thread bucket array indexed by (non-negative) bucket id.
///
/// Mirrors GAPBS's `vector<vector<uint>> local_bins`, including on-demand
/// growth (`local_bins.resize(dest_bin + 1)`, paper Figure 9(c)).
#[derive(Debug, Default)]
pub struct LocalBins {
    bins: Vec<Vec<VertexId>>,
    /// Total pushes, for eager-vs-lazy insert accounting (paper Table 7).
    pushes: u64,
}

impl LocalBins {
    /// Creates an empty bin set.
    pub fn new() -> Self {
        LocalBins::default()
    }

    /// Appends `v` to the bin for `bucket`.
    #[inline]
    pub fn push(&mut self, bucket: usize, v: VertexId) {
        if bucket >= self.bins.len() {
            self.bins.resize_with(bucket + 1, Vec::new);
        }
        self.bins[bucket].push(v);
        self.pushes += 1;
    }

    /// Number of vertices waiting in `bucket`.
    #[inline]
    pub fn len_of(&self, bucket: usize) -> usize {
        self.bins.get(bucket).map_or(0, Vec::len)
    }

    /// Removes and returns the contents of `bucket`.
    ///
    /// Surrenders the bin's allocation; per-round engine loops should use
    /// [`LocalBins::flush_into`] or [`LocalBins::swap_bin`] instead, which
    /// keep capacities warm across rounds.
    #[inline]
    pub fn take(&mut self, bucket: usize) -> Vec<VertexId> {
        if bucket < self.bins.len() {
            std::mem::take(&mut self.bins[bucket])
        } else {
            Vec::new()
        }
    }

    /// Appends the contents of `bucket` to `frontier` and clears the bin,
    /// retaining its capacity — the per-round copy-out of paper Figure 6
    /// line 8, allocation-free in the steady state.
    #[inline]
    pub fn flush_into(&mut self, bucket: usize, frontier: &SharedFrontier) {
        if let Some(bin) = self.bins.get_mut(bucket) {
            frontier.append(bin);
            bin.clear();
        }
    }

    /// Swaps the contents of `bucket` with `scratch` (typically empty).
    ///
    /// The bucket-fusion loop drains its current bin this way: the drained
    /// items live in `scratch` while new pushes land in the (empty,
    /// previously-`scratch`) bin, and the two capacities ping-pong across
    /// fused iterations with no allocation.
    #[inline]
    pub fn swap_bin(&mut self, bucket: usize, scratch: &mut Vec<VertexId>) {
        if bucket < self.bins.len() {
            std::mem::swap(&mut self.bins[bucket], scratch);
        }
    }

    /// Smallest non-empty bucket id at or after `from`.
    pub fn min_nonempty_from(&self, from: usize) -> Option<usize> {
        (from..self.bins.len()).find(|&b| !self.bins[b].is_empty())
    }

    /// Total pushes so far.
    pub fn total_pushes(&self) -> u64 {
        self.pushes
    }

    /// True if no bucket holds any vertex.
    pub fn is_empty(&self) -> bool {
        self.bins.iter().all(Vec::is_empty)
    }
}

/// A fixed-capacity frontier shared by all threads of a parallel region.
///
/// Writes go through [`SharedFrontier::append`], which claims a range with a
/// single `fetch_add` and then writes without further synchronization (the
/// copy-out step of paper Figure 6 line 8). Reads must not overlap writes —
/// the engines separate the two phases with barriers.
pub struct SharedFrontier {
    data: DisjointSlice<VertexId>,
    len: CachePadded<AtomicUsize>,
}

impl fmt::Debug for SharedFrontier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedFrontier")
            .field("len", &self.len())
            .field("capacity", &self.data.len())
            .finish()
    }
}

impl SharedFrontier {
    /// Allocates a frontier able to hold `capacity` vertices.
    pub fn new(capacity: usize) -> Self {
        SharedFrontier {
            data: DisjointSlice::new(capacity, 0),
            len: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Current number of vertices.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// True if the frontier holds no vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum capacity.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Empties the frontier. Must run while no thread is appending or
    /// reading (between barriers).
    pub fn reset(&self) {
        self.len.store(0, Ordering::Release);
    }

    /// Appends `items`, claiming a contiguous range with a single
    /// `fetch_add` and filling it with one `memcpy`.
    ///
    /// # Panics
    ///
    /// Panics if capacity would be exceeded.
    pub fn append(&self, items: &[VertexId]) {
        if items.is_empty() {
            return;
        }
        let start = self.len.fetch_add(items.len(), Ordering::AcqRel);
        assert!(
            start + items.len() <= self.data.len(),
            "frontier capacity {} exceeded",
            self.data.len()
        );
        self.data.write_slice(start, items);
    }

    /// Appends a single vertex.
    pub fn push(&self, v: VertexId) {
        self.append(std::slice::from_ref(&v));
    }

    /// Reads the vertex at `index < len()`. Must not race with appends.
    #[inline]
    pub fn get(&self, index: usize) -> VertexId {
        debug_assert!(index < self.len());
        self.data.read(index)
    }

    /// Copies the live contents out (for tests and stats). Hot loops should
    /// prefer [`SharedFrontier::copy_into`], which reuses the destination.
    pub fn to_vec(&self) -> Vec<VertexId> {
        let mut out = Vec::new();
        self.copy_into(&mut out);
        out
    }

    /// Copies the live contents into `out` (cleared first) with one
    /// `memcpy`, reusing `out`'s capacity. Must not race with appends.
    pub fn copy_into(&self, out: &mut Vec<VertexId>) {
        out.clear();
        self.data.copy_range_into(0, self.len(), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priograph_parallel::Pool;

    #[test]
    fn local_bins_push_take_roundtrip() {
        let mut bins = LocalBins::new();
        bins.push(3, 10);
        bins.push(3, 11);
        bins.push(0, 12);
        assert_eq!(bins.len_of(3), 2);
        assert_eq!(bins.len_of(7), 0);
        assert_eq!(bins.take(3), vec![10, 11]);
        assert_eq!(bins.len_of(3), 0);
        assert_eq!(bins.total_pushes(), 3);
        assert!(!bins.is_empty());
        assert_eq!(bins.take(0), vec![12]);
        assert!(bins.is_empty());
    }

    #[test]
    fn min_nonempty_scans_forward() {
        let mut bins = LocalBins::new();
        bins.push(5, 1);
        bins.push(9, 2);
        assert_eq!(bins.min_nonempty_from(0), Some(5));
        assert_eq!(bins.min_nonempty_from(6), Some(9));
        assert_eq!(bins.min_nonempty_from(10), None);
        let empty = LocalBins::new();
        assert_eq!(empty.min_nonempty_from(0), None);
    }

    #[test]
    fn take_beyond_allocated_is_empty() {
        let mut bins = LocalBins::new();
        assert!(bins.take(42).is_empty());
    }

    #[test]
    fn flush_into_keeps_bin_capacity() {
        let mut bins = LocalBins::new();
        let frontier = SharedFrontier::new(8);
        bins.push(1, 10);
        bins.push(1, 11);
        bins.flush_into(1, &frontier);
        assert_eq!(frontier.to_vec(), vec![10, 11]);
        assert_eq!(bins.len_of(1), 0);
        // The bin's storage survives the flush for the next round.
        bins.push(1, 12);
        frontier.reset();
        bins.flush_into(1, &frontier);
        assert_eq!(frontier.to_vec(), vec![12]);
        bins.flush_into(99, &frontier); // out-of-range bucket is a no-op
        assert_eq!(frontier.len(), 1);
    }

    #[test]
    fn swap_bin_ping_pongs_storage() {
        let mut bins = LocalBins::new();
        bins.push(0, 1);
        bins.push(0, 2);
        let mut scratch = Vec::new();
        bins.swap_bin(0, &mut scratch);
        assert_eq!(scratch, vec![1, 2]);
        assert_eq!(bins.len_of(0), 0);
        scratch.clear();
        bins.push(0, 3);
        bins.swap_bin(0, &mut scratch);
        assert_eq!(scratch, vec![3]);
        bins.swap_bin(42, &mut scratch); // out-of-range bucket is a no-op
        assert_eq!(scratch, vec![3]);
    }

    #[test]
    fn frontier_concurrent_appends_preserve_every_item() {
        let pool = Pool::new(4);
        let frontier = SharedFrontier::new(4000);
        pool.broadcast(|w| {
            let tid = w.tid() as VertexId;
            for i in 0..1000 {
                frontier.push(tid * 1000 + i);
            }
        });
        let mut items = frontier.to_vec();
        assert_eq!(items.len(), 4000);
        items.sort_unstable();
        items.dedup();
        assert_eq!(items.len(), 4000, "appends must not overwrite each other");
    }

    #[test]
    fn frontier_reset_cycles() {
        let frontier = SharedFrontier::new(8);
        frontier.append(&[1, 2, 3]);
        assert_eq!(frontier.len(), 3);
        assert_eq!(frontier.get(1), 2);
        frontier.reset();
        assert!(frontier.is_empty());
        frontier.append(&[9]);
        assert_eq!(frontier.to_vec(), vec![9]);
        assert_eq!(frontier.capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn frontier_overflow_panics() {
        let frontier = SharedFrontier::new(2);
        frontier.append(&[1, 2, 3]);
    }

    #[test]
    fn empty_append_is_noop() {
        let frontier = SharedFrontier::new(0);
        frontier.append(&[]);
        assert!(frontier.is_empty());
    }

    #[test]
    fn copy_into_reuses_destination() {
        let frontier = SharedFrontier::new(16);
        frontier.append(&[4, 5, 6]);
        let mut out = Vec::with_capacity(16);
        let ptr = out.as_ptr();
        frontier.copy_into(&mut out);
        assert_eq!(out, vec![4, 5, 6]);
        frontier.reset();
        frontier.append(&[7]);
        frontier.copy_into(&mut out);
        assert_eq!(out, vec![7]);
        assert_eq!(out.as_ptr(), ptr, "copy_into must reuse capacity");
    }
}
