//! Eager bucketing: thread-local bins and the shared global frontier.
//!
//! In the eager strategy (paper Figure 6) each thread owns a `LocalBins`
//! instance created *inside* the parallel region — bucket insertions are
//! plain unsynchronized pushes. Per round, threads agree on the minimum
//! non-empty bucket across all bins and copy their local entries for that
//! bucket into a [`SharedFrontier`] ("copying local buckets into a global
//! bucket helps redistribute the work among threads", §3.2).

use crossbeam::utils::CachePadded;
use priograph_parallel::shared::DisjointSlice;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

type VertexId = u32;

/// Per-thread bucket array indexed by (non-negative) bucket id.
///
/// Mirrors GAPBS's `vector<vector<uint>> local_bins`, including on-demand
/// growth (`local_bins.resize(dest_bin + 1)`, paper Figure 9(c)).
#[derive(Debug, Default)]
pub struct LocalBins {
    bins: Vec<Vec<VertexId>>,
    /// Total pushes, for eager-vs-lazy insert accounting (paper Table 7).
    pushes: u64,
}

impl LocalBins {
    /// Creates an empty bin set.
    pub fn new() -> Self {
        LocalBins::default()
    }

    /// Appends `v` to the bin for `bucket`.
    #[inline]
    pub fn push(&mut self, bucket: usize, v: VertexId) {
        if bucket >= self.bins.len() {
            self.bins.resize_with(bucket + 1, Vec::new);
        }
        self.bins[bucket].push(v);
        self.pushes += 1;
    }

    /// Number of vertices waiting in `bucket`.
    #[inline]
    pub fn len_of(&self, bucket: usize) -> usize {
        self.bins.get(bucket).map_or(0, Vec::len)
    }

    /// Removes and returns the contents of `bucket`.
    #[inline]
    pub fn take(&mut self, bucket: usize) -> Vec<VertexId> {
        if bucket < self.bins.len() {
            std::mem::take(&mut self.bins[bucket])
        } else {
            Vec::new()
        }
    }

    /// Smallest non-empty bucket id at or after `from`.
    pub fn min_nonempty_from(&self, from: usize) -> Option<usize> {
        (from..self.bins.len()).find(|&b| !self.bins[b].is_empty())
    }

    /// Total pushes so far.
    pub fn total_pushes(&self) -> u64 {
        self.pushes
    }

    /// True if no bucket holds any vertex.
    pub fn is_empty(&self) -> bool {
        self.bins.iter().all(Vec::is_empty)
    }
}

/// A fixed-capacity frontier shared by all threads of a parallel region.
///
/// Writes go through [`SharedFrontier::append`], which claims a range with a
/// single `fetch_add` and then writes without further synchronization (the
/// copy-out step of paper Figure 6 line 8). Reads must not overlap writes —
/// the engines separate the two phases with barriers.
pub struct SharedFrontier {
    data: DisjointSlice<VertexId>,
    len: CachePadded<AtomicUsize>,
}

impl fmt::Debug for SharedFrontier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedFrontier")
            .field("len", &self.len())
            .field("capacity", &self.data.len())
            .finish()
    }
}

impl SharedFrontier {
    /// Allocates a frontier able to hold `capacity` vertices.
    pub fn new(capacity: usize) -> Self {
        SharedFrontier {
            data: DisjointSlice::new(capacity, 0),
            len: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Current number of vertices.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// True if the frontier holds no vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum capacity.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Empties the frontier. Must run while no thread is appending or
    /// reading (between barriers).
    pub fn reset(&self) {
        self.len.store(0, Ordering::Release);
    }

    /// Appends `items`, claiming a contiguous range atomically.
    ///
    /// # Panics
    ///
    /// Panics if capacity would be exceeded.
    pub fn append(&self, items: &[VertexId]) {
        if items.is_empty() {
            return;
        }
        let start = self.len.fetch_add(items.len(), Ordering::AcqRel);
        assert!(
            start + items.len() <= self.data.len(),
            "frontier capacity {} exceeded",
            self.data.len()
        );
        for (i, &v) in items.iter().enumerate() {
            self.data.write(start + i, v);
        }
    }

    /// Appends a single vertex.
    pub fn push(&self, v: VertexId) {
        self.append(std::slice::from_ref(&v));
    }

    /// Reads the vertex at `index < len()`. Must not race with appends.
    #[inline]
    pub fn get(&self, index: usize) -> VertexId {
        debug_assert!(index < self.len());
        self.data.read(index)
    }

    /// Copies the live contents out (for tests and stats).
    pub fn to_vec(&self) -> Vec<VertexId> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priograph_parallel::Pool;

    #[test]
    fn local_bins_push_take_roundtrip() {
        let mut bins = LocalBins::new();
        bins.push(3, 10);
        bins.push(3, 11);
        bins.push(0, 12);
        assert_eq!(bins.len_of(3), 2);
        assert_eq!(bins.len_of(7), 0);
        assert_eq!(bins.take(3), vec![10, 11]);
        assert_eq!(bins.len_of(3), 0);
        assert_eq!(bins.total_pushes(), 3);
        assert!(!bins.is_empty());
        assert_eq!(bins.take(0), vec![12]);
        assert!(bins.is_empty());
    }

    #[test]
    fn min_nonempty_scans_forward() {
        let mut bins = LocalBins::new();
        bins.push(5, 1);
        bins.push(9, 2);
        assert_eq!(bins.min_nonempty_from(0), Some(5));
        assert_eq!(bins.min_nonempty_from(6), Some(9));
        assert_eq!(bins.min_nonempty_from(10), None);
        let empty = LocalBins::new();
        assert_eq!(empty.min_nonempty_from(0), None);
    }

    #[test]
    fn take_beyond_allocated_is_empty() {
        let mut bins = LocalBins::new();
        assert!(bins.take(42).is_empty());
    }

    #[test]
    fn frontier_concurrent_appends_preserve_every_item() {
        let pool = Pool::new(4);
        let frontier = SharedFrontier::new(4000);
        pool.broadcast(|w| {
            let tid = w.tid() as VertexId;
            for i in 0..1000 {
                frontier.push(tid * 1000 + i);
            }
        });
        let mut items = frontier.to_vec();
        assert_eq!(items.len(), 4000);
        items.sort_unstable();
        items.dedup();
        assert_eq!(items.len(), 4000, "appends must not overwrite each other");
    }

    #[test]
    fn frontier_reset_cycles() {
        let frontier = SharedFrontier::new(8);
        frontier.append(&[1, 2, 3]);
        assert_eq!(frontier.len(), 3);
        assert_eq!(frontier.get(1), 2);
        frontier.reset();
        assert!(frontier.is_empty());
        frontier.append(&[9]);
        assert_eq!(frontier.to_vec(), vec![9]);
        assert_eq!(frontier.capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn frontier_overflow_panics() {
        let frontier = SharedFrontier::new(2);
        frontier.append(&[1, 2, 3]);
    }

    #[test]
    fn empty_append_is_noop() {
        let frontier = SharedFrontier::new(0);
        frontier.append(&[]);
        assert!(frontier.is_empty());
    }
}
