//! Julienne-style lazy bucket queue with a materialized bucket window.
//!
//! Only [`DEFAULT_OPEN_BUCKETS`](crate::DEFAULT_OPEN_BUCKETS)-many buckets are
//! materialized; everything farther away waits in a single overflow bucket
//! that is re-bucketed when the window is exhausted (paper §5.1: "only
//! materialize a few buckets, and keep vertices outside of the current range
//! in an overflow bucket").
//!
//! This implementation uses the paper's *improved* interface: priorities are
//! read straight from a shared priority vector (plus the coarsening Δ)
//! instead of calling a user lambda per vertex — eliminating the per-call
//! overhead §6.2 measures against original Julienne.
//!
//! # Zero-allocation round protocol
//!
//! Steady-state rounds take no lock and allocate nothing:
//!
//! * [`LazyBucketQueue::next_bucket_into`] fills a caller-owned reusable
//!   frontier vector, filtering stale entries through per-worker buffers
//!   merged by scan compaction
//!   ([`filter_map_compact_into`](priograph_parallel::scan::filter_map_compact_into)),
//!   and hands each drained bucket's capacity back to its slot;
//! * [`LazyBucketQueue::bulk_update`] classifies vertices into per-worker
//!   `(bucket, vertex)` buffers the queue owns across rounds, merges them
//!   with the same compaction, and places serially.
//!
//! Every buffer is cleared — never dropped — at the end of a round, so once
//! capacities have warmed up the merge path is lock-free and allocation-free
//! (the overhead paper §3.1 attributes to lazy bucketing, minimized).

use crate::priority_map::PriorityMap;
use priograph_parallel::scan::filter_map_compact_into;
use priograph_parallel::shared::WorkerLocal;
use priograph_parallel::Pool;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Vertex identifier (mirrors `priograph_graph::VertexId` without the dep).
type VertexId = u32;

/// Reusable per-round scratch owned by the queue: per-worker pipeline
/// buffers plus the merged classification output, all cleared (capacity
/// retained) after every use.
#[derive(Default)]
struct RoundWorkspace {
    /// Per-worker `(bucket, vertex)` buffers for `bulk_update`.
    pairs: WorkerLocal<Vec<(i64, VertexId)>>,
    /// Merged classification output of `bulk_update`.
    classified: Vec<(i64, VertexId)>,
    /// Per-worker keep buffers for the extraction staleness filter.
    kept: WorkerLocal<Vec<VertexId>>,
}

/// A lazy bucket queue over a shared atomic priority vector.
///
/// Entries may go stale (the vertex has since moved to another bucket);
/// extraction filters them by recomputing the bucket from the *current*
/// priority, and deduplicates via per-vertex extraction stamps.
///
/// Monotonicity contract: once a bucket has been returned, priority updates
/// must map vertices to that bucket or later (paper §2 — priorities change
/// monotonically). Violations are clamped to the last returned bucket.
///
/// # Example
///
/// ```
/// use priograph_buckets::{BucketOrder, LazyBucketQueue, PriorityMap};
/// use priograph_parallel::Pool;
/// use std::sync::atomic::AtomicI64;
/// use std::sync::Arc;
///
/// // Three vertices with priorities 0, 5, 9; Δ = 4 coarsens them into
/// // buckets 0, 1, 2.
/// let priorities: Arc<[AtomicI64]> =
///     [0, 5, 9].into_iter().map(AtomicI64::new).collect();
/// let map = PriorityMap::new(BucketOrder::Increasing, 4);
/// let mut queue = LazyBucketQueue::new(priorities, map, 8);
/// queue.insert_initial(0..3);
///
/// let pool = Pool::new(2);
/// let (bucket, frontier) = queue.next_bucket(&pool).unwrap();
/// assert_eq!((bucket, frontier), (0, vec![0]));
/// let (bucket, frontier) = queue.next_bucket(&pool).unwrap();
/// assert_eq!((bucket, frontier), (1, vec![1]));
/// assert!(queue.next_bucket(&pool).is_some()); // vertex 2 in bucket 2
/// assert!(queue.next_bucket(&pool).is_none()); // drained
/// ```
pub struct LazyBucketQueue {
    priorities: Arc<[AtomicI64]>,
    map: PriorityMap,
    num_open: usize,
    /// Bucket id corresponding to `open[0]`.
    window_start: i64,
    /// Next bucket id to examine; moves backward when an insert lands before
    /// it (within the monotonicity contract this only happens before the
    /// first dequeue or at the current bucket).
    scan_pos: i64,
    /// The bucket most recently returned by `next_bucket` — the
    /// finalization floor used for clamping.
    last_returned: i64,
    open: Vec<Vec<VertexId>>,
    overflow: Vec<VertexId>,
    /// Last extraction round in which each vertex was returned.
    stamps: Box<[AtomicU64]>,
    round: u64,
    inserts: u64,
    ws: RoundWorkspace,
}

impl fmt::Debug for LazyBucketQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LazyBucketQueue")
            .field("scan_pos", &self.scan_pos)
            .field("window_start", &self.window_start)
            .field("num_open", &self.num_open)
            .field("overflow_len", &self.overflow.len())
            .field("inserts", &self.inserts)
            .finish()
    }
}

impl LazyBucketQueue {
    /// Creates an empty queue over `priorities`.
    ///
    /// # Panics
    ///
    /// Panics if `num_open` is 0.
    pub fn new(priorities: Arc<[AtomicI64]>, map: PriorityMap, num_open: usize) -> Self {
        assert!(num_open > 0, "need at least one open bucket");
        let stamps = (0..priorities.len()).map(|_| AtomicU64::new(0)).collect();
        LazyBucketQueue {
            priorities,
            map,
            num_open,
            window_start: 0,
            scan_pos: 0,
            last_returned: i64::MIN,
            open: (0..num_open).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            stamps,
            round: 0,
            inserts: 0,
            ws: RoundWorkspace::default(),
        }
    }

    /// The priority-to-bucket mapping in use.
    pub fn map(&self) -> PriorityMap {
        self.map
    }

    /// Bucket id most recently returned (`i64::MIN` before the first
    /// dequeue).
    pub fn current_bucket(&self) -> i64 {
        self.last_returned
    }

    /// Total single-vertex bucket insertions so far (paper Table 7 contrasts
    /// this count between eager and lazy strategies).
    pub fn total_inserts(&self) -> u64 {
        self.inserts
    }

    /// Inserts every vertex whose current priority is non-null.
    ///
    /// Positions the window at the minimum occupied bucket. Used to seed
    /// k-core (all vertices) and SSSP (just the source).
    pub fn insert_initial<I>(&mut self, vertices: I)
    where
        I: IntoIterator<Item = VertexId>,
    {
        let vertices: Vec<VertexId> = vertices.into_iter().collect();
        let min_bucket = vertices.iter().filter_map(|&v| self.bucket_now(v)).min();
        if let Some(b) = min_bucket {
            self.window_start = b;
            self.scan_pos = b;
        }
        for v in vertices {
            self.insert(v);
        }
    }

    /// Current bucket of `v` per the live priority vector.
    #[inline]
    fn bucket_now(&self, v: VertexId) -> Option<i64> {
        self.map
            .bucket_of(self.priorities[v as usize].load(Ordering::Relaxed))
    }

    /// Clamps a bucket to the finalization floor.
    #[inline]
    fn clamp(&self, bucket: i64) -> i64 {
        bucket.max(self.last_returned)
    }

    /// Inserts `v` according to its current priority (no-op on null).
    pub fn insert(&mut self, v: VertexId) {
        let Some(bucket) = self.bucket_now(v) else {
            return;
        };
        self.inserts += 1;
        self.place(v, self.clamp(bucket));
    }

    /// Stores `v` at `bucket` (already clamped), adjusting the scan position.
    fn place(&mut self, v: VertexId, bucket: i64) {
        self.scan_pos = self.scan_pos.min(bucket);
        let slot = bucket - self.window_start;
        if (0..self.num_open as i64).contains(&slot) {
            self.open[slot as usize].push(v);
        } else {
            self.overflow.push(v);
        }
    }

    /// Bulk re-bucketing of `vertices` after a round of priority updates —
    /// the `bulkUpdateBuckets` of paper Figure 5 line 13.
    ///
    /// Bucket targets are computed in parallel into the queue's per-worker
    /// pipeline buffers and merged with scan compaction — no lock, and no
    /// allocation once the reused buffers have warmed up.
    pub fn bulk_update(&mut self, pool: &Pool, vertices: &[VertexId]) {
        if vertices.len() < 2048 || pool.num_threads() == 1 {
            for &v in vertices {
                self.insert(v);
            }
            return;
        }
        self.ws.pairs.ensure(pool.num_threads());
        let mut ws = std::mem::take(&mut self.ws);
        {
            let map = self.map;
            let floor = self.last_returned;
            let priorities = &self.priorities;
            filter_map_compact_into(
                pool,
                vertices,
                |&v| {
                    map.bucket_of(priorities[v as usize].load(Ordering::Relaxed))
                        .map(|b| (b.max(floor), v))
                },
                &mut ws.pairs,
                &mut ws.classified,
            );
        }
        for &(bucket, v) in &ws.classified {
            self.inserts += 1;
            self.place(v, bucket);
        }
        ws.classified.clear();
        self.ws = ws;
    }

    /// Extracts the next non-empty bucket: returns its id and the
    /// deduplicated, still-valid vertices (paper's `dequeueReadySet`).
    ///
    /// Convenience wrapper over [`LazyBucketQueue::next_bucket_into`] that
    /// allocates a fresh frontier per call; hot loops should hold a reusable
    /// vector and call `next_bucket_into` instead.
    pub fn next_bucket(&mut self, pool: &Pool) -> Option<(i64, Vec<VertexId>)> {
        let mut out = Vec::new();
        self.next_bucket_into(pool, &mut out).map(|b| (b, out))
    }

    /// Extracts the next non-empty bucket into the caller's reusable
    /// frontier vector (cleared first), returning the bucket id, or `None`
    /// when no bucket holds a live vertex — the `finished()` condition of
    /// the algorithm language.
    ///
    /// Steady-state calls perform no allocation: the staleness filter runs
    /// through the queue's per-worker buffers, and each drained bucket's
    /// vector capacity is handed back to its window slot.
    pub fn next_bucket_into(&mut self, pool: &Pool, out: &mut Vec<VertexId>) -> Option<i64> {
        out.clear();
        loop {
            if self.scan_pos < self.window_start {
                // An insert landed before the window (only possible before
                // the first dequeue): rebuild the window around it.
                if !self.rewindow() {
                    return None;
                }
            }
            while self.scan_pos - self.window_start < self.num_open as i64 {
                let slot = (self.scan_pos - self.window_start) as usize;
                if self.open[slot].is_empty() {
                    self.scan_pos += 1;
                    continue;
                }
                let mut raw = std::mem::take(&mut self.open[slot]);
                self.round += 1;
                self.filter_ready_into(pool, &raw, out);
                // Hand the drained bucket's capacity back to its slot so the
                // next round's inserts push into warm storage.
                raw.clear();
                self.open[slot] = raw;
                if !out.is_empty() {
                    self.last_returned = self.scan_pos;
                    return Some(self.scan_pos);
                }
                // All entries were stale; the slot is now empty, loop advances.
            }
            if self.overflow.is_empty() {
                return None;
            }
            if !self.rewindow() {
                return None;
            }
        }
    }

    /// Rebuilds the window around the minimum live bucket across all stored
    /// entries. Returns `false` when nothing live remains.
    fn rewindow(&mut self) -> bool {
        let mut items: Vec<VertexId> = std::mem::take(&mut self.overflow);
        for slot in &mut self.open {
            items.append(slot);
        }
        let min_bucket = items
            .iter()
            .filter_map(|&v| self.bucket_now(v))
            .map(|b| self.clamp(b))
            .min();
        let Some(min_bucket) = min_bucket else {
            return false; // everything stored had null priority
        };
        self.window_start = min_bucket;
        self.scan_pos = min_bucket;
        for v in items {
            if let Some(b) = self.bucket_now(v) {
                let bucket = self.clamp(b);
                let slot = bucket - self.window_start;
                if (0..self.num_open as i64).contains(&slot) {
                    self.open[slot as usize].push(v);
                } else {
                    self.overflow.push(v);
                }
            }
        }
        true
    }

    /// Drops stale entries (vertex no longer maps to the candidate bucket)
    /// and duplicates (same vertex inserted in several earlier rounds),
    /// compacting the survivors into `out` via the per-worker pipeline.
    fn filter_ready_into(&mut self, pool: &Pool, raw: &[VertexId], out: &mut Vec<VertexId>) {
        self.ws.kept.ensure(pool.num_threads());
        let round = self.round;
        let candidate = self.scan_pos;
        let floor = self.last_returned;
        let map = self.map;
        let priorities = &self.priorities;
        let stamps = &self.stamps;
        filter_map_compact_into(
            pool,
            raw,
            |&v| {
                match map.bucket_of(priorities[v as usize].load(Ordering::Relaxed)) {
                    // With monotone priorities an entry whose recomputed
                    // bucket moved past the candidate was re-inserted there;
                    // a mismatch marks this copy stale.
                    Some(b) if b.max(floor) == candidate => {
                        (stamps[v as usize].swap(round, Ordering::Relaxed) != round).then_some(v)
                    }
                    _ => None,
                }
            },
            &mut self.ws.kept,
            out,
        );
    }

    /// Capacities of the reusable round buffers, for tests asserting that
    /// steady-state rounds reuse rather than reallocate: per-worker pipeline
    /// buffer capacity, merged classification capacity, and the capacity
    /// currently parked in the open window slots.
    #[doc(hidden)]
    pub fn workspace_capacities(&mut self) -> (usize, usize, usize) {
        let worker: usize = self
            .ws
            .pairs
            .iter_mut()
            .map(|b| b.capacity())
            .sum::<usize>()
            + self.ws.kept.iter_mut().map(|b| b.capacity()).sum::<usize>();
        let open: usize = self.open.iter().map(Vec::capacity).sum();
        (worker, self.ws.classified.capacity(), open)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority_map::{BucketOrder, NULL_PRIORITY};
    use priograph_parallel::atomics::atomic_vec;

    fn queue_fixture(pri: &[i64]) -> Arc<[AtomicI64]> {
        pri.iter().map(|&p| AtomicI64::new(p)).collect()
    }

    #[test]
    fn dequeues_in_priority_order() {
        let pool = Pool::new(1);
        let pri = queue_fixture(&[5, 1, 3, 1, NULL_PRIORITY]);
        let map = PriorityMap::new(BucketOrder::Increasing, 1);
        let mut q = LazyBucketQueue::new(pri.clone(), map, 8);
        q.insert_initial(0..5);
        let (b1, mut v1) = q.next_bucket(&pool).unwrap();
        v1.sort_unstable();
        assert_eq!((b1, v1), (1, vec![1, 3]));
        let (b2, v2) = q.next_bucket(&pool).unwrap();
        assert_eq!((b2, v2), (3, vec![2]));
        let (b3, v3) = q.next_bucket(&pool).unwrap();
        assert_eq!((b3, v3), (5, vec![0]));
        assert!(q.next_bucket(&pool).is_none());
    }

    #[test]
    fn null_priority_vertices_never_appear() {
        let pool = Pool::new(1);
        let pri = queue_fixture(&[NULL_PRIORITY; 3]);
        let map = PriorityMap::new(BucketOrder::Increasing, 1);
        let mut q = LazyBucketQueue::new(pri.clone(), map, 4);
        q.insert_initial(0..3);
        assert!(q.next_bucket(&pool).is_none());
        assert_eq!(q.total_inserts(), 0);
    }

    #[test]
    fn stale_entries_are_filtered() {
        let pool = Pool::new(1);
        let pri = queue_fixture(&[10, 10, 1]);
        let map = PriorityMap::new(BucketOrder::Increasing, 1);
        let mut q = LazyBucketQueue::new(pri.clone(), map, 64);
        q.insert_initial(0..3);
        assert_eq!(q.next_bucket(&pool).unwrap(), (1, vec![2]));
        // Processing bucket 1 improves vertex 1's priority; it is re-inserted
        // at its new (still >= current) bucket.
        pri[1].store(3, Ordering::Relaxed);
        q.insert(1);
        let (b, v) = q.next_bucket(&pool).unwrap();
        assert_eq!((b, v), (3, vec![1]));
        // The stale copy of vertex 1 in bucket 10 is dropped.
        let (b, v) = q.next_bucket(&pool).unwrap();
        assert_eq!((b, v), (10, vec![0]));
        assert!(q.next_bucket(&pool).is_none());
    }

    #[test]
    fn duplicate_insertions_dequeue_once() {
        let pool = Pool::new(1);
        let pri = queue_fixture(&[2]);
        let map = PriorityMap::new(BucketOrder::Increasing, 1);
        let mut q = LazyBucketQueue::new(pri.clone(), map, 8);
        q.insert(0);
        q.insert(0);
        q.insert(0);
        let (_, v) = q.next_bucket(&pool).unwrap();
        assert_eq!(v, vec![0]);
        assert!(q.next_bucket(&pool).is_none());
        assert_eq!(q.total_inserts(), 3);
    }

    #[test]
    fn overflow_rebuckets_when_window_exhausted() {
        let pool = Pool::new(1);
        // Priorities far beyond a 4-bucket window.
        let pri = queue_fixture(&[0, 1000, 2000]);
        let map = PriorityMap::new(BucketOrder::Increasing, 1);
        let mut q = LazyBucketQueue::new(pri.clone(), map, 4);
        q.insert_initial(0..3);
        assert_eq!(q.next_bucket(&pool).unwrap(), (0, vec![0]));
        assert_eq!(q.next_bucket(&pool).unwrap(), (1000, vec![1]));
        assert_eq!(q.next_bucket(&pool).unwrap(), (2000, vec![2]));
        assert!(q.next_bucket(&pool).is_none());
    }

    #[test]
    fn coarsening_groups_priorities() {
        let pool = Pool::new(1);
        let pri = queue_fixture(&[0, 3, 4, 7, 8]);
        let map = PriorityMap::new(BucketOrder::Increasing, 4);
        let mut q = LazyBucketQueue::new(pri.clone(), map, 8);
        q.insert_initial(0..5);
        let (b, mut v) = q.next_bucket(&pool).unwrap();
        v.sort_unstable();
        assert_eq!((b, v), (0, vec![0, 1]));
        let (b, mut v) = q.next_bucket(&pool).unwrap();
        v.sort_unstable();
        assert_eq!((b, v), (1, vec![2, 3]));
        assert_eq!(q.next_bucket(&pool).unwrap(), (2, vec![4]));
    }

    #[test]
    fn decreasing_order_serves_highest_first() {
        let pool = Pool::new(1);
        let pri = queue_fixture(&[10, 50, 30]);
        let map = PriorityMap::new(BucketOrder::Decreasing, 1);
        let mut q = LazyBucketQueue::new(pri.clone(), map, 128);
        q.insert_initial(0..3);
        assert_eq!(q.next_bucket(&pool).unwrap().1, vec![1]);
        assert_eq!(q.next_bucket(&pool).unwrap().1, vec![2]);
        assert_eq!(q.next_bucket(&pool).unwrap().1, vec![0]);
    }

    #[test]
    fn vertex_reappears_after_new_round_update() {
        let pool = Pool::new(1);
        let pri = queue_fixture(&[0, 5]);
        let map = PriorityMap::new(BucketOrder::Increasing, 1);
        let mut q = LazyBucketQueue::new(pri.clone(), map, 16);
        q.insert_initial(0..2);
        assert_eq!(q.next_bucket(&pool).unwrap().1, vec![0]);
        // Round processing vertex 0 lowers vertex 1's priority.
        pri[1].store(2, Ordering::Relaxed);
        q.bulk_update(&pool, &[1]);
        let (b, v) = q.next_bucket(&pool).unwrap();
        assert_eq!((b, v), (2, vec![1]));
    }

    #[test]
    fn insert_after_drain_revives_the_queue() {
        // The facade use case: the queue is fully drained, then a manual
        // priority update schedules a new vertex.
        let pool = Pool::new(1);
        let pri = queue_fixture(&[NULL_PRIORITY, NULL_PRIORITY]);
        let map = PriorityMap::new(BucketOrder::Increasing, 1);
        let mut q = LazyBucketQueue::new(pri.clone(), map, 4);
        assert!(q.next_bucket(&pool).is_none());
        pri[1].store(6, Ordering::Relaxed);
        q.insert(1);
        assert_eq!(q.next_bucket(&pool).unwrap(), (6, vec![1]));
        assert!(q.next_bucket(&pool).is_none());
    }

    #[test]
    fn insert_before_window_rebuilds_it() {
        let pool = Pool::new(1);
        let pri = queue_fixture(&[100, 3]);
        let map = PriorityMap::new(BucketOrder::Increasing, 4);
        let mut q = LazyBucketQueue::new(pri.clone(), map, 4);
        // Window positioned at bucket 25 by the seed.
        q.insert_initial([0]);
        // Before any dequeue, a smaller-priority vertex arrives.
        q.insert(1);
        assert_eq!(q.next_bucket(&pool).unwrap(), (0, vec![1]));
        assert_eq!(q.next_bucket(&pool).unwrap(), (25, vec![0]));
    }

    #[test]
    fn bulk_update_parallel_matches_serial() {
        let pool = Pool::new(4);
        let n = 10_000;
        let values: Vec<i64> = (0..n as i64).map(|i| (i * 17) % 999).collect();
        let pri_a: Arc<[AtomicI64]> = Arc::from(atomic_vec(n, 0));
        let pri_b: Arc<[AtomicI64]> = Arc::from(atomic_vec(n, 0));
        for i in 0..n {
            pri_a[i].store(values[i], Ordering::Relaxed);
            pri_b[i].store(values[i], Ordering::Relaxed);
        }
        let map = PriorityMap::new(BucketOrder::Increasing, 8);
        let vertices: Vec<VertexId> = (0..n as VertexId).collect();

        let mut qa = LazyBucketQueue::new(pri_a.clone(), map, 32);
        qa.bulk_update(&pool, &vertices); // parallel path

        let serial_pool = Pool::new(1);
        let mut qb = LazyBucketQueue::new(pri_b.clone(), map, 32);
        qb.bulk_update(&serial_pool, &vertices); // serial path

        loop {
            let a = qa.next_bucket(&pool).map(|(b, mut v)| {
                v.sort_unstable();
                (b, v)
            });
            let b = qb.next_bucket(&serial_pool).map(|(b, mut v)| {
                v.sort_unstable();
                (b, v)
            });
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn steady_state_rounds_reuse_buffers() {
        // Acceptance check for the zero-allocation round protocol: after a
        // warm-up pass, repeated bulk_update/next_bucket_into rounds must
        // not grow any reusable buffer (no per-round `Vec` allocation) and
        // must keep filling the same caller-owned frontier storage.
        let pool = Pool::new(4);
        let n = 20_000usize; // big enough to engage every parallel path
        let pri: Arc<[AtomicI64]> = Arc::from(atomic_vec(n, 0));
        let map = PriorityMap::new(BucketOrder::Increasing, 1);
        let vertices: Vec<VertexId> = (0..n as VertexId).collect();
        let mut q = LazyBucketQueue::new(pri.clone(), map, 8);
        let mut frontier: Vec<VertexId> = Vec::new();

        // Road-style steady state: the *same* bucket is re-filled by
        // re-insertions round after round (monotone priorities allow
        // re-insertion at the current bucket).
        let bucket = 5i64;
        for v in &vertices {
            pri[*v as usize].store(bucket, Ordering::Relaxed);
        }
        let run_round = |q: &mut LazyBucketQueue, frontier: &mut Vec<VertexId>| {
            q.bulk_update(&pool, &vertices);
            assert_eq!(q.next_bucket_into(&pool, frontier), Some(bucket));
            assert_eq!(frontier.len(), n);
        };

        // Warm-up: first rounds grow the pipeline buffers and window slots.
        run_round(&mut q, &mut frontier);
        run_round(&mut q, &mut frontier);
        let warm = q.workspace_capacities();
        let frontier_ptr = frontier.as_ptr();
        let frontier_cap = frontier.capacity();
        assert!(warm.0 > 0, "parallel rounds must fill per-worker buffers");

        // Steady state: identical rounds must reuse every buffer.
        for round in 0..6 {
            run_round(&mut q, &mut frontier);
            assert_eq!(
                q.workspace_capacities(),
                warm,
                "round {round} must not grow the reusable round buffers"
            );
            assert_eq!(
                frontier.as_ptr(),
                frontier_ptr,
                "round {round} frontier realloc"
            );
            assert_eq!(frontier.capacity(), frontier_cap);
        }
    }

    #[test]
    fn returned_buckets_are_monotone() {
        let pool = Pool::new(1);
        let pri = queue_fixture(&[4, 2, 9, 2, 6]);
        let map = PriorityMap::new(BucketOrder::Increasing, 1);
        let mut q = LazyBucketQueue::new(pri.clone(), map, 4);
        q.insert_initial(0..5);
        let mut last = i64::MIN;
        while let Some((b, _)) = q.next_bucket(&pool) {
            assert!(b >= last);
            last = b;
            assert_eq!(q.current_bucket(), b);
        }
    }
}
