//! Direct round-trip coverage of the bucket structures — the eager
//! ([`LocalBins`] + [`SharedFrontier`]) and lazy ([`LazyBucketQueue`]) paths
//! exercised head-to-head, without going through SSSP.
//!
//! The invariant under test is the one the engines rely on: for the same
//! sequence of priority writes, both strategies must hand back the same
//! vertices at the same coarsened bucket, exactly once each (dedup), and
//! skip entries whose priority moved on (staleness).

use priograph_buckets::{
    BucketOrder, LazyBucketQueue, LocalBins, PriorityMap, SharedFrontier, NULL_PRIORITY,
};
use priograph_parallel::Pool;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

fn priorities(values: &[i64]) -> Arc<[AtomicI64]> {
    values.iter().map(|&p| AtomicI64::new(p)).collect()
}

/// Drains a lazy queue into `(bucket, sorted vertices)` rounds.
fn drain_lazy(queue: &mut LazyBucketQueue, pool: &Pool) -> Vec<(i64, Vec<u32>)> {
    let mut rounds = Vec::new();
    while let Some((bucket, mut ready)) = queue.next_bucket(pool) {
        ready.sort_unstable();
        rounds.push((bucket, ready));
    }
    rounds
}

/// Drains eager local bins into the same shape, pulling each round through a
/// shared frontier the way the eager engine's copy-out step does.
fn drain_eager(bins: &mut LocalBins, capacity: usize) -> Vec<(i64, Vec<u32>)> {
    let frontier = SharedFrontier::new(capacity);
    let mut rounds = Vec::new();
    let mut from = 0usize;
    while let Some(bucket) = bins.min_nonempty_from(from) {
        frontier.reset();
        frontier.append(&bins.take(bucket));
        let mut ready = frontier.to_vec();
        ready.sort_unstable();
        ready.dedup();
        rounds.push((bucket as i64, ready));
        from = bucket; // monotone: never revisit earlier buckets
    }
    rounds
}

#[test]
fn eager_and_lazy_agree_on_static_priorities() {
    let pool = Pool::new(2);
    let map = PriorityMap::new(BucketOrder::Increasing, 4);
    // Vertices 0..8 with priorities spreading over three buckets; vertex 7
    // is unreachable (null) and must never be handed out.
    let pri = [0, 3, 4, 7, 8, 11, 2, NULL_PRIORITY];
    let store = priorities(&pri);

    let mut lazy = LazyBucketQueue::new(Arc::clone(&store), map, 8);
    lazy.insert_initial(0..pri.len() as u32);

    let mut bins = LocalBins::new();
    for (v, &p) in pri.iter().enumerate() {
        if let Some(bucket) = map.bucket_of(p) {
            bins.push(bucket as usize, v as u32);
        }
    }

    let lazy_rounds = drain_lazy(&mut lazy, &pool);
    let eager_rounds = drain_eager(&mut bins, pri.len());
    assert_eq!(lazy_rounds, eager_rounds);
    assert_eq!(
        lazy_rounds,
        vec![(0, vec![0, 1, 6]), (1, vec![2, 3]), (2, vec![4, 5]),]
    );
}

#[test]
fn lazy_dedups_multiple_inserts_of_one_vertex() {
    let pool = Pool::new(1);
    let map = PriorityMap::new(BucketOrder::Increasing, 1);
    let store = priorities(&[5, NULL_PRIORITY]);
    let mut lazy = LazyBucketQueue::new(store, map, 4);

    // The same vertex relaxed three times in a round lands in the bucket
    // three times; dequeue must return it once.
    lazy.insert(0);
    lazy.insert(0);
    lazy.insert(0);
    assert_eq!(lazy.total_inserts(), 3);

    let rounds = drain_lazy(&mut lazy, &pool);
    assert_eq!(rounds, vec![(5, vec![0])]);
}

#[test]
fn lazy_skips_stale_entries_after_priority_decrease() {
    let pool = Pool::new(1);
    let map = PriorityMap::new(BucketOrder::Increasing, 1);
    let store = priorities(&[9, NULL_PRIORITY]);
    let mut lazy = LazyBucketQueue::new(Arc::clone(&store), map, 16);

    lazy.insert(0); // recorded at bucket 9
    store[0].store(2, Ordering::Relaxed); // a better path was found
    lazy.insert(0); // re-recorded at bucket 2

    // The bucket-9 copy is stale: the vertex must come out at 2 and only
    // at 2.
    let rounds = drain_lazy(&mut lazy, &pool);
    assert_eq!(rounds, vec![(2, vec![0])]);
}

#[test]
fn lazy_bulk_update_matches_singles() {
    let pool = Pool::new(2);
    let map = PriorityMap::new(BucketOrder::Increasing, 8);
    let n = 64u32;
    let values: Vec<i64> = (0..n as i64).map(|v| (v * 7) % 100).collect();

    let mut singles = LazyBucketQueue::new(priorities(&values), map, 8);
    singles.insert_initial(0..n);

    let mut bulk = LazyBucketQueue::new(priorities(&values), map, 8);
    bulk.insert_initial(0..1); // seed the window
    let rest: Vec<u32> = (1..n).collect();
    bulk.bulk_update(&pool, &rest);

    assert_eq!(
        drain_lazy(&mut singles, &pool),
        drain_lazy(&mut bulk, &pool)
    );
}

#[test]
fn local_bins_take_then_min_advances() {
    let mut bins = LocalBins::new();
    bins.push(3, 30);
    bins.push(1, 10);
    bins.push(3, 31);
    assert_eq!(bins.total_pushes(), 3);
    assert_eq!(bins.min_nonempty_from(0), Some(1));
    assert_eq!(bins.take(1), vec![10]);
    assert_eq!(bins.len_of(1), 0);
    assert_eq!(bins.min_nonempty_from(0), Some(3));
    assert_eq!(bins.take(3), vec![30, 31]);
    assert!(bins.is_empty());
    assert_eq!(bins.min_nonempty_from(0), None);
    // Taking an out-of-range bucket is a harmless empty read.
    assert_eq!(bins.take(99), Vec::<u32>::new());
}

#[test]
fn shared_frontier_append_and_reset() {
    let frontier = SharedFrontier::new(8);
    frontier.append(&[1, 2, 3]);
    frontier.push(4);
    assert_eq!(frontier.len(), 4);
    let mut got = frontier.to_vec();
    got.sort_unstable();
    assert_eq!(got, vec![1, 2, 3, 4]);

    frontier.reset();
    assert!(frontier.is_empty());
    frontier.append(&[9]);
    assert_eq!(frontier.to_vec(), vec![9]);
}

#[test]
fn decreasing_order_drains_highest_priority_first() {
    // SetCover-style: higher priority first, mapped onto increasing bucket
    // ids by BucketOrder::Decreasing.
    let pool = Pool::new(1);
    let map = PriorityMap::new(BucketOrder::Decreasing, 1);
    let store = priorities(&[3, 10, 7]);
    let mut lazy = LazyBucketQueue::new(store, map, 32);
    lazy.insert_initial(0..3);

    let rounds = drain_lazy(&mut lazy, &pool);
    let drained: Vec<Vec<u32>> = rounds.iter().map(|(_, vs)| vs.clone()).collect();
    assert_eq!(drained, vec![vec![1], vec![2], vec![0]]);
}
