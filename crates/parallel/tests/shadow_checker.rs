//! End-to-end tests for the `check-shadow` race detector: legal pipelines
//! stay silent, a seeded overlapping write trips a panic that names both
//! workers and both byte ranges.

#![cfg(feature = "check-shadow")]

use priograph_parallel::scan::{compact_into, filter_map_compact_into};
use priograph_parallel::shared::{SliceWriter, WorkerLocal};
use priograph_parallel::Pool;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};

/// Extracts the panic message whichever payload type `panic!` produced.
fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = err.downcast_ref::<String>() {
        return s.clone();
    }
    if let Some(s) = err.downcast_ref::<&str>() {
        return (*s).to_string();
    }
    panic!("panic payload was not a string");
}

#[test]
fn seeded_overlap_names_both_workers_and_ranges() {
    let pool = Pool::new(2);
    let mut data = vec![0u32; 64];
    let base = data.as_mut_ptr() as usize;
    let writer = SliceWriter::new(&mut data);
    // Hand off between the two writes so the *memory* accesses never race
    // (release/acquire orders them); only the claimed ranges overlap, which
    // is exactly the protocol violation the checker must flag.
    let turn = AtomicBool::new(false);
    let err = catch_unwind(AssertUnwindSafe(|| {
        pool.broadcast(|w| match w.tid() {
            0 => {
                writer.write_copy(0, &[1u32; 40]);
                turn.store(true, Ordering::Release);
            }
            _ => {
                while !turn.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                writer.write_copy(24, &[2u32; 40]);
            }
        });
    }))
    .unwrap_err();
    let msg = panic_message(err);
    assert!(msg.contains("shadow checker"), "{msg}");
    assert!(msg.contains("overlapping unsynchronized writes"), "{msg}");
    assert!(msg.contains("worker 0"), "{msg}");
    assert!(msg.contains("worker 1"), "{msg}");
    assert!(msg.contains("SliceWriter::write_copy"), "{msg}");
    // Ranges are reported in bytes: 40 u32s from offset 0 and from offset 24.
    assert!(
        msg.contains(&format!("{:#x}..{:#x}", base, base + 160)),
        "{msg}"
    );
    assert!(
        msg.contains(&format!("{:#x}..{:#x}", base + 96, base + 96 + 160)),
        "{msg}"
    );
}

#[test]
fn barrier_separated_reuse_of_a_range_is_legal() {
    let pool = Pool::new(2);
    let mut data = vec![0u32; 64];
    {
        let writer = SliceWriter::new(&mut data);
        // Two different workers write the SAME range, but in different
        // barrier-delimited phases — the legal reuse pattern (e.g. a
        // frontier reset between rounds). The barrier drain must keep the
        // windows apart.
        pool.broadcast(|w| {
            if w.tid() == 0 {
                writer.write_copy(0, &[7u32; 64]);
            }
            w.barrier();
            if w.tid() == 1 {
                writer.write_copy(0, &[9u32; 64]);
            }
        });
    }
    assert!(data.iter().all(|&v| v == 9));
}

#[test]
fn cross_tid_worker_local_access_trips() {
    let pool = Pool::new(2);
    let locals: WorkerLocal<Vec<u32>> = WorkerLocal::new(2);
    let err = catch_unwind(AssertUnwindSafe(|| {
        pool.broadcast(|w| {
            // Worker 1 mutates worker 0's slot — the owner-computes
            // protocol violation. (Worker 0 never touches the slot, so no
            // memory access actually races.)
            if w.tid() == 1 {
                locals.with_mut(0, |buf| buf.push(1));
            }
        });
    }))
    .unwrap_err();
    let msg = panic_message(err);
    assert!(msg.contains("worker 1 entered WorkerLocal slot 0"), "{msg}");
}

/// Minimal xorshift generator — keeps the property rounds deterministic
/// without pulling the vendored rand into this crate's dev-deps.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

#[test]
fn legal_pipeline_rounds_never_trip() {
    // Property-style sweep: across pool sizes, seeds, and rounds, the
    // zero-allocation pipeline obeys its disjointness protocol, so the
    // shadow checker must stay silent and results must match serial.
    for threads in [1, 2, 4] {
        let pool = Pool::new(threads);
        let mut locals: WorkerLocal<Vec<u64>> = WorkerLocal::new(pool.num_threads());
        let mut out = Vec::new();
        let mut rng = XorShift(0x9e37_79b9 + threads as u64);
        for _round in 0..5 {
            let items: Vec<u64> = (0..10_000).map(|_| rng.next() % 1000).collect();
            let kept = filter_map_compact_into(
                &pool,
                &items,
                |&v| (v % 3 == 0).then_some(v * 2),
                &mut locals,
                &mut out,
            );
            let expect: Vec<u64> = items
                .iter()
                .filter(|&&v| v % 3 == 0)
                .map(|v| v * 2)
                .collect();
            assert_eq!(kept, expect.len());
            assert_eq!(out, expect);
        }
    }
}

#[test]
fn compact_into_under_shadow_matches_serial() {
    let pool = Pool::new(4);
    let mut locals: WorkerLocal<Vec<u32>> = WorkerLocal::new(pool.num_threads());
    // Fill each worker's own slot inside a region (the legal fill phase),
    // then merge; large enough to take the parallel SliceWriter path.
    let locals_ref = &locals;
    pool.broadcast(|w| {
        locals_ref.with_mut(w.tid(), |buf| {
            buf.extend((0..2000u32).map(|i| w.tid() as u32 * 10_000 + i));
        });
    });
    let mut out = Vec::new();
    let total = compact_into(&pool, &mut locals, &mut out);
    assert_eq!(total, 8000);
    let expect: Vec<u32> = (0..4u32)
        .flat_map(|t| (0..2000).map(move |i| t * 10_000 + i))
        .collect();
    assert_eq!(out, expect);
}
