//! Dynamic chunk scheduling for loops inside broadcast regions.

use crossbeam::utils::CachePadded;
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A shared cursor handing out `grain`-sized chunks of `0..len`.
///
/// This is the `schedule(dynamic, grain)` primitive: threads inside a
/// [`crate::Pool::broadcast`] region repeatedly claim the next chunk until
/// the range is exhausted. The eager engine resets one cursor per round
/// (between barriers) instead of allocating a new one.
///
/// # Example
///
/// ```
/// use priograph_parallel::ChunkCursor;
///
/// let cursor = ChunkCursor::new(10, 4);
/// assert_eq!(cursor.next_chunk(), Some(0..4));
/// assert_eq!(cursor.next_chunk(), Some(4..8));
/// assert_eq!(cursor.next_chunk(), Some(8..10));
/// assert_eq!(cursor.next_chunk(), None);
/// ```
pub struct ChunkCursor {
    next: CachePadded<AtomicUsize>,
    len: AtomicUsize,
    grain: usize,
}

impl fmt::Debug for ChunkCursor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChunkCursor")
            .field("len", &self.len.load(Ordering::Relaxed))
            .field("grain", &self.grain)
            .finish()
    }
}

impl ChunkCursor {
    /// Creates a cursor over `0..len` with the given chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `grain` is 0.
    pub fn new(len: usize, grain: usize) -> Self {
        assert!(grain > 0, "chunk grain must be positive");
        ChunkCursor {
            next: CachePadded::new(AtomicUsize::new(0)),
            len: AtomicUsize::new(len),
            grain,
        }
    }

    /// Claims the next chunk, or `None` when the range is exhausted.
    pub fn next_chunk(&self) -> Option<Range<usize>> {
        let len = self.len.load(Ordering::Relaxed);
        let start = self.next.fetch_add(self.grain, Ordering::Relaxed);
        if start >= len {
            return None;
        }
        Some(start..(start + self.grain).min(len))
    }

    /// Rearms the cursor for a new range of `len` items.
    ///
    /// Callers must guarantee no thread is concurrently claiming chunks —
    /// in engine code this runs single-threaded between two barriers.
    pub fn reset(&self, len: usize) {
        self.len.store(len, Ordering::Relaxed);
        self.next.store(0, Ordering::Relaxed);
    }

    /// The configured chunk size.
    pub fn grain(&self) -> usize {
        self.grain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn chunks_tile_the_range_exactly() {
        let cursor = ChunkCursor::new(103, 10);
        let mut seen = [false; 103];
        while let Some(r) = cursor.next_chunk() {
            for i in r {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn empty_range_yields_nothing() {
        let cursor = ChunkCursor::new(0, 8);
        assert_eq!(cursor.next_chunk(), None);
    }

    #[test]
    fn reset_rearms_the_cursor() {
        let cursor = ChunkCursor::new(5, 8);
        assert_eq!(cursor.next_chunk(), Some(0..5));
        assert_eq!(cursor.next_chunk(), None);
        cursor.reset(3);
        assert_eq!(cursor.next_chunk(), Some(0..3));
        assert_eq!(cursor.next_chunk(), None);
    }

    #[test]
    fn concurrent_claims_never_overlap() {
        let cursor = Arc::new(ChunkCursor::new(10_000, 7));
        let seen: Arc<Vec<AtomicUsize>> =
            Arc::new((0..10_000).map(|_| AtomicUsize::new(0)).collect());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cursor = Arc::clone(&cursor);
            let seen = Arc::clone(&seen);
            handles.push(std::thread::spawn(move || {
                while let Some(r) = cursor.next_chunk() {
                    for i in r {
                        seen[i].fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(seen.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }
}
