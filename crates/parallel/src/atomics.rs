//! `atomicWriteMin`-style helpers used throughout the engines.
//!
//! The paper's generated code (Figure 9) relies on three primitives: an
//! atomic write-min over the distance array, compare-and-swap deduplication
//! flags, and relaxed atomic loads/stores for dense traversals. These helpers
//! centralize the CAS loops so engine code reads like the paper's pseudocode.

use std::sync::atomic::{AtomicI64, AtomicU8, Ordering};

/// Atomically lowers `cell` to `value` if `value` is smaller.
///
/// Returns `true` iff this call strictly lowered the stored value — the
/// "changed" flag the generated code uses to decide whether a vertex enters
/// a bucket (Figure 9(a) line 20, Figure 9(c) line 19).
///
/// # Example
///
/// ```
/// use std::sync::atomic::AtomicI64;
/// use priograph_parallel::atomics::write_min;
///
/// let d = AtomicI64::new(10);
/// assert!(write_min(&d, 7));
/// assert!(!write_min(&d, 9));
/// assert_eq!(d.into_inner(), 7);
/// ```
#[inline]
pub fn write_min(cell: &AtomicI64, value: i64) -> bool {
    let mut current = cell.load(Ordering::Relaxed);
    while value < current {
        match cell.compare_exchange_weak(current, value, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(actual) => current = actual,
        }
    }
    false
}

/// Atomically raises `cell` to `value` if `value` is larger.
///
/// Returns `true` iff this call strictly raised the stored value. Used by
/// `updatePriorityMax` for increasing-priority algorithms.
#[inline]
pub fn write_max(cell: &AtomicI64, value: i64) -> bool {
    let mut current = cell.load(Ordering::Relaxed);
    while value > current {
        match cell.compare_exchange_weak(current, value, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(actual) => current = actual,
        }
    }
    false
}

/// Atomically adds `delta` to `cell` but never lets the result cross `floor`
/// (for negative deltas) — the semantics of `updatePrioritySum(v, -1, k)` in
/// k-core, where a vertex's degree must not drop below the current core `k`
/// (paper Figure 10).
///
/// For negative `delta` the update is a pure *decrement*: cells already at or
/// below `floor` are left untouched (a vertex finalized at an earlier, lower
/// core must never be raised back to `k`). Returns the previous value when
/// the cell changed, `None` otherwise.
#[inline]
pub fn add_clamped(cell: &AtomicI64, delta: i64, floor: i64) -> Option<i64> {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        if delta < 0 && current <= floor {
            return None;
        }
        let target = if delta < 0 {
            (current + delta).max(floor)
        } else {
            current + delta
        };
        if target == current {
            return None;
        }
        match cell.compare_exchange_weak(current, target, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(prev) => return Some(prev),
            Err(actual) => current = actual,
        }
    }
}

/// One-shot claim flags, one byte per vertex, used for deduplication.
///
/// `try_claim` is the `CAS(dedup_flags[d], 0, 1)` of Figure 9(a) line 21: it
/// succeeds for exactly one contender per generation, ensuring each vertex is
/// appended to the output frontier once per round.
#[derive(Debug)]
pub struct ClaimFlags {
    flags: Box<[AtomicU8]>,
}

impl ClaimFlags {
    /// Creates `len` unclaimed flags.
    pub fn new(len: usize) -> Self {
        ClaimFlags {
            flags: (0..len).map(|_| AtomicU8::new(0)).collect(),
        }
    }

    /// Number of flags.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// True if there are no flags at all.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// Attempts to claim `index`; returns `true` for exactly one caller until
    /// the flag is released.
    #[inline]
    pub fn try_claim(&self, index: usize) -> bool {
        self.flags[index].load(Ordering::Relaxed) == 0
            && self.flags[index]
                .compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
    }

    /// True if `index` is currently claimed.
    pub fn is_claimed(&self, index: usize) -> bool {
        self.flags[index].load(Ordering::Relaxed) != 0
    }

    /// Releases a single flag.
    #[inline]
    pub fn release(&self, index: usize) {
        self.flags[index].store(0, Ordering::Relaxed);
    }

    /// Releases every flag (serially; used between rounds on small frontiers).
    pub fn release_all(&self) {
        for f in self.flags.iter() {
            f.store(0, Ordering::Relaxed);
        }
    }
}

/// Builds a fresh atomic vector initialized to `value`.
pub fn atomic_vec(len: usize, value: i64) -> Box<[AtomicI64]> {
    (0..len).map(|_| AtomicI64::new(value)).collect()
}

/// Copies an atomic vector into a plain `Vec<i64>` (relaxed loads).
pub fn snapshot(cells: &[AtomicI64]) -> Vec<i64> {
    cells.iter().map(|c| c.load(Ordering::Relaxed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn write_min_keeps_global_minimum_under_contention() {
        let cell = Arc::new(AtomicI64::new(i64::MAX));
        let mut handles = Vec::new();
        for t in 0..8 {
            let cell = Arc::clone(&cell);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000i64 {
                    write_min(&cell, i * 8 + t);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn write_min_reports_strict_improvement_only() {
        let cell = AtomicI64::new(5);
        assert!(!write_min(&cell, 5));
        assert!(!write_min(&cell, 6));
        assert!(write_min(&cell, 4));
    }

    #[test]
    fn write_max_mirrors_write_min() {
        let cell = AtomicI64::new(5);
        assert!(write_max(&cell, 9));
        assert!(!write_max(&cell, 9));
        assert!(!write_max(&cell, 2));
        assert_eq!(cell.into_inner(), 9);
    }

    #[test]
    fn add_clamped_respects_floor() {
        let cell = AtomicI64::new(10);
        assert_eq!(add_clamped(&cell, -3, 5), Some(10));
        assert_eq!(cell.load(Ordering::Relaxed), 7);
        assert_eq!(add_clamped(&cell, -3, 5), Some(7));
        assert_eq!(cell.load(Ordering::Relaxed), 5);
        // Already at the floor: no change.
        assert_eq!(add_clamped(&cell, -3, 5), None);
        assert_eq!(cell.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn add_clamped_never_raises_a_finalized_cell() {
        // A vertex finalized at core 3 must stay at 3 when later peels at
        // core 7 decrement its neighbors.
        let cell = AtomicI64::new(3);
        assert_eq!(add_clamped(&cell, -1, 7), None);
        assert_eq!(cell.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn add_clamped_supports_positive_delta() {
        let cell = AtomicI64::new(3);
        assert_eq!(add_clamped(&cell, 2, 0), Some(3));
        assert_eq!(cell.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn add_clamped_counts_every_decrement_under_contention() {
        let cell = Arc::new(AtomicI64::new(1000));
        let changed = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            let changed = Arc::clone(&changed);
            handles.push(std::thread::spawn(move || {
                for _ in 0..300 {
                    if add_clamped(&cell, -1, 0).is_some() {
                        changed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.load(Ordering::Relaxed), 0);
        assert_eq!(changed.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn claim_flags_admit_exactly_one_claimer() {
        let flags = Arc::new(ClaimFlags::new(64));
        let wins = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let flags = Arc::clone(&flags);
            let wins = Arc::clone(&wins);
            handles.push(std::thread::spawn(move || {
                for i in 0..64 {
                    if flags.try_claim(i) {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wins.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn claim_release_cycle() {
        let flags = ClaimFlags::new(4);
        assert!(flags.try_claim(2));
        assert!(flags.is_claimed(2));
        assert!(!flags.try_claim(2));
        flags.release(2);
        assert!(flags.try_claim(2));
        flags.release_all();
        assert!(!flags.is_claimed(2));
        assert_eq!(flags.len(), 4);
        assert!(!flags.is_empty());
    }

    #[test]
    fn snapshot_copies_values() {
        let v = atomic_vec(3, 7);
        v[1].store(9, Ordering::Relaxed);
        assert_eq!(snapshot(&v), vec![7, 9, 7]);
    }
}
