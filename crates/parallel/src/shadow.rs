//! Shadow-state race detection for the unsafe parallel core
//! (`--features check-shadow`).
//!
//! The zero-allocation frontier pipeline buys its speed with unsynchronized
//! writes whose disjointness is enforced *by convention*: prefix-sum ranges
//! for [`crate::shared::SliceWriter`], `fetch_add`-claimed ranges for
//! [`crate::shared::DisjointSlice::write_slice`], owner-computes slots for
//! [`crate::shared::WorkerLocal`]. This module turns a violation of that
//! convention — a silent overlapping-write data race — into a deterministic
//! panic naming both workers and both ranges.
//!
//! # Design
//!
//! Every [`crate::Pool`] owns one [`ShadowLog`]. While a thread participates
//! in a broadcast region, a thread-local holds `(Arc<ShadowLog>, tid)`;
//! instrumented write paths append `(tid, byte range)` claims to the log's
//! lock-free append-only slot array (a `fetch_add` cursor plus per-slot
//! publish flags). Claims are checked for cross-worker overlap and drained
//!
//! * at every region barrier — inside the **last arriver's** critical
//!   window, before the other participants are released, so a claim can
//!   never be confused with a claim from the next barrier-delimited phase
//!   (ranges are legitimately reused across phases, e.g. a frontier reset
//!   between rounds); and
//! * at the end of every broadcast, after all workers have finished.
//!
//! Violations found at a barrier are *recorded*, not raised: panicking on a
//! worker thread mid-region would strand the other participants in the
//! barrier and deadlock the pool. The pending violations are raised as one
//! panic on the broadcasting thread once the region has fully completed —
//! a safe point where every participant has returned.
//!
//! The log is fixed-capacity; claims past capacity inside one
//! barrier-delimited window are dropped (counted in
//! [`ShadowLog::dropped_claims`]) rather than blocking the hot path.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// Claims recordable per barrier-delimited window before claims are dropped.
const LOG_CAPACITY: usize = 1 << 16;

/// What kind of write path recorded a claim (diagnostics only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimKind {
    /// [`crate::shared::SliceWriter::write_copy`].
    SliceWriter,
    /// [`crate::shared::DisjointSlice::write_slice`].
    DisjointSlice,
}

impl ClaimKind {
    fn from_u8(v: u8) -> &'static str {
        match v {
            0 => "SliceWriter::write_copy",
            _ => "DisjointSlice::write_slice",
        }
    }
}

#[derive(Default)]
struct Slot {
    /// Set (Release) after the payload fields below are written.
    ready: AtomicBool,
    tid: AtomicUsize,
    /// First byte address of the claimed destination range.
    addr: AtomicUsize,
    /// Length of the claim in bytes (never 0).
    len: AtomicUsize,
    kind: AtomicU8,
}

/// The per-pool claim log and violation store. See the module docs.
pub struct ShadowLog {
    slots: Box<[Slot]>,
    /// Next free slot (may run past `slots.len()`; the excess is dropped).
    cursor: AtomicUsize,
    /// Claims dropped because a window overflowed `LOG_CAPACITY`.
    dropped: AtomicUsize,
    /// Barrier-delimited windows drained so far (diagnostics only).
    windows: AtomicUsize,
    /// Violations found at barriers, raised at the next safe point.
    violations: Mutex<Vec<String>>,
}

impl std::fmt::Debug for ShadowLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShadowLog")
            .field("claims", &self.cursor.load(Ordering::Relaxed))
            .field("windows", &self.windows.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for ShadowLog {
    fn default() -> Self {
        ShadowLog::new()
    }
}

impl ShadowLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        ShadowLog {
            slots: (0..LOG_CAPACITY).map(|_| Slot::default()).collect(),
            cursor: AtomicUsize::new(0),
            dropped: AtomicUsize::new(0),
            windows: AtomicUsize::new(0),
            violations: Mutex::new(Vec::new()),
        }
    }

    fn record(&self, tid: usize, addr: usize, len: usize, kind: ClaimKind) {
        if len == 0 {
            return;
        }
        let idx = self.cursor.fetch_add(1, Ordering::Relaxed);
        let Some(slot) = self.slots.get(idx) else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        slot.tid.store(tid, Ordering::Relaxed);
        slot.addr.store(addr, Ordering::Relaxed);
        slot.len.store(len, Ordering::Relaxed);
        slot.kind.store(kind as u8, Ordering::Relaxed);
        slot.ready.store(true, Ordering::Release);
    }

    /// Claims dropped so far because a window held more than `LOG_CAPACITY`
    /// writes — a coverage gap, not a correctness problem.
    pub fn dropped_claims(&self) -> usize {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Checks the current window's claims for cross-worker overlap and
    /// resets the log. Violations are recorded for the next safe point, not
    /// raised — this runs inside barriers.
    ///
    /// Must only be called while no participant can be recording: by the
    /// last arriver of a barrier (the others are spinning) or by the
    /// broadcaster after the completion wait.
    pub fn drain_check(&self) {
        let claimed = self.cursor.load(Ordering::Relaxed);
        if claimed == 0 {
            return;
        }
        let upto = claimed.min(self.slots.len());
        let mut claims: Vec<(usize, usize, usize, u8)> = Vec::with_capacity(upto);
        for slot in &self.slots[..upto] {
            if !slot.ready.load(Ordering::Acquire) {
                continue;
            }
            claims.push((
                slot.addr.load(Ordering::Relaxed),
                slot.len.load(Ordering::Relaxed),
                slot.tid.load(Ordering::Relaxed),
                slot.kind.load(Ordering::Relaxed),
            ));
        }
        let window = self.windows.fetch_add(1, Ordering::Relaxed);
        claims.sort_unstable();
        // Sweep the address-sorted claims with an active-interval set: a
        // claim overlaps exactly the still-active intervals once those
        // ending before it are retired. Legal (disjoint) workloads keep the
        // set near-empty, so the sweep is effectively linear. Same-worker
        // overlap is legal (a worker may rewrite its own range in a phase).
        let mut active: Vec<(usize, usize, usize, u8)> = Vec::new();
        let mut reported = 0usize;
        for &(b_addr, b_len, b_tid, b_kind) in &claims {
            active.retain(|&(a_addr, a_len, _, _)| a_addr + a_len > b_addr);
            for &(a_addr, a_len, a_tid, a_kind) in &active {
                if a_tid != b_tid && reported < 16 {
                    reported += 1;
                    self.violations.lock().push(format!(
                        "overlapping unsynchronized writes in window {window}: \
                         worker {a_tid} claimed {:#x}..{:#x} via {} while \
                         worker {b_tid} claimed {:#x}..{:#x} via {}",
                        a_addr,
                        a_addr + a_len,
                        ClaimKind::from_u8(a_kind),
                        b_addr,
                        b_addr + b_len,
                        ClaimKind::from_u8(b_kind),
                    ));
                }
            }
            active.push((b_addr, b_len, b_tid, b_kind));
        }
        for slot in &self.slots[..upto] {
            slot.ready.store(false, Ordering::Relaxed);
        }
        self.cursor.store(0, Ordering::Release);
    }

    /// Records a violation found by an instrumented access (deferred panic).
    pub fn report(&self, msg: String) {
        self.violations.lock().push(msg);
    }

    /// Drains the final window and panics if any violation was recorded.
    /// Called by the broadcasting thread after every worker has returned —
    /// the one place a panic cannot strand a participant.
    ///
    /// # Panics
    ///
    /// Panics with every recorded violation when the shadow checker found
    /// overlapping writes.
    pub fn finish_region(&self) {
        self.drain_check();
        let violations = std::mem::take(&mut *self.violations.lock());
        if !violations.is_empty() {
            panic!(
                "shadow checker detected {} violation(s):\n  {}",
                violations.len(),
                violations.join("\n  ")
            );
        }
    }
}

thread_local! {
    /// The log of the pool region this thread is currently participating
    /// in, with the thread's region tid. `None` outside regions — shadow
    /// checks only observe genuinely concurrent phases.
    static REGION: std::cell::RefCell<Option<(Arc<ShadowLog>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// Pool hook: this thread starts participating in a region as `tid`.
pub(crate) fn enter_region(log: Arc<ShadowLog>, tid: usize) {
    REGION.with(|r| *r.borrow_mut() = Some((log, tid)));
}

/// Pool hook: this thread left its region.
pub(crate) fn exit_region() {
    REGION.with(|r| *r.borrow_mut() = None);
}

/// Scheduler hook: temporarily detaches this thread from its region (e.g.
/// while a gang-barrier waiter runs a stolen interactive packet, whose
/// claims must not be attributed to the gang's current window). Pair with
/// [`resume_region`].
pub(crate) fn suspend_region() -> Option<(Arc<ShadowLog>, usize)> {
    REGION.with(|r| r.borrow_mut().take())
}

/// Scheduler hook: reattaches the region saved by [`suspend_region`].
pub(crate) fn resume_region(saved: Option<(Arc<ShadowLog>, usize)>) {
    REGION.with(|r| *r.borrow_mut() = saved);
}

/// The calling thread's region tid, if it is inside a pool region.
pub fn current_tid() -> Option<usize> {
    REGION.with(|r| r.borrow().as_ref().map(|(_, tid)| *tid))
}

/// Records a claimed destination byte range for the current region, if any.
#[inline]
pub fn record_claim(addr: usize, len_bytes: usize, kind: ClaimKind) {
    REGION.with(|r| {
        if let Some((log, tid)) = r.borrow().as_ref() {
            log.record(*tid, addr, len_bytes, kind);
        }
    });
}

/// Reports a protocol violation observed by an instrumented access: deferred
/// to the region's safe point when inside a region, raised immediately (no
/// deadlock risk) otherwise.
pub fn report_violation(msg: String) {
    let deferred = REGION.with(|r| {
        if let Some((log, _)) = r.borrow().as_ref() {
            log.report(msg.clone());
            true
        } else {
            false
        }
    });
    if !deferred {
        panic!("shadow checker: {msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_claims_are_clean() {
        let log = ShadowLog::new();
        log.record(0, 0x1000, 64, ClaimKind::SliceWriter);
        log.record(1, 0x1040, 64, ClaimKind::SliceWriter);
        log.record(2, 0x0fc0, 64, ClaimKind::DisjointSlice);
        log.finish_region(); // must not panic
        assert_eq!(log.dropped_claims(), 0);
    }

    #[test]
    fn same_worker_overlap_is_legal() {
        let log = ShadowLog::new();
        log.record(3, 0x2000, 128, ClaimKind::SliceWriter);
        log.record(3, 0x2040, 16, ClaimKind::SliceWriter);
        log.finish_region();
    }

    #[test]
    fn cross_worker_overlap_panics_naming_both() {
        let log = ShadowLog::new();
        log.record(0, 0x3000, 64, ClaimKind::SliceWriter);
        log.record(1, 0x3020, 64, ClaimKind::SliceWriter);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            log.finish_region();
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("worker 0"), "{msg}");
        assert!(msg.contains("worker 1"), "{msg}");
        assert!(msg.contains("0x3000"), "{msg}");
        assert!(msg.contains("0x3020"), "{msg}");
    }

    #[test]
    fn barrier_drain_separates_windows() {
        let log = ShadowLog::new();
        // The same range claimed by two workers — but in different
        // barrier-delimited windows, which is the legal reuse pattern
        // (e.g. a frontier reset between rounds).
        log.record(0, 0x4000, 256, ClaimKind::DisjointSlice);
        log.drain_check();
        log.record(1, 0x4000, 256, ClaimKind::DisjointSlice);
        log.finish_region();
    }

    #[test]
    fn overflow_drops_but_does_not_block() {
        let log = ShadowLog::new();
        for i in 0..(LOG_CAPACITY + 10) {
            log.record(0, 0x10_0000 + i * 8, 8, ClaimKind::SliceWriter);
        }
        assert_eq!(log.dropped_claims(), 10);
        log.finish_region();
    }
}
