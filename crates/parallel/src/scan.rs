//! Parallel exclusive prefix sums.
//!
//! The lazy bucket engine uses prefix sums twice per round: to compute
//! per-source output offsets in the edge buffer and to compact the valid
//! entries of the buffer into the next frontier (paper §3.1's
//! "`syncAppend` ... or with a prefix sum to avoid atomics").

use crate::pool::Pool;

/// Block size for the two-pass parallel scan.
const SCAN_BLOCK: usize = 2048;

/// Computes the exclusive prefix sum of `values` in place and returns the
/// total sum.
///
/// `out[i] = values[0] + .. + values[i-1]`, `out[0] = 0`.
///
/// # Example
///
/// ```
/// use priograph_parallel::{scan::exclusive_scan_in_place, Pool};
///
/// let pool = Pool::new(2);
/// let mut v = vec![3u64, 1, 4, 1, 5];
/// let total = exclusive_scan_in_place(&pool, &mut v);
/// assert_eq!(total, 14);
/// assert_eq!(v, vec![0, 3, 4, 8, 9]);
/// ```
pub fn exclusive_scan_in_place(pool: &Pool, values: &mut [u64]) -> u64 {
    let len = values.len();
    if len == 0 {
        return 0;
    }
    if pool.num_threads() == 1 || len <= SCAN_BLOCK || crate::pool::in_worker() {
        return serial_exclusive_scan(values);
    }

    let num_blocks = len.div_ceil(SCAN_BLOCK);
    let mut block_sums = vec![0u64; num_blocks];

    // Phase 1: scan each block independently, recording its total.
    {
        let sums = crate::shared::DisjointSlice::from_vec(std::mem::take(&mut block_sums));
        let data = crate::shared::DisjointSlice::from_vec(values.to_vec());
        pool.parallel_for(0..num_blocks, 1, |b| {
            let start = b * SCAN_BLOCK;
            let end = (start + SCAN_BLOCK).min(len);
            let mut acc = 0u64;
            for i in start..end {
                let v = data.read(i);
                data.write(i, acc);
                acc += v;
            }
            sums.write(b, acc);
        });
        let scanned = data.into_vec();
        values.copy_from_slice(&scanned);
        block_sums = sums.into_vec();
    }

    // Phase 2: serial scan of the (small) block totals.
    let total = serial_exclusive_scan(&mut block_sums);

    // Phase 3: add each block's offset to its entries.
    {
        let data = crate::shared::DisjointSlice::from_vec(values.to_vec());
        let offsets = &block_sums;
        pool.parallel_for(0..num_blocks, 1, |b| {
            let start = b * SCAN_BLOCK;
            let end = (start + SCAN_BLOCK).min(len);
            let off = offsets[b];
            for i in start..end {
                data.write(i, data.read(i) + off);
            }
        });
        let shifted = data.into_vec();
        values.copy_from_slice(&shifted);
    }
    total
}

/// Serial exclusive scan; returns the total.
pub fn serial_exclusive_scan(values: &mut [u64]) -> u64 {
    let mut acc = 0u64;
    for v in values.iter_mut() {
        let old = *v;
        *v = acc;
        acc += old;
    }
    acc
}

/// Convenience wrapper: returns `(offsets, total)` for a slice of counts,
/// leaving the input untouched.
pub fn exclusive_offsets(pool: &Pool, counts: &[u64]) -> (Vec<u64>, u64) {
    let mut offsets = counts.to_vec();
    let total = exclusive_scan_in_place(pool, &mut offsets);
    (offsets, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_scan_matches_definition() {
        let mut v = vec![2u64, 0, 7, 1];
        let total = serial_exclusive_scan(&mut v);
        assert_eq!(total, 10);
        assert_eq!(v, vec![0, 2, 2, 9]);
    }

    #[test]
    fn empty_scan_is_zero() {
        let pool = Pool::new(2);
        let mut v: Vec<u64> = vec![];
        assert_eq!(exclusive_scan_in_place(&pool, &mut v), 0);
    }

    #[test]
    fn parallel_scan_matches_serial_on_large_input() {
        let pool = Pool::new(4);
        let input: Vec<u64> = (0..50_000u64).map(|i| (i * 31 + 7) % 13).collect();
        let mut parallel = input.clone();
        let mut serial = input;
        let pt = exclusive_scan_in_place(&pool, &mut parallel);
        let st = serial_exclusive_scan(&mut serial);
        assert_eq!(pt, st);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn exclusive_offsets_leaves_input_alone() {
        let pool = Pool::new(2);
        let counts = vec![5u64, 5, 5];
        let (offsets, total) = exclusive_offsets(&pool, &counts);
        assert_eq!(counts, vec![5, 5, 5]);
        assert_eq!(offsets, vec![0, 5, 10]);
        assert_eq!(total, 15);
    }

    #[test]
    fn scan_block_boundary_sizes() {
        let pool = Pool::new(3);
        for len in [
            SCAN_BLOCK - 1,
            SCAN_BLOCK,
            SCAN_BLOCK + 1,
            3 * SCAN_BLOCK + 5,
        ] {
            let input: Vec<u64> = (0..len as u64).map(|i| i % 5).collect();
            let mut parallel = input.clone();
            let mut serial = input;
            assert_eq!(
                exclusive_scan_in_place(&pool, &mut parallel),
                serial_exclusive_scan(&mut serial),
                "len={len}"
            );
            assert_eq!(parallel, serial, "len={len}");
        }
    }
}
