//! Parallel exclusive prefix sums and scan-based frontier compaction.
//!
//! The lazy bucket engine uses prefix sums twice per round: to compute
//! per-source output offsets in the edge buffer and to compact the valid
//! entries of the buffer into the next frontier (paper §3.1's
//! "`syncAppend` ... or with a prefix sum to avoid atomics").
//!
//! [`compact_into`] and [`filter_map_compact_into`] are the allocation-free
//! round primitives built on that idea: per-worker buffers
//! ([`WorkerLocal`]) are merged into one reusable output vector by giving
//! each worker the prefix sum of the preceding workers' buffer lengths as
//! its disjoint destination offset. With at most a few dozen workers the
//! exclusive scan over buffer lengths is evaluated per worker (each sums
//! its predecessors) instead of in the two-pass block form — same result,
//! no scratch array. Steady-state rounds touch no locks and allocate
//! nothing once the reused buffers have warmed up.

use crate::pool::Pool;
use crate::shared::{SliceWriter, WorkerLocal};

/// Block size for the two-pass parallel scan.
const SCAN_BLOCK: usize = 2048;

/// Below this many items the compaction helpers run serially: one thread's
/// `memcpy` beats waking the pool.
const COMPACT_PAR_CUTOFF: usize = 4096;

/// Computes the exclusive prefix sum of `values` in place and returns the
/// total sum.
///
/// `out[i] = values[0] + .. + values[i-1]`, `out[0] = 0`.
///
/// # Example
///
/// ```
/// use priograph_parallel::{scan::exclusive_scan_in_place, Pool};
///
/// let pool = Pool::new(2);
/// let mut v = vec![3u64, 1, 4, 1, 5];
/// let total = exclusive_scan_in_place(&pool, &mut v);
/// assert_eq!(total, 14);
/// assert_eq!(v, vec![0, 3, 4, 8, 9]);
/// ```
pub fn exclusive_scan_in_place(pool: &Pool, values: &mut [u64]) -> u64 {
    let len = values.len();
    if len == 0 {
        return 0;
    }
    if pool.num_threads() == 1 || len <= SCAN_BLOCK || crate::pool::in_worker() {
        return serial_exclusive_scan(values);
    }

    let num_blocks = len.div_ceil(SCAN_BLOCK);
    let mut block_sums = vec![0u64; num_blocks];

    // Phase 1: scan each block independently, recording its total.
    {
        let sums = crate::shared::DisjointSlice::from_vec(std::mem::take(&mut block_sums));
        let data = crate::shared::DisjointSlice::from_vec(values.to_vec());
        pool.parallel_for(0..num_blocks, 1, |b| {
            let start = b * SCAN_BLOCK;
            let end = (start + SCAN_BLOCK).min(len);
            let mut acc = 0u64;
            for i in start..end {
                let v = data.read(i);
                data.write(i, acc);
                acc += v;
            }
            sums.write(b, acc);
        });
        let scanned = data.into_vec();
        values.copy_from_slice(&scanned);
        block_sums = sums.into_vec();
    }

    // Phase 2: serial scan of the (small) block totals.
    let total = serial_exclusive_scan(&mut block_sums);

    // Phase 3: add each block's offset to its entries.
    {
        let data = crate::shared::DisjointSlice::from_vec(values.to_vec());
        let offsets = &block_sums;
        pool.parallel_for(0..num_blocks, 1, |b| {
            let start = b * SCAN_BLOCK;
            let end = (start + SCAN_BLOCK).min(len);
            let off = offsets[b];
            for i in start..end {
                data.write(i, data.read(i) + off);
            }
        });
        let shifted = data.into_vec();
        values.copy_from_slice(&shifted);
    }
    total
}

/// Serial exclusive scan; returns the total.
pub fn serial_exclusive_scan(values: &mut [u64]) -> u64 {
    let mut acc = 0u64;
    for v in values.iter_mut() {
        let old = *v;
        *v = acc;
        acc += old;
    }
    acc
}

/// Convenience wrapper: returns `(offsets, total)` for a slice of counts,
/// leaving the input untouched.
pub fn exclusive_offsets(pool: &Pool, counts: &[u64]) -> (Vec<u64>, u64) {
    let mut offsets = counts.to_vec();
    let total = exclusive_scan_in_place(pool, &mut offsets);
    (offsets, total)
}

/// Merges per-worker buffers into `out` (cleared first) and empties every
/// buffer, retaining all capacities — the zero-allocation merge step of the
/// frontier pipeline.
///
/// Each worker's destination offset is the exclusive prefix sum of the
/// preceding workers' buffer lengths, so the copies land disjointly and
/// `out` holds slot 0's items, then slot 1's, and so on (deterministic for
/// a fixed fill). Small totals (or single-thread pools, or calls from
/// inside a region) merge serially. Returns the number of items merged.
pub fn compact_into<T>(pool: &Pool, locals: &mut WorkerLocal<Vec<T>>, out: &mut Vec<T>) -> usize
where
    T: Copy + Send + Sync,
{
    out.clear();
    let total: usize = (0..locals.len()).map(|t| locals.get_mut(t).len()).sum();
    out.reserve(total);
    // The parallel path requires exactly one slot per region participant:
    // with fewer slots a worker would index out of bounds, and with MORE
    // slots than workers the extra slots would be counted in `total` but
    // never copied — set_len over uninitialized memory. Everything else
    // merges serially.
    if pool.num_threads() == 1
        || crate::pool::in_worker()
        || total < COMPACT_PAR_CUTOFF
        || locals.len() != pool.num_threads()
    {
        for buf in locals.iter_mut() {
            out.extend_from_slice(buf);
            buf.clear();
        }
        return total;
    }
    {
        let writer = SliceWriter::spare(out);
        let locals = &*locals;
        pool.broadcast(|w| {
            let tid = w.tid();
            // Exclusive prefix sum of the preceding buffers' lengths. All
            // fills completed before the region started, so peeks are safe.
            let offset: usize = (0..tid).map(|t| locals.peek(t).len()).sum();
            writer.write_copy(offset, locals.peek(tid));
        });
    }
    // SAFETY: every index in 0..total was written by exactly one worker
    // (offsets tile the range by construction).
    unsafe { out.set_len(total) };
    for buf in locals.iter_mut() {
        buf.clear();
    }
    total
}

/// Applies `f` to every item, compacting the `Some` results into `out`
/// (cleared first) in item order — the fused classify-and-merge step of the
/// frontier pipeline.
///
/// The parallel path statically partitions `items`, fills each worker's
/// buffer, crosses one barrier, and copies every buffer to its
/// prefix-sum-assigned range of `out` — one region, no locks, and no
/// allocation once `locals` and `out` have warmed up. Output order matches
/// the serial `items.iter().filter_map(f)` order because static ranges are
/// contiguous and ascending in worker id. Returns the number of items kept.
pub fn filter_map_compact_into<T, U, F>(
    pool: &Pool,
    items: &[T],
    f: F,
    locals: &mut WorkerLocal<Vec<U>>,
    out: &mut Vec<U>,
) -> usize
where
    T: Sync,
    U: Copy + Send + Sync,
    F: Fn(&T) -> Option<U> + Sync,
{
    out.clear();
    // Slot count must equal the region's participant count — see the
    // matching guard in `compact_into` for why a mismatch in either
    // direction is unsound here.
    if pool.num_threads() == 1
        || crate::pool::in_worker()
        || items.len() < COMPACT_PAR_CUTOFF
        || locals.len() != pool.num_threads()
    {
        out.extend(items.iter().filter_map(f));
        return out.len();
    }
    out.reserve(items.len());
    {
        let writer = SliceWriter::spare(out);
        let locals = &*locals;
        pool.broadcast(|w| {
            let tid = w.tid();
            locals.with_mut(tid, |buf| {
                debug_assert!(buf.is_empty(), "pipeline buffers start rounds empty");
                for item in &items[w.static_range(items.len())] {
                    if let Some(u) = f(item) {
                        buf.push(u);
                    }
                }
            });
            // Fills are complete for every worker past this barrier, making
            // the cross-slot length peeks below race-free.
            w.barrier();
            let offset: usize = (0..tid).map(|t| locals.peek(t).len()).sum();
            writer.write_copy(offset, locals.peek(tid));
        });
    }
    let total: usize = (0..locals.len()).map(|t| locals.get_mut(t).len()).sum();
    // SAFETY: every index in 0..total was written by exactly one worker
    // (offsets tile the range by construction).
    unsafe { out.set_len(total) };
    for buf in locals.iter_mut() {
        buf.clear();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_scan_matches_definition() {
        let mut v = vec![2u64, 0, 7, 1];
        let total = serial_exclusive_scan(&mut v);
        assert_eq!(total, 10);
        assert_eq!(v, vec![0, 2, 2, 9]);
    }

    #[test]
    fn empty_scan_is_zero() {
        let pool = Pool::new(2);
        let mut v: Vec<u64> = vec![];
        assert_eq!(exclusive_scan_in_place(&pool, &mut v), 0);
    }

    #[test]
    fn parallel_scan_matches_serial_on_large_input() {
        let pool = Pool::new(4);
        let input: Vec<u64> = (0..50_000u64).map(|i| (i * 31 + 7) % 13).collect();
        let mut parallel = input.clone();
        let mut serial = input;
        let pt = exclusive_scan_in_place(&pool, &mut parallel);
        let st = serial_exclusive_scan(&mut serial);
        assert_eq!(pt, st);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn exclusive_offsets_leaves_input_alone() {
        let pool = Pool::new(2);
        let counts = vec![5u64, 5, 5];
        let (offsets, total) = exclusive_offsets(&pool, &counts);
        assert_eq!(counts, vec![5, 5, 5]);
        assert_eq!(offsets, vec![0, 5, 10]);
        assert_eq!(total, 15);
    }

    #[test]
    fn compact_into_merges_in_slot_order() {
        let pool = Pool::new(2);
        let mut locals: WorkerLocal<Vec<u32>> = WorkerLocal::new(3);
        locals.get_mut(0).extend([1, 2]);
        locals.get_mut(2).extend([5]);
        let mut out = Vec::new();
        assert_eq!(compact_into(&pool, &mut locals, &mut out), 3);
        assert_eq!(out, vec![1, 2, 5]);
        assert!(locals.iter_mut().all(|b| b.is_empty()), "buffers cleared");
    }

    #[test]
    fn compact_into_empty_frontier_and_single_thread_pool() {
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let mut locals: WorkerLocal<Vec<u32>> = WorkerLocal::new(threads);
            let mut out = vec![9, 9, 9];
            assert_eq!(compact_into(&pool, &mut locals, &mut out), 0);
            assert!(out.is_empty(), "threads={threads}");
        }
    }

    #[test]
    fn compact_into_parallel_path_reuses_capacity() {
        let pool = Pool::new(4);
        let mut locals: WorkerLocal<Vec<u32>> = WorkerLocal::new(4);
        let mut out = Vec::new();
        let per_slot = 4096; // 4 slots × 4096 clears the parallel cutoff
        let mut expected = Vec::new();
        for t in 0..4 {
            let items: Vec<u32> = (0..per_slot).map(|i| (t * per_slot + i) as u32).collect();
            expected.extend_from_slice(&items);
            locals.get_mut(t).extend(items);
        }
        assert_eq!(compact_into(&pool, &mut locals, &mut out), 4 * per_slot);
        assert_eq!(out, expected);
        // Second round into the warmed buffer must not reallocate.
        let ptr = out.as_ptr();
        for t in 0..4 {
            locals.get_mut(t).extend((0..per_slot).map(|i| i as u32));
        }
        compact_into(&pool, &mut locals, &mut out);
        assert_eq!(out.as_ptr(), ptr, "warm merge must reuse the output buffer");
    }

    #[test]
    fn filter_map_compact_matches_serial_filter_map() {
        let items: Vec<u32> = (0..20_000).collect();
        let keep = |v: &u32| v.is_multiple_of(3).then_some(*v * 2);
        let expected: Vec<u32> = items.iter().filter_map(keep).collect();
        for threads in [1, 3, 4] {
            let pool = Pool::new(threads);
            let mut locals: WorkerLocal<Vec<u32>> = WorkerLocal::new(threads);
            let mut out = Vec::new();
            let n = filter_map_compact_into(&pool, &items, keep, &mut locals, &mut out);
            assert_eq!(n, expected.len(), "threads={threads}");
            assert_eq!(out, expected, "threads={threads}");
            assert!(locals.iter_mut().all(|b| b.is_empty()));
        }
    }

    #[test]
    fn filter_map_compact_empty_input() {
        let pool = Pool::new(2);
        let mut locals: WorkerLocal<Vec<u32>> = WorkerLocal::new(2);
        let mut out = vec![7];
        let n = filter_map_compact_into(&pool, &[], |v: &u32| Some(*v), &mut locals, &mut out);
        assert_eq!(n, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn filter_map_compact_with_undersized_locals_falls_back_serial() {
        let pool = Pool::new(4);
        let mut locals: WorkerLocal<Vec<u32>> = WorkerLocal::new(2); // < threads
        let items: Vec<u32> = (0..10_000).collect();
        let mut out = Vec::new();
        filter_map_compact_into(&pool, &items, |v| Some(*v), &mut locals, &mut out);
        assert_eq!(out, items);
    }

    #[test]
    fn compact_with_oversized_locals_loses_nothing() {
        // More slots than pool workers (e.g. buffers warmed by a wider pool,
        // then reused with a narrower one): every slot's items must still be
        // merged — the parallel path would only copy the first
        // `num_threads` slots, so this must take the serial fallback.
        let pool = Pool::new(2);
        let mut locals: WorkerLocal<Vec<u32>> = WorkerLocal::new(6);
        let mut expected = Vec::new();
        for t in 0..6 {
            let items: Vec<u32> = (0..2048).map(|i| (t * 2048 + i) as u32).collect();
            expected.extend_from_slice(&items);
            locals.get_mut(t).extend(items);
        }
        let mut out = Vec::new();
        assert_eq!(compact_into(&pool, &mut locals, &mut out), expected.len());
        assert_eq!(out, expected);
    }

    #[test]
    fn scan_block_boundary_sizes() {
        let pool = Pool::new(3);
        for len in [
            SCAN_BLOCK - 1,
            SCAN_BLOCK,
            SCAN_BLOCK + 1,
            3 * SCAN_BLOCK + 5,
        ] {
            let input: Vec<u64> = (0..len as u64).map(|i| i % 5).collect();
            let mut parallel = input.clone();
            let mut serial = input;
            assert_eq!(
                exclusive_scan_in_place(&pool, &mut parallel),
                serial_exclusive_scan(&mut serial),
                "len={len}"
            );
            assert_eq!(parallel, serial, "len={len}");
        }
    }
}
