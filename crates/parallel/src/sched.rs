//! The work-stealing execution core with priority lanes.
//!
//! This replaces "one dispatcher thread owns the [`Pool`](crate::Pool) per round-batch"
//! with mmtk-style work buckets (SNIPPETS #1): a fixed set of executor
//! workers, each with per-lane [`WorkPacket`] deques, a shared injector
//! queue per lane, and group park/notify on a futex [`WaitSeq`]. Three
//! lanes impose priority: everything in [`Lane::Interactive`] (point
//! queries) is drained — own deque, injector, then steals — before a
//! worker touches [`Lane::Background`] (full-vector engine rounds), and
//! both query lanes drain before [`Lane::Maintenance`] (tuner trials), so
//! an autotuning storm can no longer monopolize the machine while
//! interactive work queues, and a scan never sits in FIFO order behind a
//! multi-millisecond tuner monolith.
//!
//! # Gang regions: running the bucket engines barrier-free
//!
//! The ordered engines are written against [`Pool::broadcast`](crate::Pool::broadcast) — one closure
//! instance per participant, synchronized by [`Worker::barrier`]. An
//! executor-backed pool (see [`Pool::attach`](crate::Pool::attach)) maps each broadcast onto a
//! **gang region**: the publishing thread claims tid 0 and runs the closure
//! in place, while every executor worker picks up the remaining tids from a
//! claim counter the next time it polls. A gang inherits the *lane* of the
//! packet that published it and ranks just above its own lane's packets
//! (the publisher already holds an in-flight packet hostage) but below
//! every higher lane's packets — a worker drains points and scans before
//! lending itself to a tuner's region, so a tune storm's back-to-back
//! regions cannot conscript the whole crew. Threads waiting on a region
//! (publish contention, member barriers, the publisher's completion wait)
//! cooperatively run packets that outrank it; such stolen packets execute
//! their own broadcasts serially inline, so the steal can never nest an
//! unbounded publish chain. Nobody ever sits in an epoch barrier:
//!
//! * members that reach a region barrier first *steal interactive packets*
//!   while they wait, so a point query never stalls behind an engine round's
//!   load imbalance;
//! * the **last member out** of a region (`remaining == 0`) wakes the
//!   publisher directly over a futex — there is no round-level join barrier,
//!   and a worker that finishes early is already back in the lane loop;
//! * under `check-shadow`, the last arriver of each region barrier drains
//!   the claim log exactly as the classic pool does (claims from stolen
//!   packets are excluded by suspending the thread's shadow region around
//!   the steal), so the race detector survives the refactor.
//!
//! # Round chains: bucket open-conditions
//!
//! [`RoundChain`] generalizes the per-round protocol to the server's
//! round-batches: a [`ChainDriver`] emits one [`Round`] of packets at a
//! time, and the next round's bucket *opens* when the previous round's
//! packet count drains to zero — the last-out worker runs the driver and
//! submits the new packets itself, exactly like mmtk's last parked worker
//! opening the next bucket. No thread blocks between rounds.

use crate::futex::WaitSeq;
use crate::pool::{in_worker, with_in_region, AdaptiveSpin, Worker};
#[cfg(feature = "check-shadow")]
use crate::shadow;
use crossbeam::queue::SegQueue;
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Priority lanes, drained in declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Latency-sensitive work (point queries): always drained first.
    Interactive = 0,
    /// Throughput work (full-vector engine runs): runs when no interactive
    /// packet is visible.
    Background = 1,
    /// Deferrable work (tuner trials, re-planning): runs only when both
    /// query lanes are drained. A tuner trial is a multi-millisecond
    /// monolith — giving it its own lane keeps a queued scan from ever
    /// sitting behind one in FIFO order.
    Maintenance = 2,
}

const LANES: usize = 3;

impl Lane {
    fn from_index(lane: usize) -> Lane {
        match lane {
            0 => Lane::Interactive,
            1 => Lane::Background,
            _ => Lane::Maintenance,
        }
    }
}

/// Context handed to every executing packet.
pub struct ExecCtx<'a> {
    worker: usize,
    shared: &'a ExecShared,
}

impl ExecCtx<'_> {
    /// The executor worker slot running this packet, in
    /// `0..`[`Executor::num_workers`]. Stable across a packet's lifetime —
    /// use it to index per-worker state (engines, caches).
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// Submits a follow-up packet to this worker's own deque (stealable by
    /// the other workers).
    pub fn submit_local(&self, lane: Lane, f: impl FnOnce(&ExecCtx<'_>) + Send + 'static) {
        self.shared.push_local(self.worker, lane, Box::new(f));
    }
}

impl fmt::Debug for ExecCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecCtx")
            .field("worker", &self.worker)
            .finish()
    }
}

/// A unit of schedulable work: a boxed closure plus the lane it rides.
pub struct WorkPacket {
    run: Box<dyn FnOnce(&ExecCtx<'_>) + Send>,
}

impl WorkPacket {
    /// Wraps a closure as a packet.
    pub fn new(f: impl FnOnce(&ExecCtx<'_>) + Send + 'static) -> WorkPacket {
        WorkPacket { run: Box::new(f) }
    }
}

impl fmt::Debug for WorkPacket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("WorkPacket")
    }
}

/// Snapshot of executor activity counters (monotone since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Packets executed to completion (including panicked ones).
    pub executed: u64,
    /// Packets taken from another worker's deque.
    pub steals: u64,
    /// Gang regions (executor-backed `Pool::broadcast` calls) completed.
    pub gangs: u64,
    /// Packets whose closure panicked (caught; the worker survives).
    pub panicked: u64,
}

/// Erased pointer to a gang region's closure; lives on the publisher's
/// stack for the duration of the region (see [`ExecShared::broadcast_gang`]).
type GangJobRef = *const (dyn Fn(Worker<'_>) + Sync);

/// The published gang closure. Written only by a publisher that owns the
/// gang slot, while `claims` is saturated (no worker can be reading it).
struct GangJob(Cell<Option<GangJobRef>>);

// SAFETY: the cell is written exclusively by the thread that won the
// `active` flag, strictly before it releases tids via the `claims` store;
// workers read it only after an Acquire claim that happens-after that
// Release store, and the publisher does not clear it until `remaining`
// reaches zero (every reader is done).
unsafe impl Send for GangJob {}
unsafe impl Sync for GangJob {}

/// State of the (single, serialized) gang region of an executor.
struct GangState {
    /// True from publish to completion; doubles as the publishers' lock.
    active: AtomicBool,
    /// The region's lane (as `Lane as usize`), inherited from the packet
    /// the publisher was executing (Interactive for external publishers).
    /// A scheduling hint for pollers: a Background gang must not conscript
    /// a worker while interactive packets are queued.
    lane: AtomicUsize,
    job: GangJob,
    /// Next tid to hand out; saturated (== size) when fully claimed.
    claims: AtomicUsize,
    /// Members (including the publisher) still inside the closure.
    remaining: AtomicUsize,
    /// Set when a member's closure panicked; poisons the region's barriers.
    panicked: AtomicBool,
    /// Sense-reversing region barrier (generation counter + arrival count).
    barrier_arrived: AtomicUsize,
    barrier_gen: AtomicUsize,
    /// Publisher's completion parking (last member out notifies).
    done: WaitSeq,
    /// Publishers waiting to win `active`, per lane. Admission fairness: a
    /// would-be publisher defers to any pending intent of a *higher* lane,
    /// so a region storm (a tuner broadcasting back-to-back trial regions)
    /// hands the flag over at the next region boundary instead of racing
    /// the waiter's CAS — a race the storm wins nearly always, since it
    /// re-publishes within nanoseconds of clearing while owning the cache
    /// line, and the waiter spends most of its time inside the storm's own
    /// member closures (observed: a scan losing ~80 consecutive handoffs,
    /// a multi-second stall).
    intent: [AtomicUsize; LANES],
}

/// One worker's lane deques, stealable by every other worker.
struct WorkerSlot {
    queues: [Mutex<VecDeque<WorkPacket>>; LANES],
}

pub(crate) struct ExecShared {
    n: usize,
    injectors: [SegQueue<WorkPacket>; LANES],
    locals: Vec<WorkerSlot>,
    /// Queued-but-not-started packets per lane (park predicate).
    queued: [AtomicUsize; LANES],
    /// Submitted minus completed packets (quiesce predicate).
    live: AtomicUsize,
    idle: WaitSeq,
    parked: AtomicUsize,
    quiesced: WaitSeq,
    shutdown: AtomicBool,
    gang: GangState,
    executed: AtomicUsize,
    steals: AtomicUsize,
    gangs: AtomicUsize,
    panicked: AtomicUsize,
    /// Shadow-state claim log shared by every gang region of this executor.
    #[cfg(feature = "check-shadow")]
    pub(crate) shadow: Arc<shadow::ShadowLog>,
}

thread_local! {
    /// `(ExecShared address, worker slot)` while the thread is an executor
    /// worker — lets gang barriers steal for the right executor.
    static EXEC_SLOT: Cell<Option<(usize, usize)>> = const { Cell::new(None) };

    /// The lane of the packet this thread is currently executing (`None`
    /// outside a packet). A gang region published from inside a packet
    /// inherits this lane, so workers can rank the gang against queued
    /// interactive work.
    static CURRENT_LANE: Cell<Option<Lane>> = const { Cell::new(None) };

    /// True while this thread runs a *cooperatively stolen* packet (one
    /// picked up from a gang wait or a publish-contention loop). Broadcasts
    /// from such a packet run serially inline: publishing from a steal
    /// would either nest an unbounded stack of in-flight packets (each
    /// waiting on the work stolen on top of it — LIFO starvation) or, in a
    /// publisher-owned wait loop, deadlock on the very `active` flag the
    /// stack below must clear.
    static INLINE_STEAL: Cell<bool> = const { Cell::new(false) };

    /// The lane of a gang publish this thread is waiting to win (set for
    /// the duration of [`ExecShared::broadcast_gang`]'s admission loop).
    /// While set, cooperative steals are capped to lanes that *strictly
    /// outrank* it: the thread may still join the active region (the
    /// region needs every worker, so that is a liveness obligation), but
    /// stealing a same-or-lower-lane packet would run someone else's work
    /// ahead of the in-flight packet this very stack is trying to finish.
    /// Without the cap, a scan contending with a tune storm kept inline-
    /// stealing *other* queued scans — multi-millisecond serial runs whose
    /// every completion found the storm's next region already published —
    /// a LIFO starvation observed as rare multi-second scan stalls.
    static PENDING_PUBLISH: Cell<Option<Lane>> = const { Cell::new(None) };
}

impl ExecShared {
    /// This thread's worker slot, if it belongs to this executor.
    fn my_slot(&self) -> Option<usize> {
        let me = self as *const ExecShared as usize;
        EXEC_SLOT.with(|s| match s.get() {
            Some((addr, slot)) if addr == me => Some(slot),
            _ => None,
        })
    }

    fn push_injector(&self, lane: Lane, packet: WorkPacket) {
        self.live.fetch_add(1, Ordering::AcqRel);
        self.queued[lane as usize].fetch_add(1, Ordering::SeqCst);
        self.injectors[lane as usize].push(packet);
        self.wake();
    }

    fn push_local(&self, worker: usize, lane: Lane, run: Box<dyn FnOnce(&ExecCtx<'_>) + Send>) {
        self.live.fetch_add(1, Ordering::AcqRel);
        self.queued[lane as usize].fetch_add(1, Ordering::SeqCst);
        self.locals[worker].queues[lane as usize]
            .lock()
            .push_back(WorkPacket { run });
        self.wake();
    }

    /// Wakes parked workers after a push. The conditional is a Dekker with
    /// the park sequence in [`worker_main`]: the submitter bumps `queued`
    /// (SeqCst) then reads `parked` (SeqCst); a parking worker bumps
    /// `parked` (SeqCst) then re-checks `queued` (SeqCst). In the SeqCst
    /// total order one side always sees the other — either we notify, or
    /// the worker sees the packet and declines to sleep. Both orderings are
    /// load-bearing; weakening either reintroduces a lost-wakeup window.
    fn wake(&self) {
        if self.parked.load(Ordering::SeqCst) > 0 {
            self.idle.notify_all();
        }
    }

    /// Pops one packet following the lane discipline: own deque, injector,
    /// then steals — interactive fully drained before background is touched.
    fn find_packet(&self, slot: usize, max_lane: Lane) -> Option<(Lane, WorkPacket)> {
        for lane in 0..=(max_lane as usize) {
            let tag = Lane::from_index(lane);
            if self.queued[lane].load(Ordering::Acquire) == 0 {
                continue;
            }
            if let Some(p) = self.locals[slot].queues[lane].lock().pop_front() {
                self.queued[lane].fetch_sub(1, Ordering::AcqRel);
                return Some((tag, p));
            }
            if let Some(p) = self.injectors[lane].pop() {
                self.queued[lane].fetch_sub(1, Ordering::AcqRel);
                return Some((tag, p));
            }
            for step in 1..self.n {
                let victim = (slot + step) % self.n;
                if let Some(p) = self.locals[victim].queues[lane].lock().pop_front() {
                    self.queued[lane].fetch_sub(1, Ordering::AcqRel);
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    return Some((tag, p));
                }
            }
        }
        None
    }

    /// Runs one packet to completion, absorbing panics (a panicking packet
    /// must not take the worker down with it). The packet's lane is published
    /// in [`CURRENT_LANE`] for its duration, so gang regions it broadcasts
    /// inherit the right priority.
    fn run_packet(&self, slot: usize, lane: Lane, packet: WorkPacket) {
        let prev = CURRENT_LANE.with(|l| l.replace(Some(lane)));
        let ctx = ExecCtx {
            worker: slot,
            shared: self,
        };
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (packet.run)(&ctx))).is_err() {
            self.panicked.fetch_add(1, Ordering::Relaxed);
        }
        CURRENT_LANE.with(|l| l.set(prev));
        self.executed.fetch_add(1, Ordering::Relaxed);
        if self.live.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.quiesced.notify_all();
        }
    }

    /// Steals and runs one packet at or above `max_lane` priority. Returns
    /// false if nothing was visible. Used from gang barrier waits (with the
    /// shadow region suspended so the stolen packet's claims are not
    /// attributed to the gang's current window).
    fn run_one(&self, slot: usize, max_lane: Lane) -> bool {
        // A pending publish caps the steal to lanes that strictly outrank
        // it (see [`PENDING_PUBLISH`]); an Interactive publisher steals
        // nothing — no lane outranks it.
        let max_lane = match PENDING_PUBLISH.with(|p| p.get()) {
            Some(Lane::Interactive) => return false,
            Some(pending) => Lane::from_index((pending as usize - 1).min(max_lane as usize)),
            None => max_lane,
        };
        let Some((lane, packet)) = self.find_packet(slot, max_lane) else {
            return false;
        };
        // The stolen packet completes inline: any broadcast it makes runs
        // serially (see the [`INLINE_STEAL`] docs), so this frame cannot
        // grow a nested publish under itself.
        let inline_prev = INLINE_STEAL.with(|f| f.replace(true));
        #[cfg(feature = "check-shadow")]
        {
            let saved = shadow::suspend_region();
            self.run_packet(slot, lane, packet);
            shadow::resume_region(saved);
        }
        #[cfg(not(feature = "check-shadow"))]
        self.run_packet(slot, lane, packet);
        INLINE_STEAL.with(|f| f.set(inline_prev));
        true
    }

    /// True when the gang slot is active with unclaimed or unfinished tids
    /// this worker could/should be helping with.
    fn gang_visible(&self) -> bool {
        self.gang.active.load(Ordering::SeqCst)
    }

    /// True while a publisher of a lane that strictly outranks `lane` is
    /// waiting to win the gang flag (see [`GangState::intent`]).
    fn higher_publish_pending(&self, lane: Lane) -> bool {
        self.gang.intent[..lane as usize]
            .iter()
            .any(|i| i.load(Ordering::SeqCst) > 0)
    }

    /// The lane of the currently visible gang region, if one is published.
    /// Best-effort: the lane store races the `active` flag by design (it is
    /// a join-ordering hint, not a correctness input), so a poller may see
    /// one stale value across a publish boundary — the next poll corrects.
    fn gang_lane(&self) -> Option<Lane> {
        if !self.gang_visible() {
            return None;
        }
        Some(Lane::from_index(self.gang.lane.load(Ordering::Relaxed)))
    }

    /// The highest packet lane a thread may serve while cooperatively
    /// waiting on (or contending with) a gang of `gang_lane`: everything
    /// that strictly outranks the gang. Members of a background region
    /// steal point queries; members of a maintenance region also clear
    /// scans — the tuner's round can afford the stall, the scan cannot.
    fn steal_ceiling(gang_lane: Lane) -> Lane {
        match gang_lane {
            Lane::Interactive | Lane::Background => Lane::Interactive,
            Lane::Maintenance => Lane::Background,
        }
    }

    /// Claims and runs one gang tid if a region is published and has spare
    /// tids. Returns true if this thread ran a member.
    fn try_join_gang(&self) -> bool {
        if !self.gang_visible() {
            return false;
        }
        let gang = &self.gang;
        let claim = gang
            .claims
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |c| {
                (c < self.n).then_some(c + 1)
            });
        let Ok(tid) = claim else { return false };
        // SAFETY: the successful Acquire claim happens-after the publisher's
        // Release store of `claims`, which happens-after the job write; the
        // publisher keeps the closure alive until `remaining` (decremented
        // below, after the call returns or unwinds) reaches zero.
        let job: &(dyn Fn(Worker<'_>) + Sync) = unsafe {
            &*self
                .gang
                .job
                .0
                .get()
                .expect("claimed tid without a published job")
        };
        let caught = with_in_region(|| {
            #[cfg(feature = "check-shadow")]
            shadow::enter_region(Arc::clone(&self.shadow), tid);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                job(Worker::gang(tid, self));
            }));
            #[cfg(feature = "check-shadow")]
            shadow::exit_region();
            result
        });
        if caught.is_err() {
            gang.panicked.store(true, Ordering::SeqCst);
        }
        if gang.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            gang.done.notify_all();
        }
        true
    }

    /// The region barrier for gang members: cooperative (waiters steal
    /// interactive packets) and shadow-draining (the last arriver checks the
    /// claim log while everyone else is provably quiescent).
    pub(crate) fn gang_barrier(&self) {
        let gang = &self.gang;
        if gang.panicked.load(Ordering::SeqCst) {
            panic!("gang region poisoned: another member panicked");
        }
        let gen = gang.barrier_gen.load(Ordering::Acquire);
        if gang.barrier_arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            #[cfg(feature = "check-shadow")]
            self.shadow.drain_check();
            gang.barrier_arrived.store(0, Ordering::Relaxed);
            gang.barrier_gen.fetch_add(1, Ordering::Release);
            return;
        }
        let slot = self.my_slot();
        let ceiling = Self::steal_ceiling(Lane::from_index(gang.lane.load(Ordering::Relaxed)));
        let mut spinner = AdaptiveSpin::new();
        while gang.barrier_gen.load(Ordering::Acquire) == gen {
            if gang.panicked.load(Ordering::SeqCst) {
                // Leave without waiting: the count is stale now, but the
                // region is doomed and the next publish resets the barrier.
                panic!("gang region poisoned: another member panicked");
            }
            if let Some(slot) = slot {
                if self.run_one(slot, ceiling) {
                    continue;
                }
            }
            if !spinner.spin(|| {
                gang.barrier_gen.load(Ordering::Acquire) != gen
                    || gang.panicked.load(Ordering::SeqCst)
            }) {
                std::thread::yield_now();
            }
        }
    }

    /// Executor-backed [`crate::Pool::broadcast`]: publishes a gang region
    /// and runs tid 0 in place. See the module docs for the protocol.
    pub(crate) fn broadcast_gang(&self, f: &(dyn Fn(Worker<'_>) + Sync)) {
        if self.n == 1
            || in_worker()
            || INLINE_STEAL.with(|s| s.get())
            || self.shutdown.load(Ordering::SeqCst)
        {
            with_in_region(|| f(Worker::serial()));
            return;
        }
        let lane = CURRENT_LANE.with(|l| l.get()).unwrap_or(Lane::Interactive);
        // Serialize publishers cooperatively: a loser that is itself an
        // executor worker helps the active region (or drains interactive
        // packets) instead of blocking — a blocked worker could be the very
        // tid the active region is waiting for. Lane discipline holds here
        // too: queued interactive packets are served before this worker
        // lends itself to somebody else's background region. The pending
        // lane caps what the helps may steal (see [`PENDING_PUBLISH`]),
        // and the per-lane intent registration makes lower-lane publishers
        // defer to this one (see [`GangState::intent`]).
        let pending_prev = PENDING_PUBLISH.with(|p| p.replace(Some(lane)));
        self.gang.intent[lane as usize].fetch_add(1, Ordering::SeqCst);
        let mut spinner = AdaptiveSpin::new();
        while self.higher_publish_pending(lane)
            || self
                .gang
                .active
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
        {
            if let Some(slot) = self.my_slot() {
                let helped = match self.gang_lane() {
                    Some(Lane::Interactive) | None => {
                        self.try_join_gang() || self.run_one(slot, Lane::Interactive)
                    }
                    Some(active) => {
                        self.run_one(slot, Self::steal_ceiling(active)) || self.try_join_gang()
                    }
                };
                if !helped {
                    std::hint::spin_loop();
                }
            } else if !spinner.spin(|| !self.gang.active.load(Ordering::SeqCst)) {
                std::thread::yield_now();
            }
        }
        PENDING_PUBLISH.with(|p| p.set(pending_prev));
        self.gang.intent[lane as usize].fetch_sub(1, Ordering::SeqCst);
        // Re-check under ownership: a shutdown racing the publish must not
        // strand us waiting for workers that already exited (the workers'
        // exit path re-checks `active` after seeing `shutdown`, and both
        // sides are SeqCst, so one of the two always observes the other).
        if self.shutdown.load(Ordering::SeqCst) {
            self.gang.active.store(false, Ordering::SeqCst);
            with_in_region(|| f(Worker::serial()));
            return;
        }
        let gang = &self.gang;
        gang.lane.store(lane as usize, Ordering::Relaxed);
        gang.panicked.store(false, Ordering::Relaxed);
        gang.barrier_arrived.store(0, Ordering::Relaxed);
        let wide: &(dyn Fn(Worker<'_>) + Sync) = f;
        // SAFETY: erasing the lifetime is sound because this function does
        // not return until `remaining == 0`, i.e. until every claimed tid
        // has returned from the closure.
        let raw: GangJobRef = unsafe { std::mem::transmute(wide) };
        gang.job.0.set(Some(raw));
        gang.remaining.store(self.n, Ordering::Release);
        // Handing out tids (Release) is the publication point for `job`.
        gang.claims.store(1, Ordering::Release);
        self.idle.notify_all();

        let caught = with_in_region(|| {
            #[cfg(feature = "check-shadow")]
            shadow::enter_region(Arc::clone(&self.shadow), 0);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                f(Worker::gang(0, self));
            }));
            #[cfg(feature = "check-shadow")]
            shadow::exit_region();
            result
        });
        if caught.is_err() {
            gang.panicked.store(true, Ordering::SeqCst);
        }
        if gang.remaining.fetch_sub(1, Ordering::AcqRel) != 1 {
            // Wait for the other members; a worker-publisher keeps serving
            // higher-priority packets meanwhile (inline, so a stolen scan's
            // own broadcast runs serially rather than nesting a publish on
            // the `active` flag this stack still owns), everyone else parks
            // after the spin budget (the last member out notifies the
            // futex).
            let slot = self.my_slot();
            let ceiling = Self::steal_ceiling(lane);
            let mut spinner = AdaptiveSpin::new();
            loop {
                if gang.remaining.load(Ordering::Acquire) == 0 {
                    break;
                }
                if let Some(slot) = slot {
                    if self.run_one(slot, ceiling) {
                        continue;
                    }
                }
                if spinner.spin(|| gang.remaining.load(Ordering::Acquire) == 0) {
                    break;
                }
                let token = gang.done.prepare();
                if gang.remaining.load(Ordering::Acquire) == 0 {
                    break;
                }
                gang.done.wait(token);
            }
        }
        gang.job.0.set(None);
        gang.active.store(false, Ordering::SeqCst);
        self.gangs.fetch_add(1, Ordering::Relaxed);
        // Safe point: every member has returned. Raise shadow violations
        // and member panics here, on the publishing thread.
        #[cfg(feature = "check-shadow")]
        self.shadow.finish_region();
        if gang.panicked.load(Ordering::SeqCst) && caught.is_ok() {
            panic!("a gang member panicked during an executor-backed parallel region");
        }
        if let Err(payload) = caught {
            std::panic::resume_unwind(payload);
        }
    }

    pub(crate) fn num_workers(&self) -> usize {
        self.n
    }
}

fn worker_main(shared: Arc<ExecShared>, slot: usize) {
    EXEC_SLOT.with(|s| s.set(Some((&*shared as *const ExecShared as usize, slot))));
    let mut spinner = AdaptiveSpin::new();
    loop {
        // Priority order: a gang region ranks just *above* the packets of
        // its own lane (its publisher already holds an in-flight packet
        // hostage — finish it before starting new same-lane work) but
        // *below* every higher lane's packets. Joining a tuner's region
        // ahead of queued point queries or scans is precisely the
        // dispatcher priority inversion this executor exists to kill:
        // under a tune storm the regions arrive back-to-back and a worker
        // that ranks gangs first never looks at the lanes again. A
        // deprioritized region is never stranded — its publisher keeps
        // serving higher-lane packets cooperatively while it waits.
        if shared.gang_lane() == Some(Lane::Interactive) && shared.try_join_gang() {
            continue;
        }
        if let Some((lane, packet)) = shared.find_packet(slot, Lane::Interactive) {
            shared.run_packet(slot, lane, packet);
            continue;
        }
        if shared.gang_lane() == Some(Lane::Background) && shared.try_join_gang() {
            continue;
        }
        if let Some((lane, packet)) = shared.find_packet(slot, Lane::Background) {
            shared.run_packet(slot, lane, packet);
            continue;
        }
        if shared.try_join_gang() {
            continue;
        }
        if let Some((lane, packet)) = shared.find_packet(slot, Lane::Maintenance) {
            shared.run_packet(slot, lane, packet);
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Never abandon an active gang: it may be waiting for this
            // worker's tid (see the publish-side shutdown re-check).
            if shared.gang_visible() {
                continue;
            }
            return;
        }
        // The `queued` loads are SeqCst for the park-side Dekker below (the
        // gang and shutdown wake paths bump the eventcount unconditionally,
        // so prepare/re-check alone covers them).
        let has_work = || {
            shared.queued.iter().any(|q| q.load(Ordering::SeqCst) != 0)
                || shared.gang_visible()
                || shared.shutdown.load(Ordering::SeqCst)
        };
        if spinner.spin(has_work) {
            continue;
        }
        // Park protocol: advertise `parked` *before* the final re-check so
        // it pairs with [`ExecShared::wake`]'s conditional notify (a Dekker
        // on `queued`/`parked` — both sides SeqCst). With the increment
        // after the re-check, a submitter could push, read `parked == 0`,
        // skip the bump, and this worker would sleep on a token prepared
        // before the push — a lost wakeup that strands the packet until the
        // next submission (observed as rare ~2s client-timeout wedges under
        // CPU contention).
        let token = shared.idle.prepare();
        shared.parked.fetch_add(1, Ordering::SeqCst);
        if has_work() {
            shared.parked.fetch_sub(1, Ordering::Relaxed);
            continue;
        }
        shared.idle.wait(token);
        shared.parked.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The executor: a fixed crew of workers serving both lanes, gang regions
/// for engine rounds, and [`RoundChain`]s. Create one per server (or test),
/// attach pools onto it via [`Pool::attach`](crate::Pool::attach), and call
/// [`Executor::shutdown`] (or drop it) when done.
pub struct Executor {
    shared: Arc<ExecShared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.shared.n)
            .finish()
    }
}

impl Executor {
    /// Spawns `workers` executor threads (minimum 1).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is 0.
    pub fn new(workers: usize) -> Executor {
        assert!(workers > 0, "executor requires at least one worker");
        let shared = Arc::new(ExecShared {
            n: workers,
            injectors: [SegQueue::new(), SegQueue::new(), SegQueue::new()],
            locals: (0..workers)
                .map(|_| WorkerSlot {
                    queues: std::array::from_fn(|_| Mutex::new(VecDeque::new())),
                })
                .collect(),
            queued: std::array::from_fn(|_| AtomicUsize::new(0)),
            live: AtomicUsize::new(0),
            idle: WaitSeq::new(),
            parked: AtomicUsize::new(0),
            quiesced: WaitSeq::new(),
            shutdown: AtomicBool::new(false),
            gang: GangState {
                active: AtomicBool::new(false),
                lane: AtomicUsize::new(Lane::Interactive as usize),
                job: GangJob(Cell::new(None)),
                // Saturated: nothing to claim until the first publish.
                claims: AtomicUsize::new(workers),
                remaining: AtomicUsize::new(0),
                panicked: AtomicBool::new(false),
                barrier_arrived: AtomicUsize::new(0),
                barrier_gen: AtomicUsize::new(0),
                done: WaitSeq::new(),
                intent: std::array::from_fn(|_| AtomicUsize::new(0)),
            },
            executed: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
            gangs: AtomicUsize::new(0),
            panicked: AtomicUsize::new(0),
            #[cfg(feature = "check-shadow")]
            shadow: Arc::new(shadow::ShadowLog::new()),
        });
        let handles = (0..workers)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("priograph-exec-{slot}"))
                    .spawn(move || worker_main(shared, slot))
                    .expect("failed to spawn executor worker")
            })
            .collect();
        Executor {
            shared,
            handles: Mutex::new(handles),
        }
    }

    /// Number of worker threads (also the gang size of attached pools).
    pub fn num_workers(&self) -> usize {
        self.shared.n
    }

    /// Submits a packet to a lane's shared injector.
    pub fn submit(&self, lane: Lane, f: impl FnOnce(&ExecCtx<'_>) + Send + 'static) {
        self.shared.push_injector(lane, WorkPacket::new(f));
    }

    /// Submits a packet to a specific worker's deque (stealable; use for
    /// locality, e.g. keeping a graph's queries on warm engines).
    pub fn submit_to(
        &self,
        worker: usize,
        lane: Lane,
        f: impl FnOnce(&ExecCtx<'_>) + Send + 'static,
    ) {
        self.shared
            .push_local(worker % self.shared.n, lane, Box::new(f));
    }

    /// Packets submitted but not yet finished.
    pub fn pending(&self) -> usize {
        self.shared.live.load(Ordering::Acquire)
    }

    /// Blocks until every submitted packet has finished. Packets submitted
    /// concurrently with the wait may or may not be covered.
    pub fn wait_idle(&self) {
        while self.shared.live.load(Ordering::Acquire) != 0 {
            let token = self.shared.quiesced.prepare();
            if self.shared.live.load(Ordering::Acquire) == 0 {
                break;
            }
            self.shared.quiesced.wait(token);
        }
    }

    /// Activity counters since construction.
    pub fn stats(&self) -> ExecutorStats {
        ExecutorStats {
            executed: self.shared.executed.load(Ordering::Relaxed) as u64,
            steals: self.shared.steals.load(Ordering::Relaxed) as u64,
            gangs: self.shared.gangs.load(Ordering::Relaxed) as u64,
            panicked: self.shared.panicked.load(Ordering::Relaxed) as u64,
        }
    }

    /// Stops the workers. Queued packets that have not started are dropped
    /// (their closures run destructors only); an active gang region is
    /// finished first. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.idle.notify_all();
        for handle in self.handles.lock().drain(..) {
            let _ = handle.join();
        }
        // Drop undispatched packets so captured reply channels disconnect.
        for lane in 0..LANES {
            while let Some(p) = self.shared.injectors[lane].pop() {
                drop(p);
                self.shared.queued[lane].fetch_sub(1, Ordering::AcqRel);
                if self.shared.live.fetch_sub(1, Ordering::AcqRel) == 1 {
                    self.shared.quiesced.notify_all();
                }
            }
            for slot in &self.shared.locals {
                let mut q = slot.queues[lane].lock();
                while let Some(p) = q.pop_front() {
                    drop(p);
                    self.shared.queued[lane].fetch_sub(1, Ordering::AcqRel);
                    if self.shared.live.fetch_sub(1, Ordering::AcqRel) == 1 {
                        self.shared.quiesced.notify_all();
                    }
                }
            }
        }
    }

    pub(crate) fn shared(&self) -> &Arc<ExecShared> {
        &self.shared
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One round of a [`RoundChain`]: a lane and the packets that fill it.
pub struct Round {
    /// The lane every packet of this round rides.
    pub lane: Lane,
    /// The round's packets. An empty round is skipped (the driver is asked
    /// again immediately).
    pub packets: Vec<WorkPacket>,
}

impl fmt::Debug for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Round")
            .field("lane", &self.lane)
            .field("packets", &self.packets.len())
            .finish()
    }
}

/// Emits a chain's rounds one bucket at a time. `round` is 0-based and
/// increments once per (possibly empty) emitted round; returning `None`
/// finishes the chain.
pub trait ChainDriver: Send + 'static {
    /// Called with no packets of any earlier round in flight — the previous
    /// bucket has fully drained. Runs on the last-out worker (or on the
    /// starting thread for round 0), so keep it cheap.
    fn next_round(&mut self, round: usize) -> Option<Round>;
}

struct ChainInner {
    exec: Arc<ExecShared>,
    driver: Mutex<Option<Box<dyn ChainDriver>>>,
    /// Packets of the currently open round still in flight. Only touched
    /// between the open (store) and the last-out decrement, so rounds never
    /// overlap.
    outstanding: AtomicUsize,
    rounds_opened: AtomicUsize,
    finished: AtomicBool,
    done: WaitSeq,
}

/// A sequence of packet rounds with bucket open-conditions: round `r + 1`
/// opens when round `r`'s packet count drains to zero, and the last-out
/// worker opens it (mmtk-style). See the module docs.
pub struct RoundChain {
    inner: Arc<ChainInner>,
}

impl fmt::Debug for RoundChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RoundChain")
            .field(
                "rounds_opened",
                &self.inner.rounds_opened.load(Ordering::Relaxed),
            )
            .field("finished", &self.inner.finished.load(Ordering::Relaxed))
            .finish()
    }
}

impl RoundChain {
    /// Starts a chain on `exec`, opening round 0 from the calling thread.
    pub fn start(exec: &Executor, driver: impl ChainDriver) -> RoundChain {
        let inner = Arc::new(ChainInner {
            exec: Arc::clone(exec.shared()),
            driver: Mutex::new(Some(Box::new(driver))),
            outstanding: AtomicUsize::new(0),
            rounds_opened: AtomicUsize::new(0),
            finished: AtomicBool::new(false),
            done: WaitSeq::new(),
        });
        Self::open_next(&inner);
        RoundChain { inner }
    }

    /// Opens buckets until one has packets (or the driver finishes). Runs on
    /// the starting thread first, then on each round's last-out worker.
    fn open_next(inner: &Arc<ChainInner>) {
        loop {
            let round_idx = inner.rounds_opened.fetch_add(1, Ordering::Relaxed);
            let next = {
                let mut guard = inner.driver.lock();
                match guard.as_mut() {
                    Some(driver) => driver.next_round(round_idx),
                    None => None,
                }
            };
            let Some(round) = next else {
                *inner.driver.lock() = None;
                inner.finished.store(true, Ordering::Release);
                inner.done.notify_all();
                return;
            };
            if round.packets.is_empty() {
                continue;
            }
            // Count first, then submit: an early finisher must not see the
            // counter below its own decrement's worth.
            inner
                .outstanding
                .store(round.packets.len(), Ordering::Release);
            for packet in round.packets {
                let chained = Arc::clone(inner);
                inner.exec.push_injector(
                    round.lane,
                    WorkPacket::new(move |ctx| {
                        (packet.run)(ctx);
                        if chained.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
                            // Last-out worker opens the next bucket.
                            RoundChain::open_next(&chained);
                        }
                    }),
                );
            }
            return;
        }
    }

    /// True once the driver returned `None` and every packet has finished.
    pub fn is_finished(&self) -> bool {
        self.inner.finished.load(Ordering::Acquire)
    }

    /// Parks until the chain finishes.
    pub fn wait(&self) {
        while !self.is_finished() {
            let token = self.inner.done.prepare();
            if self.is_finished() {
                break;
            }
            self.inner.done.wait(token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn packets_execute_exactly_once() {
        let exec = Executor::new(4);
        let count = Arc::new(AtomicUsize::new(0));
        for i in 0..200 {
            let count = Arc::clone(&count);
            let lane = if i % 3 == 0 {
                Lane::Background
            } else {
                Lane::Interactive
            };
            exec.submit(lane, move |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        exec.wait_idle();
        assert_eq!(count.load(Ordering::Relaxed), 200);
        assert_eq!(exec.stats().executed, 200);
        assert_eq!(exec.pending(), 0);
    }

    #[test]
    fn interactive_lane_overtakes_background_backlog() {
        // One worker, a queued background backlog, then one interactive
        // packet: the interactive packet must run before every queued
        // background packet (only the already-running one may precede it).
        let exec = Executor::new(1);
        let order = Arc::new(AtomicUsize::new(0));
        let interactive_pos = Arc::new(AtomicUsize::new(usize::MAX));
        let gate = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let order = Arc::clone(&order);
            let gate = Arc::clone(&gate);
            exec.submit(Lane::Background, move |_| {
                // Hold the first packet until the interactive one is queued,
                // so "already running" is deterministic.
                while gate.load(Ordering::Acquire) == 0 {
                    std::hint::spin_loop();
                }
                order.fetch_add(1, Ordering::Relaxed);
            });
        }
        let pos = Arc::clone(&interactive_pos);
        let order2 = Arc::clone(&order);
        exec.submit(Lane::Interactive, move |_| {
            pos.store(order2.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
        });
        gate.store(1, Ordering::Release);
        exec.wait_idle();
        let pos = interactive_pos.load(Ordering::Relaxed);
        assert!(
            pos <= 1,
            "interactive packet ran at position {pos} behind the background backlog"
        );
    }

    #[test]
    fn idle_workers_steal_from_a_loaded_deque() {
        let exec = Executor::new(4);
        let seen = Arc::new(Mutex::new(std::collections::BTreeSet::new()));
        for _ in 0..64 {
            let seen = Arc::clone(&seen);
            // Everything lands on worker 0's deque; the others must steal.
            exec.submit_to(0, Lane::Interactive, move |ctx| {
                seen.lock().insert(ctx.worker());
                std::thread::sleep(Duration::from_micros(300));
            });
        }
        exec.wait_idle();
        let seen = seen.lock();
        assert!(
            seen.len() > 1,
            "expected steals to spread work, only workers {seen:?} ran"
        );
        assert!(exec.stats().steals > 0);
    }

    #[test]
    fn panicking_packet_does_not_kill_the_worker() {
        let exec = Executor::new(2);
        exec.submit(Lane::Interactive, |_| panic!("oops"));
        exec.wait_idle();
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        exec.submit(Lane::Interactive, move |_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        exec.wait_idle();
        assert_eq!(count.load(Ordering::Relaxed), 1);
        assert_eq!(exec.stats().panicked, 1);
    }

    #[test]
    fn submit_local_lands_and_runs() {
        let exec = Executor::new(2);
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        exec.submit(Lane::Interactive, move |ctx| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                ctx.submit_local(Lane::Background, move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        exec.wait_idle();
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn round_chain_rounds_never_overlap_and_last_out_opens_next() {
        // Each round's packets record the open round index; a packet seeing
        // a different index means a bucket opened before its predecessor
        // drained.
        const ROUNDS: usize = 8;
        const PER_ROUND: usize = 12;
        struct Driver {
            current: Arc<AtomicUsize>,
            violations: Arc<AtomicUsize>,
            started: Arc<AtomicUsize>,
        }
        impl ChainDriver for Driver {
            fn next_round(&mut self, round: usize) -> Option<Round> {
                if round >= ROUNDS {
                    return None;
                }
                self.current.store(round, Ordering::SeqCst);
                let packets = (0..PER_ROUND)
                    .map(|_| {
                        let current = Arc::clone(&self.current);
                        let violations = Arc::clone(&self.violations);
                        let started = Arc::clone(&self.started);
                        WorkPacket::new(move |_| {
                            started.fetch_add(1, Ordering::SeqCst);
                            if current.load(Ordering::SeqCst) != round {
                                violations.fetch_add(1, Ordering::SeqCst);
                            }
                            std::thread::sleep(Duration::from_micros(100));
                        })
                    })
                    .collect();
                Some(Round {
                    lane: Lane::Interactive,
                    packets,
                })
            }
        }
        let exec = Executor::new(4);
        let current = Arc::new(AtomicUsize::new(0));
        let violations = Arc::new(AtomicUsize::new(0));
        let started = Arc::new(AtomicUsize::new(0));
        let chain = RoundChain::start(
            &exec,
            Driver {
                current: Arc::clone(&current),
                violations: Arc::clone(&violations),
                started: Arc::clone(&started),
            },
        );
        chain.wait();
        assert!(chain.is_finished());
        assert_eq!(started.load(Ordering::SeqCst), ROUNDS * PER_ROUND);
        assert_eq!(
            violations.load(Ordering::SeqCst),
            0,
            "a round's packets ran while another round was open"
        );
    }

    #[test]
    fn round_chain_skips_empty_rounds_and_finishes_empty_chains() {
        struct Sparse {
            hits: Arc<AtomicUsize>,
        }
        impl ChainDriver for Sparse {
            fn next_round(&mut self, round: usize) -> Option<Round> {
                match round {
                    0 | 1 | 3 => Some(Round {
                        lane: Lane::Background,
                        packets: Vec::new(),
                    }),
                    2 | 4 => {
                        let hits = Arc::clone(&self.hits);
                        Some(Round {
                            lane: Lane::Background,
                            packets: vec![WorkPacket::new(move |_| {
                                hits.fetch_add(1, Ordering::Relaxed);
                            })],
                        })
                    }
                    _ => None,
                }
            }
        }
        let exec = Executor::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let chain = RoundChain::start(
            &exec,
            Sparse {
                hits: Arc::clone(&hits),
            },
        );
        chain.wait();
        assert_eq!(hits.load(Ordering::Relaxed), 2);

        struct Empty;
        impl ChainDriver for Empty {
            fn next_round(&mut self, _round: usize) -> Option<Round> {
                None
            }
        }
        let chain = RoundChain::start(&exec, Empty);
        chain.wait();
        assert!(chain.is_finished());
    }

    #[test]
    fn round_chain_runs_level_synchronous_bfs() {
        // A BFS where each level is one bucket: depths must match a serial
        // BFS exactly, which fails if buckets overlap or packets are lost.
        let n = 256usize;
        // Ring + chords graph, adjacency as a flat Vec<Vec<usize>>.
        let adj: Arc<Vec<Vec<usize>>> = Arc::new(
            (0..n)
                .map(|v| vec![(v + 1) % n, (v + n - 1) % n, (v * 7 + 3) % n])
                .collect(),
        );
        let serial = {
            let mut depth = vec![usize::MAX; n];
            let mut frontier = vec![0usize];
            depth[0] = 0;
            let mut d = 0;
            while !frontier.is_empty() {
                d += 1;
                let mut next = Vec::new();
                for &v in &frontier {
                    for &w in &adj[v] {
                        if depth[w] == usize::MAX {
                            depth[w] = d;
                            next.push(w);
                        }
                    }
                }
                frontier = next;
            }
            depth
        };

        struct Bfs {
            adj: Arc<Vec<Vec<usize>>>,
            depth: Arc<Vec<AtomicUsize>>,
            frontier: Arc<Mutex<Vec<usize>>>,
        }
        impl ChainDriver for Bfs {
            fn next_round(&mut self, round: usize) -> Option<Round> {
                let frontier = std::mem::take(&mut *self.frontier.lock());
                if frontier.is_empty() {
                    return None;
                }
                // One packet per frontier chunk; discovered vertices CAS
                // their depth and append to the next frontier.
                let packets = frontier
                    .chunks(8)
                    .map(|chunk| {
                        let chunk = chunk.to_vec();
                        let adj = Arc::clone(&self.adj);
                        let depth = Arc::clone(&self.depth);
                        let next = Arc::clone(&self.frontier);
                        WorkPacket::new(move |_| {
                            let mut found = Vec::new();
                            for &v in &chunk {
                                for &w in &adj[v] {
                                    if depth[w]
                                        .compare_exchange(
                                            usize::MAX,
                                            round + 1,
                                            Ordering::AcqRel,
                                            Ordering::Acquire,
                                        )
                                        .is_ok()
                                    {
                                        found.push(w);
                                    }
                                }
                            }
                            if !found.is_empty() {
                                next.lock().extend(found);
                            }
                        })
                    })
                    .collect();
                Some(Round {
                    lane: Lane::Background,
                    packets,
                })
            }
        }

        let exec = Executor::new(4);
        let depth: Arc<Vec<AtomicUsize>> =
            Arc::new((0..n).map(|_| AtomicUsize::new(usize::MAX)).collect());
        depth[0].store(0, Ordering::Relaxed);
        let chain = RoundChain::start(
            &exec,
            Bfs {
                adj,
                depth: Arc::clone(&depth),
                frontier: Arc::new(Mutex::new(vec![0])),
            },
        );
        chain.wait();
        let got: Vec<usize> = depth.iter().map(|d| d.load(Ordering::Relaxed)).collect();
        assert_eq!(got, serial);
    }

    #[test]
    fn gang_broadcast_runs_every_tid_once_with_barriers() {
        use crate::Pool;
        let exec = Executor::new(4);
        let pool = Pool::attach(&exec);
        assert_eq!(pool.num_threads(), 4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        let phase1 = AtomicUsize::new(0);
        let phase2_saw = AtomicUsize::new(usize::MAX);
        pool.broadcast(|w| {
            hits[w.tid()].fetch_add(1, Ordering::Relaxed);
            phase1.fetch_add(1, Ordering::SeqCst);
            w.barrier();
            phase2_saw.fetch_min(phase1.load(Ordering::SeqCst), Ordering::SeqCst);
            w.barrier();
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
        assert_eq!(phase2_saw.load(Ordering::Relaxed), 4);
        assert_eq!(exec.stats().gangs, 1);
    }

    #[test]
    fn gang_regions_interleave_with_interactive_packets() {
        // A broadcast with many barriers runs while interactive packets
        // stream in: all packets complete even though the gang holds every
        // worker, because barrier waiters steal the interactive lane.
        use crate::Pool;
        let exec = Arc::new(Executor::new(3));
        let pool = Pool::attach(&exec);
        let served = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let feeder = {
            let exec = Arc::clone(&exec);
            let served = Arc::clone(&served);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut sent = 0usize;
                while !stop.load(Ordering::Acquire) {
                    let served = Arc::clone(&served);
                    exec.submit(Lane::Interactive, move |_| {
                        served.fetch_add(1, Ordering::Relaxed);
                    });
                    sent += 1;
                    std::thread::sleep(Duration::from_micros(50));
                }
                sent
            })
        };
        let rounds = AtomicU64::new(0);
        for _ in 0..20 {
            pool.broadcast(|w| {
                for _ in 0..10 {
                    rounds.fetch_add(1, Ordering::Relaxed);
                    w.barrier();
                }
            });
        }
        stop.store(true, Ordering::Release);
        let sent = feeder.join().unwrap();
        exec.wait_idle();
        assert_eq!(served.load(Ordering::Relaxed), sent);
        assert_eq!(rounds.load(Ordering::Relaxed), 20 * 10 * 3);
    }

    #[test]
    fn concurrent_publishers_serialize_without_deadlock() {
        // Several background packets each publish gang regions; publishers
        // that lose the race must help instead of blocking (a blocked
        // worker could be a tid the active gang needs).
        use crate::Pool;
        let exec = Arc::new(Executor::new(4));
        let total = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let exec2 = Arc::clone(&exec);
            let total = Arc::clone(&total);
            exec.submit(Lane::Background, move |_| {
                let pool = Pool::attach(&exec2);
                pool.broadcast(|w| {
                    total.fetch_add(w.tid() + 1, Ordering::Relaxed);
                    w.barrier();
                });
            });
        }
        exec.wait_idle();
        // Each broadcast sums 1+2+..+n over its participants; serial
        // degradation (nested regions) would sum only 1.
        assert_eq!(total.load(Ordering::Relaxed), 8 * (1 + 2 + 3 + 4));
    }

    #[test]
    fn background_publisher_overtakes_a_maintenance_region_storm() {
        // A Maintenance packet publishes back-to-back gang regions (a tune
        // storm). A Background publisher arriving mid-storm must get the
        // gang flag at the next region boundary: the storm re-publishes
        // within nanoseconds of clearing `active` while owning the cache
        // line, so without the publish-intent deferral the waiter loses
        // dozens of consecutive CAS handoffs. The bound here is the
        // at-most-one in-flight region plus the races around reading the
        // counter — far below the unfair regime.
        use crate::Pool;
        let exec = Arc::new(Executor::new(2));
        let storm_regions = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        {
            let exec2 = Arc::clone(&exec);
            let storm_regions = Arc::clone(&storm_regions);
            let stop = Arc::clone(&stop);
            exec.submit(Lane::Maintenance, move |_| {
                let pool = Pool::attach(&exec2);
                while !stop.load(Ordering::Acquire) {
                    pool.broadcast(|w| {
                        let _ = w.tid();
                    });
                    storm_regions.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        // Let the storm establish its cadence before contending.
        while storm_regions.load(Ordering::SeqCst) < 10 {
            std::thread::yield_now();
        }
        let gap = Arc::new(AtomicUsize::new(usize::MAX));
        {
            let exec2 = Arc::clone(&exec);
            let storm_regions = Arc::clone(&storm_regions);
            let gap = Arc::clone(&gap);
            exec.submit(Lane::Background, move |_| {
                let pool = Pool::attach(&exec2);
                let mark = storm_regions.load(Ordering::SeqCst);
                pool.broadcast(|w| {
                    let _ = w.tid();
                });
                let after = storm_regions.load(Ordering::SeqCst);
                gap.store(after - mark, Ordering::SeqCst);
            });
        }
        while gap.load(Ordering::SeqCst) == usize::MAX {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
        exec.wait_idle();
        let gap = gap.load(Ordering::SeqCst);
        assert!(
            gap <= 3,
            "background publisher waited out {gap} maintenance regions; \
             lane intents are not deferring the storm at region boundaries"
        );
    }

    #[test]
    fn external_threads_broadcast_concurrently_with_packet_load() {
        use crate::Pool;
        let exec = Arc::new(Executor::new(2));
        let sum = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let exec = Arc::clone(&exec);
                let sum = Arc::clone(&sum);
                scope.spawn(move || {
                    let pool = Pool::attach(&exec);
                    for _ in 0..50 {
                        pool.broadcast(|w| {
                            sum.fetch_add(w.tid() + 1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        exec.wait_idle();
        assert_eq!(sum.load(Ordering::Relaxed), 3 * 50 * (1 + 2));
    }

    #[test]
    fn gang_member_panic_poisons_the_region_but_not_the_executor() {
        use crate::Pool;
        let exec = Executor::new(2);
        let pool = Pool::attach(&exec);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.broadcast(|w| {
                if w.tid() == 1 {
                    panic!("member bug");
                }
                // tid 0 waits at a barrier the panicked member never
                // reaches; poisoning must release it.
                w.barrier();
            });
        }));
        assert!(err.is_err(), "publisher must observe the member panic");
        // The executor survives and still runs work.
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        exec.submit(Lane::Interactive, move |_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        exec.wait_idle();
        assert_eq!(count.load(Ordering::Relaxed), 1);
        let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.broadcast(|w| {
                w.barrier();
            });
        }));
        assert!(ok.is_ok(), "the next gang region must start clean");
    }

    #[test]
    fn shutdown_with_queued_work_does_not_hang() {
        let exec = Executor::new(2);
        let gate = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let gate = Arc::clone(&gate);
            exec.submit(Lane::Background, move |_| {
                while gate.load(Ordering::Acquire) == 0 {
                    std::thread::sleep(Duration::from_micros(50));
                }
            });
        }
        gate.store(1, Ordering::Release);
        exec.shutdown();
        assert_eq!(
            exec.pending(),
            0,
            "queued packets must be drained or dropped"
        );
    }

    /// Gang regions must preserve the check-shadow drain protocol: barriers
    /// separate claim windows (legal reuse across them) and cross-worker
    /// overlap within a window is raised at the region's safe point.
    #[cfg(feature = "check-shadow")]
    mod shadow_gang {
        use super::super::*;
        use crate::shadow::{record_claim, ClaimKind};
        use crate::Pool;

        #[test]
        fn barrier_separates_claim_windows_in_gang_regions() {
            let exec = Executor::new(2);
            let pool = Pool::attach(&exec);
            // The same range claimed by different tids is legal when a
            // barrier (window drain) separates the claims.
            pool.broadcast(|w| {
                if w.tid() == 0 {
                    record_claim(0x9000, 64, ClaimKind::SliceWriter);
                }
                w.barrier();
                if w.tid() == 1 {
                    record_claim(0x9000, 64, ClaimKind::SliceWriter);
                }
            });
        }

        #[test]
        fn cross_worker_overlap_in_a_gang_window_panics() {
            let exec = Executor::new(2);
            let pool = Pool::attach(&exec);
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.broadcast(|w| {
                    // Both tids claim overlapping ranges in one window.
                    record_claim(0xA000 + w.tid() * 0x20, 64, ClaimKind::DisjointSlice);
                });
            }));
            assert!(err.is_err(), "overlap must be raised at the safe point");
            // The executor itself survives the poisoned region.
            pool.broadcast(|w| {
                record_claim(0xB000 + w.tid() * 0x100, 64, ClaimKind::DisjointSlice);
                w.barrier();
            });
        }
    }

    #[test]
    fn chaos_mixed_lanes_chains_and_gangs() {
        // A deterministic storm: external submitters, chains, and gang
        // broadcasts all at once. Success is exact conservation of work.
        use crate::Pool;
        let exec = Arc::new(Executor::new(4));
        let packet_hits = Arc::new(AtomicUsize::new(0));
        let gang_hits = Arc::new(AtomicUsize::new(0));
        let chain_hits = Arc::new(AtomicUsize::new(0));

        struct Storm {
            remaining: usize,
            hits: Arc<AtomicUsize>,
        }
        impl ChainDriver for Storm {
            fn next_round(&mut self, _round: usize) -> Option<Round> {
                if self.remaining == 0 {
                    return None;
                }
                self.remaining -= 1;
                let packets = (0..5)
                    .map(|_| {
                        let hits = Arc::clone(&self.hits);
                        WorkPacket::new(move |_| {
                            hits.fetch_add(1, Ordering::Relaxed);
                        })
                    })
                    .collect();
                Some(Round {
                    lane: Lane::Background,
                    packets,
                })
            }
        }

        std::thread::scope(|scope| {
            for t in 0..3 {
                let exec = Arc::clone(&exec);
                let packet_hits = Arc::clone(&packet_hits);
                let gang_hits = Arc::clone(&gang_hits);
                scope.spawn(move || {
                    // Simple LCG so each thread's schedule differs but the
                    // totals are fixed.
                    let mut state = 0x9E3779B9u64.wrapping_mul(t as u64 + 1);
                    let pool = Pool::attach(&exec);
                    for _ in 0..60 {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        match state >> 62 {
                            0 => {
                                let h = Arc::clone(&packet_hits);
                                exec.submit(Lane::Interactive, move |_| {
                                    h.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                            1 => {
                                let h = Arc::clone(&packet_hits);
                                exec.submit(Lane::Background, move |_| {
                                    h.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                            _ => {
                                let h = Arc::clone(&gang_hits);
                                pool.broadcast(|w| {
                                    h.fetch_add(1, Ordering::Relaxed);
                                    w.barrier();
                                });
                            }
                        }
                    }
                });
            }
            let chains: Vec<RoundChain> = (0..4)
                .map(|_| {
                    RoundChain::start(
                        &exec,
                        Storm {
                            remaining: 6,
                            hits: Arc::clone(&chain_hits),
                        },
                    )
                })
                .collect();
            for chain in &chains {
                chain.wait();
            }
        });
        exec.wait_idle();
        assert_eq!(chain_hits.load(Ordering::Relaxed), 4 * 6 * 5);
        // Every gang broadcast contributed exactly num_workers (or 1 when
        // degraded); conservation: gang_hits is a multiple of nothing fixed,
        // but packets are exact.
        let stats = exec.stats();
        assert_eq!(stats.panicked, 0);
        assert!(gang_hits.load(Ordering::Relaxed) > 0);
        assert!(packet_hits.load(Ordering::Relaxed) > 0);
    }
}
