//! A reusable sense-reversing spin barrier.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A reusable barrier for a fixed set of participants.
///
/// Unlike [`std::sync::Barrier`], waiting spins (with periodic yields) rather
/// than immediately sleeping, which matters for the eager engine where
/// thousands of rounds each cross two barriers (paper §3.3 measures tens of
/// thousands of rounds for SSSP on RoadUSA without bucket fusion).
///
/// # Example
///
/// ```
/// use priograph_parallel::SpinBarrier;
/// use std::sync::Arc;
///
/// let barrier = Arc::new(SpinBarrier::new(2));
/// let b = Arc::clone(&barrier);
/// let handle = std::thread::spawn(move || b.wait());
/// barrier.wait();
/// handle.join().unwrap();
/// ```
pub struct SpinBarrier {
    /// Participants that have not yet arrived in the current generation.
    remaining: AtomicUsize,
    /// Generation counter; flips when the last participant arrives.
    generation: AtomicUsize,
    total: usize,
}

impl fmt::Debug for SpinBarrier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpinBarrier")
            .field("total", &self.total)
            .finish()
    }
}

/// Spins between yields while waiting for the generation to flip.
const SPINS_PER_YIELD: usize = 256;

impl SpinBarrier {
    /// Creates a barrier for `total` participants.
    ///
    /// # Panics
    ///
    /// Panics if `total` is 0.
    pub fn new(total: usize) -> Self {
        assert!(total > 0, "barrier requires at least one participant");
        SpinBarrier {
            remaining: AtomicUsize::new(total),
            generation: AtomicUsize::new(0),
            total,
        }
    }

    /// Number of participants required to release the barrier.
    pub fn participants(&self) -> usize {
        self.total
    }

    /// Blocks until all participants have called `wait` in this generation.
    ///
    /// Returns `true` on exactly one participant per generation (the last
    /// arriver), mirroring [`std::sync::BarrierWaitResult::is_leader`].
    pub fn wait(&self) -> bool {
        self.wait_with(|| {})
    }

    /// [`SpinBarrier::wait`], with `on_last` run by the last arriver
    /// *before* the other participants are released — a window in which no
    /// participant can be mutating shared state. The shadow checker
    /// ([`crate::Pool`] under `check-shadow`) drains its claim log here so
    /// claims from two barrier-delimited phases are never conflated.
    pub(crate) fn wait_with(&self, on_last: impl FnOnce()) -> bool {
        if self.total == 1 {
            on_last();
            return true;
        }
        let gen = self.generation.load(Ordering::Acquire);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last arriver: run the hook, then reset the count and release
            // the generation.
            on_last();
            self.remaining.store(self.total, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
            true
        } else {
            let mut spins = 0usize;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins.is_multiple_of(SPINS_PER_YIELD) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn single_participant_never_blocks() {
        let b = SpinBarrier::new(1);
        for _ in 0..10 {
            assert!(b.wait());
        }
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        let n = 4;
        let barrier = Arc::new(SpinBarrier::new(n));
        let leaders = Arc::new(AtomicUsize::new(0));
        let rounds = 50;
        let mut handles = Vec::new();
        for _ in 0..n {
            let barrier = Arc::clone(&barrier);
            let leaders = Arc::clone(&leaders);
            handles.push(std::thread::spawn(move || {
                for _ in 0..rounds {
                    if barrier.wait() {
                        leaders.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::Relaxed), rounds);
    }

    #[test]
    fn barrier_separates_phases() {
        let n = 3;
        let barrier = Arc::new(SpinBarrier::new(n));
        let counter = Arc::new(AtomicUsize::new(0));
        let min_seen = Arc::new(AtomicUsize::new(usize::MAX));
        let mut handles = Vec::new();
        for _ in 0..n {
            let barrier = Arc::clone(&barrier);
            let counter = Arc::clone(&counter);
            let min_seen = Arc::clone(&min_seen);
            handles.push(std::thread::spawn(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                barrier.wait();
                min_seen.fetch_min(counter.load(Ordering::SeqCst), Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(min_seen.load(Ordering::Relaxed), n);
    }

    #[test]
    fn participants_reports_total() {
        assert_eq!(SpinBarrier::new(7).participants(), 7);
    }
}
