//! The persistent worker pool and its broadcast ("parallel region") protocol.
//!
//! A [`Pool`] comes in two flavors behind one API:
//!
//! * **Own** ([`Pool::new`]) — the classic OpenMP-style pool: it owns
//!   `num_threads - 1` OS threads that exist only to run broadcast regions.
//! * **Executor-backed** ([`Pool::attach`]) — no threads of its own; every
//!   broadcast becomes a *gang region* on a [`crate::sched::Executor`], whose
//!   workers also serve work-stealing packet lanes. See [`crate::sched`].
//!
//! Both flavors park their slow paths on futex-backed [`WaitSeq`] event
//! counts (condvar fallback off Linux) behind the [`AdaptiveSpin`] budget.

use crate::barrier::SpinBarrier;
use crate::chunk::ChunkCursor;
use crate::futex::WaitSeq;
use crate::sched::{ExecShared, Executor};
#[cfg(feature = "check-shadow")]
use crate::shadow;
use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

/// Type-erased reference to the closure executed by a broadcast region.
///
/// The pointee lives on the caller's stack for the duration of the broadcast;
/// `Pool::broadcast` does not return until every worker has finished running
/// it, so the erased lifetime never outlives the borrow.
type JobRef = *const (dyn Fn(Worker<'_>) + Sync);

/// A raw fat pointer cell written only while all workers are quiescent.
struct JobSlot(Cell<Option<JobRef>>);

// SAFETY: the slot is written exclusively by the broadcasting thread while no
// worker is running (between the completion wait of the previous job and the
// epoch bump of the next one), and read by workers only after an Acquire load
// of the epoch that happens-after the Release store following the write.
unsafe impl Send for JobSlot {}
unsafe impl Sync for JobSlot {}

struct Shared {
    /// Total participants: `workers.len() + 1` (the broadcasting thread).
    n: usize,
    /// Bumped (Release) to publish a new job to the workers.
    epoch: AtomicUsize,
    /// The current job; valid whenever `epoch` is odd... see protocol notes.
    job: JobSlot,
    /// Workers still running the current job.
    outstanding: AtomicUsize,
    /// Parking for idle workers awaiting the next epoch.
    work: WaitSeq,
    /// Parking for the broadcaster awaiting completion.
    done: WaitSeq,
    shutdown: AtomicBool,
    /// Reusable barrier spanning all `n` participants of a region.
    barrier: SpinBarrier,
    /// The broadcaster's persisted adaptive spin budget (see
    /// [`AdaptiveSpin`]); workers keep theirs on their own stacks.
    caller_spin: AtomicUsize,
    /// Shadow-state claim log shared by every region of this pool.
    #[cfg(feature = "check-shadow")]
    shadow: Arc<shadow::ShadowLog>,
}

/// Smallest adaptive spin budget: even a waiter that keeps parking should
/// absorb back-to-back dispatches without a syscall.
const SPIN_MIN: usize = 1 << 8;
/// Largest adaptive spin budget (order of the old fixed spin count).
const SPIN_MAX: usize = 1 << 16;
/// Starting budget for a fresh waiter.
const SPIN_INIT: usize = 1 << 12;

/// Adaptive spin-before-park controller (ROADMAP "thread-pool scaling").
///
/// At high round rates (road graphs, small Δ) dispatch wake-up latency
/// dominates, so parking on the futex is the expensive path; during long
/// serial gaps, spinning is the expensive path. Each waiter tracks its own
/// budget: a wait that resolves *while spinning* doubles it (rounds are
/// coming fast — stay hot), a wait that exhausts it and parks halves it
/// (rounds are sparse — stop burning the core), clamped to
/// `[SPIN_MIN, SPIN_MAX]`.
pub(crate) struct AdaptiveSpin {
    budget: usize,
}

impl AdaptiveSpin {
    pub(crate) fn new() -> Self {
        AdaptiveSpin { budget: SPIN_INIT }
    }

    fn with_budget(budget: usize) -> Self {
        AdaptiveSpin {
            budget: budget.clamp(SPIN_MIN, SPIN_MAX),
        }
    }

    /// Spins until `done()` holds or the budget runs out, adapting the
    /// budget; returns whether the condition was met while spinning (if
    /// not, the caller should park).
    #[inline]
    pub(crate) fn spin(&mut self, done: impl Fn() -> bool) -> bool {
        for _ in 0..self.budget {
            if done() {
                self.budget = (self.budget * 2).min(SPIN_MAX);
                return true;
            }
            std::hint::spin_loop();
        }
        self.budget = (self.budget / 2).max(SPIN_MIN);
        false
    }
}

thread_local! {
    /// True while the current thread is executing inside a broadcast region
    /// (either as a pool worker or as the broadcasting caller). Used to make
    /// nested parallelism degrade to serial execution instead of deadlocking.
    static IN_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Returns true if the calling thread is currently inside a [`Pool`] region.
///
/// Library code uses this to decide between parallel and serial fallbacks;
/// nested `broadcast`/`parallel_for` calls run serially rather than deadlock.
pub fn in_worker() -> bool {
    IN_REGION.with(|f| f.get())
}

/// Runs `f` with the [`in_worker`] flag raised, restoring it afterwards.
/// Region entry points (pool broadcasts, executor gang members) use this so
/// nested parallelism inside `f` degrades to serial execution.
pub(crate) fn with_in_region<R>(f: impl FnOnce() -> R) -> R {
    IN_REGION.with(|flag| {
        let was = flag.replace(true);
        let result = f();
        flag.set(was);
        result
    })
}

/// A persistent OpenMP-style thread pool.
///
/// The pool owns `num_threads - 1` OS threads; the thread that calls
/// [`Pool::broadcast`] participates as thread id 0, so a `Pool::new(1)` pool
/// spawns nothing and runs everything inline. A pool created with
/// [`Pool::attach`] owns no threads at all — its regions are gang-scheduled
/// onto an executor's workers.
///
/// # Example
///
/// ```
/// use priograph_parallel::Pool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = Pool::new(2);
/// let count = AtomicUsize::new(0);
/// pool.broadcast(|w| {
///     count.fetch_add(w.tid() + 1, Ordering::Relaxed);
///     w.barrier();
/// });
/// assert_eq!(count.into_inner(), 1 + 2);
/// ```
pub struct Pool {
    inner: PoolInner,
}

enum PoolInner {
    /// Classic pool: dedicated worker threads, epoch-published broadcasts.
    Own {
        shared: Arc<Shared>,
        handles: Vec<JoinHandle<()>>,
    },
    /// Executor-backed: broadcasts run as gang regions on the executor.
    Exec(Arc<ExecShared>),
}

impl fmt::Debug for Pool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pool")
            .field("num_threads", &self.num_threads())
            .field(
                "backend",
                &match self.inner {
                    PoolInner::Own { .. } => "own",
                    PoolInner::Exec(_) => "executor",
                },
            )
            .finish()
    }
}

impl Pool {
    /// Creates a pool with `num_threads` participants (minimum 1).
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is 0.
    pub fn new(num_threads: usize) -> Self {
        assert!(num_threads > 0, "pool requires at least one thread");
        let shared = Arc::new(Shared {
            n: num_threads,
            epoch: AtomicUsize::new(0),
            job: JobSlot(Cell::new(None)),
            outstanding: AtomicUsize::new(0),
            work: WaitSeq::new(),
            done: WaitSeq::new(),
            shutdown: AtomicBool::new(false),
            barrier: SpinBarrier::new(num_threads),
            caller_spin: AtomicUsize::new(SPIN_INIT),
            #[cfg(feature = "check-shadow")]
            shadow: Arc::new(shadow::ShadowLog::new()),
        });
        let mut handles = Vec::with_capacity(num_threads.saturating_sub(1));
        for tid in 1..num_threads {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("priograph-worker-{tid}"))
                .spawn(move || worker_loop(&shared, tid))
                .expect("failed to spawn pool worker");
            handles.push(handle);
        }
        Pool {
            inner: PoolInner::Own { shared, handles },
        }
    }

    /// Creates a pool sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Pool::new(n)
    }

    /// Creates a pool whose regions are gang-scheduled onto `exec`'s workers
    /// instead of dedicated threads. Every region spans all
    /// [`Executor::num_workers`] workers; while members wait at a region
    /// [`Worker::barrier`], they steal interactive packets, so point queries
    /// keep flowing through engine rounds. Cheap — attach per call site.
    pub fn attach(exec: &Executor) -> Self {
        Pool {
            inner: PoolInner::Exec(Arc::clone(exec.shared())),
        }
    }

    /// Number of participants in every region (including the caller).
    pub fn num_threads(&self) -> usize {
        match &self.inner {
            PoolInner::Own { shared, .. } => shared.n,
            PoolInner::Exec(exec) => exec.num_workers(),
        }
    }

    /// Runs `f` once on every participant, like an OpenMP `parallel` region.
    ///
    /// The calling thread participates as tid 0. All participants share one
    /// reusable barrier reachable through [`Worker::barrier`]. The call
    /// returns once every participant has returned from `f`.
    ///
    /// Nested broadcasts (calling `broadcast` from inside a region) execute
    /// `f` exactly once, serially, with a single-participant [`Worker`].
    pub fn broadcast<F>(&self, f: F)
    where
        F: Fn(Worker<'_>) + Sync,
    {
        let shared = match &self.inner {
            PoolInner::Exec(exec) => {
                exec.broadcast_gang(&f);
                return;
            }
            PoolInner::Own { shared, .. } => shared,
        };
        if shared.n == 1 || in_worker() {
            with_in_region(|| f(Worker::serial()));
            return;
        }

        let shared = &**shared;
        // Erase the closure's concrete type and lifetime.
        let wide: &(dyn Fn(Worker<'_>) + Sync) = &f;
        // SAFETY: we wait for all workers below before returning, so `f`
        // outlives every use of the erased reference.
        let raw: JobRef = unsafe { std::mem::transmute(wide) };
        shared.job.0.set(Some(raw));
        shared.outstanding.store(shared.n - 1, Ordering::Relaxed);
        shared.epoch.fetch_add(1, Ordering::Release);
        // The notify bumps the wait sequence, so a worker that re-checked
        // the epoch before this line parks on a stale token and returns
        // immediately — the eventcount closes the missed-wake window the
        // old mutex-held epoch bump used to close.
        shared.work.notify_all();

        with_in_region(|| {
            #[cfg(feature = "check-shadow")]
            shadow::enter_region(Arc::clone(&shared.shadow), 0);
            f(Worker {
                tid: 0,
                mode: WorkerMode::Own(shared),
            });
            #[cfg(feature = "check-shadow")]
            shadow::exit_region();
        });

        // Wait for the workers: adaptive spin, then park. The budget
        // persists across broadcasts (in `caller_spin`) so a road-graph
        // round storm keeps the caller hot while sparse dispatch parks.
        let mut spinner = AdaptiveSpin::with_budget(shared.caller_spin.load(Ordering::Relaxed));
        if !spinner.spin(|| shared.outstanding.load(Ordering::Acquire) == 0) {
            while shared.outstanding.load(Ordering::Acquire) != 0 {
                let token = shared.done.prepare();
                if shared.outstanding.load(Ordering::Acquire) == 0 {
                    break;
                }
                shared.done.wait(token);
            }
        }
        shared.caller_spin.store(spinner.budget, Ordering::Relaxed);
        shared.job.0.set(None);
        // Safe point: every participant has returned, so a panic here can
        // strand no worker. Raises any overlap the shadow checker found.
        #[cfg(feature = "check-shadow")]
        shared.shadow.finish_region();
    }

    /// Dynamically scheduled parallel loop over `range`, chunked by `grain`.
    ///
    /// Equivalent to `#pragma omp parallel for schedule(dynamic, grain)`.
    /// Falls back to a serial loop for single-thread pools, nested calls, or
    /// ranges not longer than `grain`.
    pub fn parallel_for<F>(&self, range: std::ops::Range<usize>, grain: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let len = range.end.saturating_sub(range.start);
        let grain = grain.max(1);
        if self.num_threads() == 1 || in_worker() || len <= grain {
            for i in range {
                f(i);
            }
            return;
        }
        let base = range.start;
        let cursor = ChunkCursor::new(len, grain);
        self.broadcast(|_w| {
            while let Some(chunk) = cursor.next_chunk() {
                for i in chunk {
                    f(base + i);
                }
            }
        });
    }

    /// Statically scheduled parallel loop: the range is split into one
    /// contiguous block per participant (`schedule(static)`).
    pub fn parallel_for_static<F>(&self, range: std::ops::Range<usize>, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let len = range.end.saturating_sub(range.start);
        if self.num_threads() == 1 || in_worker() || len <= 1 {
            for i in range {
                f(i);
            }
            return;
        }
        let base = range.start;
        let n = self.num_threads();
        self.broadcast(|w| {
            let (start, end) = split_evenly(len, n, w.tid());
            for i in start..end {
                f(base + i);
            }
        });
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Executor-backed pools borrow the executor's workers; only an
        // owning pool has threads to stop.
        if let PoolInner::Own { shared, handles } = &mut self.inner {
            shared.shutdown.store(true, Ordering::Release);
            shared.epoch.fetch_add(1, Ordering::Release);
            shared.work.notify_all();
            for handle in handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

/// Computes participant `tid`'s contiguous `[start, end)` share of `len`
/// items split across `n` participants, distributing the remainder to the
/// lowest tids.
pub(crate) fn split_evenly(len: usize, n: usize, tid: usize) -> (usize, usize) {
    let per = len / n;
    let rem = len % n;
    let start = tid * per + tid.min(rem);
    let size = per + usize::from(tid < rem);
    (start, (start + size).min(len))
}

fn worker_loop(shared: &Shared, tid: usize) {
    let mut seen_epoch = 0usize;
    let mut spinner = AdaptiveSpin::new();
    loop {
        // Wait for a new epoch: adaptive spin, then park on the futex. Each
        // worker's budget adapts independently to its observed dispatch rate.
        if !spinner.spin(|| shared.epoch.load(Ordering::Acquire) != seen_epoch) {
            while shared.epoch.load(Ordering::Acquire) == seen_epoch {
                let token = shared.work.prepare();
                if shared.epoch.load(Ordering::Acquire) != seen_epoch {
                    break;
                }
                shared.work.wait(token);
            }
        }
        seen_epoch = shared.epoch.load(Ordering::Acquire);
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let Some(raw) = shared.job.0.get() else {
            continue;
        };
        // SAFETY: the broadcaster keeps the closure alive until `outstanding`
        // reaches zero, which only happens after this call returns.
        let job: &(dyn Fn(Worker<'_>) + Sync) = unsafe { &*raw };
        with_in_region(|| {
            #[cfg(feature = "check-shadow")]
            shadow::enter_region(Arc::clone(&shared.shadow), tid);
            job(Worker {
                tid,
                mode: WorkerMode::Own(shared),
            });
            #[cfg(feature = "check-shadow")]
            shadow::exit_region();
        });
        if shared.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
            shared.done.notify_all();
        }
    }
}

/// Which synchronization backend a [`Worker`] handle belongs to.
enum WorkerMode<'a> {
    /// Single-participant region (serial fallback): barriers are no-ops.
    Serial,
    /// Region on an owning pool's dedicated threads.
    Own(&'a Shared),
    /// Gang region on an executor (barrier waiters steal packets).
    Gang(&'a ExecShared),
}

/// Handle given to each participant of a [`Pool::broadcast`] region.
pub struct Worker<'a> {
    tid: usize,
    mode: WorkerMode<'a>,
}

impl fmt::Debug for Worker<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Worker")
            .field("tid", &self.tid)
            .field("num_threads", &self.num_threads())
            .finish()
    }
}

impl<'a> Worker<'a> {
    /// A single-participant worker for serially degraded regions.
    pub(crate) fn serial() -> Worker<'static> {
        Worker {
            tid: 0,
            mode: WorkerMode::Serial,
        }
    }

    /// A gang-region member on an executor.
    pub(crate) fn gang(tid: usize, exec: &'a ExecShared) -> Worker<'a> {
        Worker {
            tid,
            mode: WorkerMode::Gang(exec),
        }
    }

    /// This participant's id in `0..num_threads`.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Number of participants in this region.
    pub fn num_threads(&self) -> usize {
        match self.mode {
            WorkerMode::Serial => 1,
            WorkerMode::Own(shared) => shared.n,
            WorkerMode::Gang(exec) => exec.num_workers(),
        }
    }

    /// Region-wide barrier: blocks until every participant has arrived.
    ///
    /// No-op for serial (single participant) regions. Every participant must
    /// execute the same sequence of `barrier()` calls, as with OpenMP. In
    /// gang regions, waiters serve interactive packets instead of spinning.
    pub fn barrier(&self) {
        match self.mode {
            WorkerMode::Serial => {}
            WorkerMode::Own(shared) => {
                #[cfg(feature = "check-shadow")]
                // The last arriver drains the shadow claim log before
                // releasing the barrier: ranges legitimately reused across
                // phases (frontier resets) must not be compared across it.
                shared.barrier.wait_with(|| shared.shadow.drain_check());
                #[cfg(not(feature = "check-shadow"))]
                shared.barrier.wait();
            }
            WorkerMode::Gang(exec) => exec.gang_barrier(),
        }
    }

    /// This participant's contiguous `[start, end)` share of `len` items
    /// (static partitioning).
    pub fn static_range(&self, len: usize) -> std::ops::Range<usize> {
        let (start, end) = split_evenly(len, self.num_threads(), self.tid);
        start..end
    }
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// The process-wide default pool, sized to available parallelism.
///
/// Experiments that sweep thread counts (paper Figure 11) construct their own
/// [`Pool`]s instead.
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(Pool::with_available_parallelism)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn adaptive_spin_budget_tracks_outcomes() {
        let mut s = AdaptiveSpin::new();
        let start = s.budget;
        assert!(s.spin(|| true), "immediate success resolves while spinning");
        assert_eq!(s.budget, start * 2);
        assert!(!s.spin(|| false), "exhaustion reports a park");
        assert_eq!(s.budget, start);
        // Repeated parks floor at SPIN_MIN; repeated hits cap at SPIN_MAX.
        for _ in 0..64 {
            let _ = s.spin(|| false);
        }
        assert_eq!(s.budget, SPIN_MIN);
        for _ in 0..64 {
            let _ = s.spin(|| true);
        }
        assert_eq!(s.budget, SPIN_MAX);
        assert_eq!(AdaptiveSpin::with_budget(0).budget, SPIN_MIN);
        assert_eq!(AdaptiveSpin::with_budget(usize::MAX).budget, SPIN_MAX);
    }

    #[test]
    fn rapid_rebroadcast_after_long_idle_still_runs_everywhere() {
        // Exercises both adaptive regimes: a parked pool (idle gap shrinks
        // budgets) must still execute every following burst correctly.
        let pool = Pool::new(4);
        let count = AtomicUsize::new(0);
        for burst in 0..3 {
            if burst > 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            for _ in 0..100 {
                pool.broadcast(|_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        assert_eq!(count.into_inner(), 3 * 100 * 4);
    }

    #[test]
    fn broadcast_runs_every_tid_exactly_once() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.broadcast(|w| {
            hits[w.tid()].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn broadcast_is_reusable_many_times() {
        let pool = Pool::new(3);
        let count = AtomicUsize::new(0);
        for _ in 0..200 {
            pool.broadcast(|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.into_inner(), 200 * 3);
    }

    #[test]
    fn barrier_orders_phases() {
        let pool = Pool::new(4);
        let phase1 = AtomicUsize::new(0);
        let phase2_saw = AtomicUsize::new(usize::MAX);
        pool.broadcast(|w| {
            phase1.fetch_add(1, Ordering::SeqCst);
            w.barrier();
            // After the barrier every thread must observe all 4 increments.
            phase2_saw.fetch_min(phase1.load(Ordering::SeqCst), Ordering::SeqCst);
            w.barrier();
        });
        assert_eq!(phase2_saw.into_inner(), 4);
    }

    #[test]
    fn repeated_barriers_do_not_deadlock() {
        let pool = Pool::new(4);
        let count = AtomicUsize::new(0);
        pool.broadcast(|w| {
            for _ in 0..100 {
                count.fetch_add(1, Ordering::Relaxed);
                w.barrier();
            }
        });
        assert_eq!(count.into_inner(), 400);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        let mut touched = false;
        // Closure captures &mut via Cell-free trick: use atomic for Sync bound.
        let flag = AtomicUsize::new(0);
        pool.broadcast(|w| {
            assert_eq!(w.tid(), 0);
            assert_eq!(w.num_threads(), 1);
            w.barrier(); // must be a no-op
            flag.store(1, Ordering::Relaxed);
        });
        if flag.into_inner() == 1 {
            touched = true;
        }
        assert!(touched);
    }

    #[test]
    fn nested_broadcast_degrades_to_serial() {
        let pool = Pool::new(4);
        let inner_runs = AtomicUsize::new(0);
        pool.broadcast(|_w| {
            pool.broadcast(|iw| {
                assert_eq!(iw.num_threads(), 1);
                inner_runs.fetch_add(1, Ordering::Relaxed);
            });
        });
        // Each of the 4 outer participants ran the inner region serially.
        assert_eq!(inner_runs.into_inner(), 4);
    }

    #[test]
    fn parallel_for_visits_each_index_once() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(0..1000, 7, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_static_visits_each_index_once() {
        let pool = Pool::new(3);
        let hits: Vec<AtomicUsize> = (0..997).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for_static(0..997, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_empty_range_is_fine() {
        let pool = Pool::new(2);
        pool.parallel_for(5..5, 64, |_| panic!("must not run"));
    }

    #[test]
    fn split_evenly_covers_range_without_overlap() {
        for len in [0usize, 1, 7, 64, 1000] {
            for n in 1..9 {
                let mut next = 0;
                for tid in 0..n {
                    let (s, e) = split_evenly(len, n, tid);
                    assert_eq!(s, next);
                    assert!(e >= s);
                    next = e;
                }
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn worker_static_range_is_consistent() {
        let pool = Pool::new(4);
        let total = AtomicUsize::new(0);
        pool.broadcast(|w| {
            let r = w.static_range(103);
            total.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(total.into_inner(), 103);
    }

    #[test]
    fn attached_pool_runs_loops_on_executor_workers() {
        let exec = crate::sched::Executor::new(3);
        let pool = Pool::attach(&exec);
        assert_eq!(pool.num_threads(), 3);
        let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(0..500, 7, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        let total = AtomicUsize::new(0);
        pool.parallel_for_static(0..103, |_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.into_inner(), 103);
    }

    #[test]
    fn attached_pool_nested_broadcast_degrades_to_serial() {
        let exec = crate::sched::Executor::new(2);
        let pool = Pool::attach(&exec);
        let inner_runs = AtomicUsize::new(0);
        pool.broadcast(|_w| {
            pool.broadcast(|iw| {
                assert_eq!(iw.num_threads(), 1);
                inner_runs.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(inner_runs.into_inner(), 2);
    }
}
