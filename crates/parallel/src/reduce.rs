//! Parallel reductions over index ranges.

use crate::pool::Pool;
use parking_lot::Mutex;

/// Reduces `map(i)` over `range` with the associative operator `combine`,
/// starting from `identity`.
///
/// # Example
///
/// ```
/// use priograph_parallel::{reduce::parallel_reduce, Pool};
///
/// let pool = Pool::new(4);
/// let max = parallel_reduce(&pool, 0..1000, i64::MIN, |i| i as i64, i64::max);
/// assert_eq!(max, 999);
/// ```
pub fn parallel_reduce<T, M, C>(
    pool: &Pool,
    range: std::ops::Range<usize>,
    identity: T,
    map: M,
    combine: C,
) -> T
where
    T: Clone + Send + Sync,
    M: Fn(usize) -> T + Sync,
    C: Fn(T, T) -> T + Sync + Send,
{
    let len = range.end.saturating_sub(range.start);
    if pool.num_threads() == 1 || crate::pool::in_worker() || len < 1024 {
        let mut acc = identity;
        for i in range {
            acc = combine(acc, map(i));
        }
        return acc;
    }
    let base = range.start;
    let partials: Mutex<Vec<T>> = Mutex::new(Vec::new());
    pool.broadcast(|w| {
        let r = w.static_range(len);
        let mut acc = identity.clone();
        for i in r {
            acc = combine(acc, map(base + i));
        }
        partials.lock().push(acc);
    });
    partials.into_inner().into_iter().fold(identity, combine)
}

/// Sums `map(i)` over `range` (u64 accumulator).
pub fn parallel_sum<M>(pool: &Pool, range: std::ops::Range<usize>, map: M) -> u64
where
    M: Fn(usize) -> u64 + Sync,
{
    parallel_reduce(pool, range, 0u64, map, |a, b| a + b)
}

/// Counts the indices in `range` for which `pred` holds.
pub fn parallel_count<P>(pool: &Pool, range: std::ops::Range<usize>, pred: P) -> usize
where
    P: Fn(usize) -> bool + Sync,
{
    parallel_sum(pool, range, |i| u64::from(pred(i))) as usize
}

/// Minimum of `map(i)` over `range`, or `None` for an empty range.
pub fn parallel_min<M>(pool: &Pool, range: std::ops::Range<usize>, map: M) -> Option<i64>
where
    M: Fn(usize) -> i64 + Sync,
{
    if range.is_empty() {
        return None;
    }
    Some(parallel_reduce(pool, range, i64::MAX, map, i64::min))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_closed_form() {
        let pool = Pool::new(4);
        let s = parallel_sum(&pool, 0..100_000, |i| i as u64);
        assert_eq!(s, 99_999u64 * 100_000 / 2);
    }

    #[test]
    fn count_matches_filter() {
        let pool = Pool::new(3);
        let c = parallel_count(&pool, 0..10_000, |i| i % 7 == 0);
        assert_eq!(c, (0..10_000).filter(|i| i % 7 == 0).count());
    }

    #[test]
    fn min_of_empty_is_none() {
        let pool = Pool::new(2);
        assert_eq!(parallel_min(&pool, 3..3, |i| i as i64), None);
    }

    #[test]
    fn min_matches_iterator_min() {
        let pool = Pool::new(4);
        let vals: Vec<i64> = (0..50_000)
            .map(|i| ((i * 2654435761u64) % 1000) as i64)
            .collect();
        let got = parallel_min(&pool, 0..vals.len(), |i| vals[i]);
        assert_eq!(got, vals.iter().copied().min());
    }

    #[test]
    fn small_ranges_use_serial_path() {
        let pool = Pool::new(4);
        let s = parallel_sum(&pool, 0..10, |i| i as u64);
        assert_eq!(s, 45);
    }
}
