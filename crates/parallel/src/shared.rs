//! Shared mutable storage for writes to provably disjoint locations.
//!
//! The lazy engine allocates an output-edge buffer and uses a prefix sum over
//! frontier out-degrees to assign each source vertex a private sub-range of
//! the buffer (paper Figure 9(a), `setupOutputBufferOffsets`). Threads then
//! write concurrently into their disjoint sub-ranges without synchronization.
//! Rust's borrow rules cannot see that disjointness, so this module provides
//! minimal, audited escape hatches:
//!
//! * [`DisjointSlice`] — element-granularity disjoint writes;
//! * [`SliceWriter`] — range-granularity `memcpy` writes into a borrowed
//!   slice (the copy-out step of scan compaction);
//! * [`WorkerLocal`] — one cache-padded slot per pool worker, the backbone
//!   of the zero-allocation frontier pipeline: workers fill their own slot
//!   during a region (no locks, no false sharing), and the merge phase
//!   reads all slots after a barrier (see [`crate::scan::compact_into`]).
//!
//! # The worker-local round protocol
//!
//! Every round of a bucket engine follows the same shape:
//!
//! 1. **fill** — inside a [`crate::Pool::broadcast`] region, worker `tid`
//!    mutates only slot `tid` (via [`WorkerLocal::with_mut`]);
//! 2. **merge** — after a barrier (or after the region ends), slots are
//!    read-only ([`WorkerLocal::peek`]) and their contents are copied to
//!    prefix-sum-assigned ranges of the output;
//! 3. **reset** — slot vectors are cleared (capacity retained) so the next
//!    round allocates nothing.
//!
//! The phases never overlap, which is exactly the aliasing discipline the
//! safety contracts below demand.

use crossbeam::utils::CachePadded;
use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
#[cfg(feature = "check-shadow")]
use std::sync::atomic::{AtomicU8, Ordering};

/// A slice whose elements may be written concurrently at *disjoint* indices.
///
/// All methods are safe to call; the safety obligation is concentrated in the
/// contract that no two threads touch the same index without other
/// synchronization, and that reads do not race writes to the same index.
/// Engine code establishes this via prefix-sum-assigned ranges or
/// owner-computes partitioning.
pub struct DisjointSlice<T> {
    cells: Box<[UnsafeCell<T>]>,
}

// SAFETY: access discipline (disjoint indices across threads) is documented
// on every mutating method; `T: Send` suffices because values only move
// across threads as whole elements.
unsafe impl<T: Send> Send for DisjointSlice<T> {}
unsafe impl<T: Send> Sync for DisjointSlice<T> {}

impl<T: fmt::Debug> fmt::Debug for DisjointSlice<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DisjointSlice(len = {})", self.cells.len())
    }
}

impl<T: Clone> DisjointSlice<T> {
    /// Allocates `len` copies of `value`.
    pub fn new(len: usize, value: T) -> Self {
        DisjointSlice {
            cells: (0..len).map(|_| UnsafeCell::new(value.clone())).collect(),
        }
    }
}

impl<T> DisjointSlice<T> {
    /// Builds the slice from an existing vector.
    pub fn from_vec(values: Vec<T>) -> Self {
        DisjointSlice {
            cells: values.into_iter().map(UnsafeCell::new).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety contract (checked by callers, not the compiler)
    ///
    /// No other thread may read or write `index` concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn write(&self, index: usize, value: T) {
        let cell = &self.cells[index];
        // SAFETY: per the access contract, this thread has exclusive access
        // to `index` for the duration of the call.
        unsafe { *cell.get() = value }
    }

    /// Reads the value at `index` (requires `T: Copy`).
    ///
    /// # Safety contract
    ///
    /// No thread may be writing `index` concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn read(&self, index: usize) -> T
    where
        T: Copy,
    {
        let cell = &self.cells[index];
        // SAFETY: per the access contract, no concurrent writer exists.
        unsafe { *cell.get() }
    }

    /// Consumes the slice, returning the underlying values.
    pub fn into_vec(self) -> Vec<T> {
        self.cells
            .into_vec()
            .into_iter()
            .map(UnsafeCell::into_inner)
            .collect()
    }

    /// Exclusive view of the contents (no concurrent access possible).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: `&mut self` guarantees exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.cells.as_mut_ptr().cast(), self.cells.len()) }
    }
}

impl<T: Copy> DisjointSlice<T> {
    /// Copies `src` into `[offset, offset + src.len())` with one `memcpy`.
    ///
    /// # Safety contract
    ///
    /// As for [`DisjointSlice::write`], applied to the whole range: no other
    /// thread may read or write any index of the range concurrently.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the slice.
    #[inline]
    pub fn write_slice(&self, offset: usize, src: &[T]) {
        assert!(
            offset
                .checked_add(src.len())
                .is_some_and(|e| e <= self.cells.len()),
            "range {offset}..{} out of bounds for DisjointSlice of len {}",
            offset + src.len(),
            self.cells.len()
        );
        #[cfg(feature = "check-shadow")]
        crate::shadow::record_claim(
            self.cells.as_ptr() as usize + offset * std::mem::size_of::<T>(),
            std::mem::size_of_val(src),
            crate::shadow::ClaimKind::DisjointSlice,
        );
        // SAFETY: `UnsafeCell<T>` has the same layout as `T`, the bounds were
        // checked above, and the access contract rules out concurrent use of
        // the range.
        unsafe {
            let dst = self.cells.as_ptr().add(offset) as *mut T;
            std::ptr::copy_nonoverlapping(src.as_ptr(), dst, src.len());
        }
    }

    /// Appends `[start, start + len)` to `out` with one `memcpy`, reusing
    /// `out`'s capacity.
    ///
    /// # Safety contract
    ///
    /// No thread may be writing any index of the range concurrently.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the slice.
    pub fn copy_range_into(&self, start: usize, len: usize, out: &mut Vec<T>) {
        assert!(
            start
                .checked_add(len)
                .is_some_and(|e| e <= self.cells.len()),
            "range {start}..{} out of bounds for DisjointSlice of len {}",
            start + len,
            self.cells.len()
        );
        out.reserve(len);
        // Reads never race other reads; only writes claim shadow ranges.
        // SAFETY: bounds checked; the reserve guarantees spare capacity; the
        // access contract rules out concurrent writers of the source range.
        unsafe {
            let src = self.cells.as_ptr().add(start) as *const T;
            let dst = out.as_mut_ptr().add(out.len());
            std::ptr::copy_nonoverlapping(src, dst, len);
            out.set_len(out.len() + len);
        }
    }
}

/// A borrowed slice whose disjoint sub-ranges may be written from several
/// threads with `memcpy`-granularity stores.
///
/// Where [`DisjointSlice`] owns its storage and writes element-by-element,
/// `SliceWriter` borrows existing storage (typically a `Vec`'s spare
/// capacity during scan compaction) and copies whole ranges. The safety
/// obligation is the same: no two threads may touch overlapping ranges, and
/// reads must not race writes.
pub struct SliceWriter<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the access discipline (disjoint ranges across threads) is
// documented on every write method; `T: Send` suffices because values only
// cross threads as whole elements.
unsafe impl<T: Send> Send for SliceWriter<'_, T> {}
unsafe impl<T: Send> Sync for SliceWriter<'_, T> {}

impl<T: fmt::Debug> fmt::Debug for SliceWriter<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SliceWriter(len = {})", self.len)
    }
}

impl<'a, T> SliceWriter<'a, T> {
    /// Wraps an initialized slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        SliceWriter {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Wraps the spare capacity of `vec` (everything past `vec.len()`).
    ///
    /// The caller later commits written elements with `Vec::set_len`; until
    /// then the memory is uninitialized, so only [`SliceWriter::write_copy`]
    /// (which never reads the destination) may be used, and every committed
    /// index must have been written.
    pub fn spare(vec: &'a mut Vec<T>) -> Self {
        let offset = vec.len();
        let spare = vec.capacity() - offset;
        SliceWriter {
            // SAFETY: `offset <= capacity`, so the add stays in the
            // allocation.
            ptr: unsafe { vec.as_mut_ptr().add(offset) },
            len: spare,
            _marker: PhantomData,
        }
    }

    /// Number of writable elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing can be written.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copies `src` to `[offset, offset + src.len())`.
    ///
    /// # Safety contract (checked by callers, not the compiler)
    ///
    /// No other thread may access the destination range concurrently.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the writer's length.
    #[inline]
    pub fn write_copy(&self, offset: usize, src: &[T])
    where
        T: Copy,
    {
        assert!(
            offset.checked_add(src.len()).is_some_and(|e| e <= self.len),
            "range {offset}..{} out of bounds for SliceWriter of len {}",
            offset + src.len(),
            self.len
        );
        #[cfg(feature = "check-shadow")]
        crate::shadow::record_claim(
            self.ptr as usize + offset * std::mem::size_of::<T>(),
            std::mem::size_of_val(src),
            crate::shadow::ClaimKind::SliceWriter,
        );
        // SAFETY: bounds checked above; the access contract rules out
        // concurrent use of the range; `T: Copy` means no drop obligations.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr.add(offset), src.len());
        }
    }
}

/// One cache-padded slot per pool worker.
///
/// Workers address their own slot by thread id inside a broadcast region
/// ([`WorkerLocal::with_mut`]); merge phases read every slot after the
/// region (or after a barrier) with [`WorkerLocal::peek`]. Constructed
/// empty-able and grown with [`WorkerLocal::ensure`] so long-lived owners
/// (bucket queues, engines) adapt to whatever pool they are handed without
/// reallocating in the steady state.
pub struct WorkerLocal<T> {
    /// Each slot is [`CachePadded`] so per-worker hot buffers never
    /// false-share.
    slots: Box<[CachePadded<UnsafeCell<T>>]>,
    /// One borrow flag per slot: nonzero while a [`WorkerLocal::with_mut`]
    /// borrow is live, so the shadow checker can catch a `peek` or second
    /// `with_mut` racing it.
    #[cfg(feature = "check-shadow")]
    borrows: Box<[AtomicU8]>,
}

// SAFETY: slot access follows the fill/merge/reset protocol documented on
// the module: a slot is mutated only by its owning worker (`with_mut`,
// requiring `T: Send` to move the access across threads), and shared reads
// (`peek`, requiring `T: Sync`) only happen in phases with no mutation.
unsafe impl<T: Send> Send for WorkerLocal<T> {}
unsafe impl<T: Send + Sync> Sync for WorkerLocal<T> {}

impl<T: fmt::Debug> fmt::Debug for WorkerLocal<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WorkerLocal(workers = {})", self.slots.len())
    }
}

impl<T: Default> Default for WorkerLocal<T> {
    fn default() -> Self {
        WorkerLocal::new(0)
    }
}

impl<T: Default> WorkerLocal<T> {
    /// Creates one default-initialized slot per worker.
    pub fn new(workers: usize) -> Self {
        WorkerLocal {
            slots: (0..workers)
                .map(|_| CachePadded::new(UnsafeCell::new(T::default())))
                .collect(),
            #[cfg(feature = "check-shadow")]
            borrows: (0..workers).map(|_| AtomicU8::new(0)).collect(),
        }
    }

    /// Grows to at least `workers` slots, preserving existing contents.
    /// No-op (and no allocation) when already large enough — call freely
    /// once per round.
    pub fn ensure(&mut self, workers: usize) {
        if self.slots.len() >= workers {
            return;
        }
        let mut slots: Vec<CachePadded<UnsafeCell<T>>> = std::mem::take(&mut self.slots).into_vec();
        slots.resize_with(workers, || CachePadded::new(UnsafeCell::new(T::default())));
        self.slots = slots.into_boxed_slice();
        #[cfg(feature = "check-shadow")]
        {
            // `&mut self` means no borrow can be live; fresh flags suffice.
            self.borrows = (0..workers).map(|_| AtomicU8::new(0)).collect();
        }
    }
}

impl<T> WorkerLocal<T> {
    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no slots exist.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Runs `f` with exclusive access to slot `tid`.
    ///
    /// # Safety contract (checked by callers, not the compiler)
    ///
    /// Only the worker owning `tid` may call this while a region is active,
    /// no [`WorkerLocal::peek`] of the slot may overlap it, and `f` must not
    /// re-enter `with_mut` for the same slot.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of bounds.
    #[inline]
    pub fn with_mut<R>(&self, tid: usize, f: impl FnOnce(&mut T) -> R) -> R {
        let cell: &UnsafeCell<T> = &self.slots[tid];
        #[cfg(feature = "check-shadow")]
        self.shadow_enter_mut(tid);
        // SAFETY: per the access contract the owning worker has exclusive
        // access to this slot for the duration of the call.
        let out = f(unsafe { &mut *cell.get() });
        #[cfg(feature = "check-shadow")]
        self.shadow_exit_mut(tid);
        out
    }

    /// Shared read of slot `tid`.
    ///
    /// # Safety contract
    ///
    /// No thread may hold a [`WorkerLocal::with_mut`] borrow of the same
    /// slot concurrently (merge phases run after a barrier, so fills are
    /// complete).
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of bounds.
    #[inline]
    pub fn peek(&self, tid: usize) -> &T {
        let cell: &UnsafeCell<T> = &self.slots[tid];
        #[cfg(feature = "check-shadow")]
        if self.borrows[tid].load(Ordering::Acquire) != 0 {
            crate::shadow::report_violation(format!(
                "WorkerLocal slot {tid} peeked while a with_mut borrow is live"
            ));
        }
        // SAFETY: per the access contract no mutable borrow is live.
        unsafe { &*cell.get() }
    }

    /// Exclusive access to slot `tid` (no concurrent access possible).
    pub fn get_mut(&mut self, tid: usize) -> &mut T {
        self.slots[tid].get_mut()
    }

    /// Iterates over all slots exclusively (for merge/reset phases).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut().map(|slot| slot.get_mut())
    }
}

#[cfg(feature = "check-shadow")]
impl<T> WorkerLocal<T> {
    fn shadow_enter_mut(&self, tid: usize) {
        // Inside a pool region the owner-computes protocol demands workers
        // only touch their own slot; outside (tests, serial merge phases)
        // any caller may, as long as borrows never overlap.
        if let Some(cur) = crate::shadow::current_tid() {
            if cur != tid {
                crate::shadow::report_violation(format!(
                    "worker {cur} entered WorkerLocal slot {tid} via with_mut \
                     (owner-computes protocol violated)"
                ));
            }
        }
        if self.borrows[tid].swap(1, Ordering::AcqRel) != 0 {
            crate::shadow::report_violation(format!(
                "WorkerLocal slot {tid} double-borrowed via with_mut"
            ));
        }
    }

    fn shadow_exit_mut(&self, tid: usize) {
        self.borrows[tid].store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn disjoint_parallel_writes_land() {
        let slice = Arc::new(DisjointSlice::new(1000, 0usize));
        let mut handles = Vec::new();
        for t in 0..4 {
            let slice = Arc::clone(&slice);
            handles.push(std::thread::spawn(move || {
                let mut i = t;
                while i < 1000 {
                    slice.write(i, i * 2);
                    i += 4;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let out = Arc::try_unwrap(slice).unwrap().into_vec();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn read_after_write_round_trips() {
        let slice = DisjointSlice::new(4, 0i64);
        slice.write(3, 42);
        assert_eq!(slice.read(3), 42);
        assert_eq!(slice.read(0), 0);
    }

    #[test]
    fn from_vec_and_as_mut_slice() {
        let mut slice = DisjointSlice::from_vec(vec![1, 2, 3]);
        slice.as_mut_slice()[1] = 9;
        assert_eq!(slice.into_vec(), vec![1, 9, 3]);
        let empty = DisjointSlice::from_vec(Vec::<u8>::new());
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
    }

    #[test]
    fn write_slice_and_copy_range_round_trip() {
        let slice = DisjointSlice::new(8, 0u32);
        slice.write_slice(2, &[7, 8, 9]);
        let mut out = vec![100];
        slice.copy_range_into(1, 5, &mut out);
        assert_eq!(out, vec![100, 0, 7, 8, 9, 0]);
        slice.write_slice(8, &[]); // empty write at the end is in bounds
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn write_slice_past_end_panics() {
        DisjointSlice::new(2, 0u32).write_slice(1, &[1, 2]);
    }

    #[test]
    fn slice_writer_parallel_disjoint_ranges() {
        let mut data = vec![0u32; 100];
        let writer = SliceWriter::new(&mut data);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let writer = &writer;
                scope.spawn(move || {
                    let src: Vec<u32> = (0..25).map(|i| (t * 25 + i) as u32).collect();
                    writer.write_copy(t * 25, &src);
                });
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn slice_writer_spare_commits_into_vec() {
        let mut v: Vec<u32> = vec![1, 2];
        v.reserve(4);
        let writer = SliceWriter::spare(&mut v);
        assert!(writer.len() >= 4);
        assert!(!writer.is_empty());
        writer.write_copy(0, &[3, 4]);
        // SAFETY: indices 0..2 of the spare were written above.
        unsafe { v.set_len(4) };
        assert_eq!(v, vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_writer_overflow_panics() {
        let mut data = vec![0u8; 2];
        SliceWriter::new(&mut data).write_copy(1, &[1, 2]);
    }

    #[test]
    fn worker_local_fill_then_merge() {
        let locals: WorkerLocal<Vec<usize>> = WorkerLocal::new(4);
        std::thread::scope(|scope| {
            for tid in 0..4 {
                let locals = &locals;
                scope.spawn(move || {
                    locals.with_mut(tid, |buf| buf.extend([tid, tid * 10]));
                });
            }
        });
        let mut merged: Vec<usize> = (0..4).flat_map(|t| locals.peek(t).clone()).collect();
        merged.sort_unstable();
        assert_eq!(merged, vec![0, 0, 1, 2, 3, 10, 20, 30]);
    }

    #[test]
    fn worker_local_ensure_preserves_and_grows() {
        let mut locals: WorkerLocal<Vec<u32>> = WorkerLocal::default();
        assert!(locals.is_empty());
        locals.ensure(2);
        locals.get_mut(1).push(42);
        locals.ensure(1); // shrink request is a no-op
        assert_eq!(locals.len(), 2);
        locals.ensure(4);
        assert_eq!(locals.len(), 4);
        assert_eq!(locals.peek(1), &vec![42], "growth keeps slot contents");
        assert!(locals.peek(3).is_empty());
        let total: usize = locals.iter_mut().map(|b| b.len()).sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn worker_local_slots_are_cache_padded() {
        let locals: WorkerLocal<u64> = WorkerLocal::new(2);
        let a = locals.peek(0) as *const u64 as usize;
        let b = locals.peek(1) as *const u64 as usize;
        assert!(b.abs_diff(a) >= 128, "slots must not share a cache line");
    }
}
