//! Shared mutable slices for writes to provably disjoint indices.
//!
//! The lazy engine allocates an output-edge buffer and uses a prefix sum over
//! frontier out-degrees to assign each source vertex a private sub-range of
//! the buffer (paper Figure 9(a), `setupOutputBufferOffsets`). Threads then
//! write concurrently into their disjoint sub-ranges without synchronization.
//! Rust's borrow rules cannot see that disjointness, so this module provides
//! a minimal, audited escape hatch.

use std::cell::UnsafeCell;
use std::fmt;

/// A slice whose elements may be written concurrently at *disjoint* indices.
///
/// All methods are safe to call; the safety obligation is concentrated in the
/// contract that no two threads touch the same index without other
/// synchronization, and that reads do not race writes to the same index.
/// Engine code establishes this via prefix-sum-assigned ranges or
/// owner-computes partitioning.
pub struct DisjointSlice<T> {
    cells: Box<[UnsafeCell<T>]>,
}

// SAFETY: access discipline (disjoint indices across threads) is documented
// on every mutating method; `T: Send` suffices because values only move
// across threads as whole elements.
unsafe impl<T: Send> Send for DisjointSlice<T> {}
unsafe impl<T: Send> Sync for DisjointSlice<T> {}

impl<T: fmt::Debug> fmt::Debug for DisjointSlice<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DisjointSlice(len = {})", self.cells.len())
    }
}

impl<T: Clone> DisjointSlice<T> {
    /// Allocates `len` copies of `value`.
    pub fn new(len: usize, value: T) -> Self {
        DisjointSlice {
            cells: (0..len).map(|_| UnsafeCell::new(value.clone())).collect(),
        }
    }
}

impl<T> DisjointSlice<T> {
    /// Builds the slice from an existing vector.
    pub fn from_vec(values: Vec<T>) -> Self {
        DisjointSlice {
            cells: values.into_iter().map(UnsafeCell::new).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety contract (checked by callers, not the compiler)
    ///
    /// No other thread may read or write `index` concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn write(&self, index: usize, value: T) {
        let cell = &self.cells[index];
        // SAFETY: per the access contract, this thread has exclusive access
        // to `index` for the duration of the call.
        unsafe { *cell.get() = value }
    }

    /// Reads the value at `index` (requires `T: Copy`).
    ///
    /// # Safety contract
    ///
    /// No thread may be writing `index` concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn read(&self, index: usize) -> T
    where
        T: Copy,
    {
        let cell = &self.cells[index];
        // SAFETY: per the access contract, no concurrent writer exists.
        unsafe { *cell.get() }
    }

    /// Consumes the slice, returning the underlying values.
    pub fn into_vec(self) -> Vec<T> {
        self.cells
            .into_vec()
            .into_iter()
            .map(UnsafeCell::into_inner)
            .collect()
    }

    /// Exclusive view of the contents (no concurrent access possible).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: `&mut self` guarantees exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.cells.as_mut_ptr().cast(), self.cells.len()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn disjoint_parallel_writes_land() {
        let slice = Arc::new(DisjointSlice::new(1000, 0usize));
        let mut handles = Vec::new();
        for t in 0..4 {
            let slice = Arc::clone(&slice);
            handles.push(std::thread::spawn(move || {
                let mut i = t;
                while i < 1000 {
                    slice.write(i, i * 2);
                    i += 4;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let out = Arc::try_unwrap(slice).unwrap().into_vec();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn read_after_write_round_trips() {
        let slice = DisjointSlice::new(4, 0i64);
        slice.write(3, 42);
        assert_eq!(slice.read(3), 42);
        assert_eq!(slice.read(0), 0);
    }

    #[test]
    fn from_vec_and_as_mut_slice() {
        let mut slice = DisjointSlice::from_vec(vec![1, 2, 3]);
        slice.as_mut_slice()[1] = 9;
        assert_eq!(slice.into_vec(), vec![1, 9, 3]);
        let empty = DisjointSlice::from_vec(Vec::<u8>::new());
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
    }
}
