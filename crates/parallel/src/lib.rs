//! OpenMP-style parallel runtime substrate for `priograph`.
//!
//! The CGO 2020 GraphIt priority extension generates C++ that relies on two
//! OpenMP execution shapes (paper Figure 9):
//!
//! 1. **Per-round parallel loops** (`parallel_for`) for the *lazy* bucketing
//!    engine — one bulk-synchronous parallel loop per bucket round.
//! 2. **One long-lived parallel region** (`#pragma omp parallel { while .. }`)
//!    for the *eager* engine — every thread owns local buckets, loops over
//!    rounds itself, and synchronizes with explicit barriers. Bucket fusion
//!    (paper Figure 7) only exists *inside* such a region: a thread keeps
//!    draining its current local bucket without waiting at the barrier.
//!
//! Work-stealing pools such as rayon express (1) well but not (2); this crate
//! therefore implements a small persistent pool with:
//!
//! * [`Pool::broadcast`] — run one closure on every worker, like an OpenMP
//!   `parallel` region; the [`Worker`] handle exposes a reusable
//!   [`Worker::barrier`].
//! * [`Pool::parallel_for`] / [`Pool::parallel_for_static`] — chunked loops
//!   in the spirit of `schedule(dynamic, grain)` / `schedule(static)`.
//! * [`ChunkCursor`] — the dynamic-chunk iterator used *inside* broadcast
//!   regions (the eager engine resets one per round).
//! * [`scan`] — parallel exclusive prefix sums and the scan-based frontier
//!   compaction primitives ([`scan::compact_into`],
//!   [`scan::filter_map_compact_into`]) that merge per-worker buffers into
//!   reusable output vectors without atomics, locks, or steady-state
//!   allocation (paper §3.1's "`syncAppend` ... or with a prefix sum").
//! * [`atomics`] — `atomicWriteMin`-style helpers over `AtomicI64` slices.
//! * [`shared`] — unsafe-but-audited disjoint-write storage: shared-slice
//!   cells ([`shared::DisjointSlice`], [`shared::SliceWriter`]) and the
//!   per-worker slot array ([`shared::WorkerLocal`]) behind the
//!   zero-allocation frontier pipeline (see that module's docs for the
//!   fill/merge/reset round protocol).
//!
//! # Example
//!
//! ```
//! use priograph_parallel::Pool;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let pool = Pool::new(4);
//! let sum = AtomicUsize::new(0);
//! pool.parallel_for(0..1000, 64, |i| {
//!     sum.fetch_add(i, Ordering::Relaxed);
//! });
//! assert_eq!(sum.into_inner(), 999 * 1000 / 2);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod atomics;
mod barrier;
mod chunk;
pub mod futex;
mod pool;
pub mod reduce;
pub mod scan;
pub mod sched;
#[cfg(feature = "check-shadow")]
pub mod shadow;
pub mod shared;

pub use barrier::SpinBarrier;
pub use chunk::ChunkCursor;
pub use futex::WaitSeq;
pub use pool::{global, in_worker, Pool, Worker};
pub use sched::{
    ChainDriver, ExecCtx, Executor, ExecutorStats, Lane, Round, RoundChain, WorkPacket,
};

/// True when this build carries the `check-shadow` race-detector
/// instrumentation (see [`shadow`](crate) docs / `docs/ARCHITECTURE.md`).
/// Always present so release smoke tests can assert the default build is
/// instrumentation-free.
pub const SHADOW_CHECKS_ENABLED: bool = cfg!(feature = "check-shadow");

/// Default grain size for dynamically scheduled loops.
///
/// Matches the `schedule(dynamic, 64)` pragma that GAPBS (and the paper's
/// generated code, Figure 9(c) line 15) uses for frontier loops.
pub const DEFAULT_GRAIN: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Pool>();
    }

    #[test]
    fn default_grain_matches_gapbs() {
        assert_eq!(DEFAULT_GRAIN, 64);
    }

    #[test]
    fn global_pool_runs_work() {
        let hits = AtomicUsize::new(0);
        global().parallel_for(0..128, 16, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.into_inner(), 128);
    }
}
