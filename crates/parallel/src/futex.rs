//! Futex-backed event counts for the pool and scheduler slow paths.
//!
//! [`AdaptiveSpin`](crate::Pool) keeps waiters hot through round storms; this
//! module is what they fall back to when the spin budget runs out. On Linux
//! (x86_64/aarch64) a [`WaitSeq`] parks directly on a `futex` word via a raw
//! `syscall` shim — no mutex, no condvar, one syscall per park and one per
//! wake batch. Everywhere else it degrades to the previous mutex + condvar
//! protocol with identical semantics.
//!
//! # The eventcount protocol
//!
//! `WaitSeq` is a monotone sequence number. A waiter
//!
//! 1. reads a token with [`WaitSeq::prepare`],
//! 2. re-checks its wake condition (loads whatever shared state it waits on),
//! 3. parks with [`WaitSeq::wait`] — which returns immediately if the
//!    sequence moved past the token.
//!
//! A notifier updates the shared state *first*, then calls
//! [`WaitSeq::notify_all`] (or [`WaitSeq::notify_one`]), which bumps the
//! sequence and wakes parked waiters. The bump is what closes the classic
//! missed-wakeup window: if the state change lands between steps 2 and 3,
//! the sequence no longer matches the token and the park is a no-op. The
//! kernel (or the fallback's mutex) re-checks the word under its own lock,
//! so no interleaving loses a wake.
//!
//! Spurious returns from [`WaitSeq::wait`] are allowed (and happen: `EINTR`,
//! unrelated bumps); callers always loop around a predicate.

use std::sync::atomic::{AtomicU32, Ordering};

/// True when the build actually parks on a futex (diagnostics only).
pub const NATIVE_FUTEX: bool = imp::NATIVE;

/// A monotone event count: prepare / re-check / wait on one side,
/// state-change / notify on the other. See the module docs for the protocol.
pub struct WaitSeq {
    seq: AtomicU32,
    fallback: imp::Fallback,
}

impl Default for WaitSeq {
    fn default() -> Self {
        WaitSeq::new()
    }
}

impl std::fmt::Debug for WaitSeq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaitSeq")
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .field("native_futex", &NATIVE_FUTEX)
            .finish()
    }
}

impl WaitSeq {
    /// Creates an event count at sequence zero.
    pub fn new() -> Self {
        WaitSeq {
            seq: AtomicU32::new(0),
            fallback: imp::Fallback::new(),
        }
    }

    /// Samples the current sequence. Re-check the wake condition *after*
    /// calling this and before [`WaitSeq::wait`].
    #[inline]
    pub fn prepare(&self) -> u32 {
        self.seq.load(Ordering::Acquire)
    }

    /// Parks until the sequence moves past `token` (or spuriously). Returns
    /// immediately if it already has.
    pub fn wait(&self, token: u32) {
        imp::wait(&self.seq, &self.fallback, token);
    }

    /// Publishes an event: bumps the sequence and wakes every parked waiter.
    ///
    /// The caller must have already made the wake condition observable; the
    /// Release bump orders it before any waiter's [`WaitSeq::prepare`] that
    /// reads the new sequence.
    pub fn notify_all(&self) {
        imp::bump(&self.seq, &self.fallback);
        imp::wake(&self.seq, &self.fallback, i32::MAX);
    }

    /// Publishes an event and wakes at most one parked waiter.
    ///
    /// Other waiters still observe the sequence change on their next
    /// [`WaitSeq::prepare`], so single-wake cannot strand a condition that
    /// several waiters poll — it only economizes on syscalls.
    pub fn notify_one(&self) {
        imp::bump(&self.seq, &self.fallback);
        imp::wake(&self.seq, &self.fallback, 1);
    }
}

/// Native futex implementation: Linux on the two arches this project builds
/// for in CI. The raw `syscall` shim mirrors `vendor/memmap2`'s direct libc
/// FFI (no libc crate in the offline vendor set).
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use std::sync::atomic::{AtomicU32, Ordering};

    pub(super) const NATIVE: bool = true;

    /// No state beyond the futex word itself.
    pub(super) struct Fallback;

    impl Fallback {
        pub(super) fn new() -> Self {
            Fallback
        }
    }

    #[cfg(target_arch = "x86_64")]
    const SYS_FUTEX: i64 = 202;
    #[cfg(target_arch = "aarch64")]
    const SYS_FUTEX: i64 = 98;

    /// `FUTEX_WAIT (0) | FUTEX_PRIVATE_FLAG (128)`: process-private sleep.
    const FUTEX_WAIT_PRIVATE: i32 = 128;
    /// `FUTEX_WAKE (1) | FUTEX_PRIVATE_FLAG (128)`.
    const FUTEX_WAKE_PRIVATE: i32 = 1 | 128;

    extern "C" {
        /// Variadic `syscall(2)` from the platform libc.
        fn syscall(num: i64, ...) -> i64;
    }

    pub(super) fn bump(seq: &AtomicU32, _fb: &Fallback) {
        seq.fetch_add(1, Ordering::Release);
    }

    pub(super) fn wait(seq: &AtomicU32, _fb: &Fallback, token: u32) {
        if seq.load(Ordering::Acquire) != token {
            return;
        }
        // SAFETY: FUTEX_WAIT reads the 4-byte aligned word at `seq.as_ptr()`
        // (valid for the duration of the call — `seq` is borrowed) and
        // compares it against `token`, sleeping only if they match; the null
        // pointer is the optional timeout (wait forever). Error returns
        // (EAGAIN on a raced word, EINTR) are spurious wakeups, which the
        // eventcount contract allows.
        unsafe {
            syscall(
                SYS_FUTEX,
                seq.as_ptr(),
                FUTEX_WAIT_PRIVATE,
                token,
                std::ptr::null::<u8>(),
            );
        }
    }

    pub(super) fn wake(seq: &AtomicU32, _fb: &Fallback, n: i32) {
        // SAFETY: FUTEX_WAKE only inspects the word address (4-byte aligned,
        // valid while borrowed) as a key to the kernel's wait-queue hash; it
        // wakes up to `n` sleepers and touches no user memory.
        unsafe {
            syscall(SYS_FUTEX, seq.as_ptr(), FUTEX_WAKE_PRIVATE, n);
        }
    }
}

/// Portable fallback: the documented mutex + condvar slow path.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    use parking_lot::{Condvar, Mutex};
    use std::sync::atomic::{AtomicU32, Ordering};

    pub(super) const NATIVE: bool = false;

    #[derive(Default)]
    pub(super) struct Fallback {
        lock: Mutex<()>,
        cv: Condvar,
    }

    impl Fallback {
        pub(super) fn new() -> Self {
            Fallback::default()
        }
    }

    pub(super) fn bump(seq: &AtomicU32, fb: &Fallback) {
        // The bump happens under the lock so a waiter that re-checked the
        // sequence while holding it cannot sleep through the change.
        let _guard = fb.lock.lock();
        seq.fetch_add(1, Ordering::Release);
    }

    pub(super) fn wait(seq: &AtomicU32, fb: &Fallback, token: u32) {
        let mut guard = fb.lock.lock();
        while seq.load(Ordering::Acquire) == token {
            fb.cv.wait(&mut guard);
        }
    }

    pub(super) fn wake(_seq: &AtomicU32, fb: &Fallback, n: i32) {
        if n == 1 {
            fb.cv.notify_one();
        } else {
            fb.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn stale_token_returns_immediately() {
        let ws = WaitSeq::new();
        let token = ws.prepare();
        ws.notify_all();
        // The sequence moved past the token; this must not block.
        ws.wait(token);
    }

    #[test]
    fn notify_wakes_a_parked_waiter() {
        let ws = Arc::new(WaitSeq::new());
        let flag = Arc::new(AtomicBool::new(false));
        let handle = {
            let ws = Arc::clone(&ws);
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || {
                while !flag.load(Ordering::Acquire) {
                    let token = ws.prepare();
                    if flag.load(Ordering::Acquire) {
                        break;
                    }
                    ws.wait(token);
                }
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        flag.store(true, Ordering::Release);
        ws.notify_all();
        handle.join().unwrap();
    }

    #[test]
    fn missed_wakeup_window_is_closed_under_contention() {
        // Hammer the prepare/check/wait vs store/notify race: every pass
        // must complete (a lost wake would hang the test).
        let ws = Arc::new(WaitSeq::new());
        let turn = Arc::new(AtomicUsize::new(0));
        let rounds = 2000usize;
        let waiter = {
            let ws = Arc::clone(&ws);
            let turn = Arc::clone(&turn);
            std::thread::spawn(move || {
                for want in (1..=rounds).step_by(2) {
                    while turn.load(Ordering::Acquire) < want {
                        let token = ws.prepare();
                        if turn.load(Ordering::Acquire) >= want {
                            break;
                        }
                        ws.wait(token);
                    }
                    turn.store(want + 1, Ordering::Release);
                    ws.notify_all();
                }
            })
        };
        for want in (0..rounds).step_by(2) {
            while turn.load(Ordering::Acquire) < want {
                let token = ws.prepare();
                if turn.load(Ordering::Acquire) >= want {
                    break;
                }
                ws.wait(token);
            }
            turn.store(want + 1, Ordering::Release);
            ws.notify_all();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn notify_one_wakes_at_least_one_of_many() {
        let ws = Arc::new(WaitSeq::new());
        let woken = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let ws = Arc::clone(&ws);
                let woken = Arc::clone(&woken);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        let token = ws.prepare();
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        ws.wait(token);
                        woken.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        ws.notify_one();
        std::thread::sleep(Duration::from_millis(20));
        stop.store(true, Ordering::Release);
        ws.notify_all();
        for h in handles {
            h.join().unwrap();
        }
        // At least the notify_one target observed a wake (notify_all at
        // shutdown wakes the rest regardless).
        assert!(woken.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn native_flag_matches_platform() {
        // On the CI target (Linux x86_64/aarch64) the real futex path must
        // be live; everywhere else the condvar fallback takes over.
        let expect_native = cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ));
        assert_eq!(NATIVE_FUTEX, expect_native);
        let _ = format!("{:?}", WaitSeq::new());
    }
}
