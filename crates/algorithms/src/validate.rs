//! Result validators (in the spirit of GAPBS's built-in verifiers).

use crate::result::UNREACHABLE;
use crate::setcover::SetCoverInstance;
use priograph_graph::{CsrGraph, VertexId};

/// Verifies a shortest-path tree:
///
/// * `dist[source] == 0`;
/// * no edge can relax further (`dist[v] <= dist[u] + w`);
/// * every reached non-source vertex has a tight incoming edge
///   (`dist[v] == dist[u] + w` for some `u`).
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_sssp(graph: &CsrGraph, source: VertexId, dist: &[i64]) -> Result<(), String> {
    if dist.len() != graph.num_vertices() {
        return Err(format!(
            "distance vector has {} entries for {} vertices",
            dist.len(),
            graph.num_vertices()
        ));
    }
    if dist[source as usize] != 0 {
        return Err(format!(
            "source distance is {} instead of 0",
            dist[source as usize]
        ));
    }
    for u in graph.vertices() {
        if dist[u as usize] >= UNREACHABLE {
            continue;
        }
        for e in graph.out_edges(u) {
            if dist[e.dst as usize] > dist[u as usize] + i64::from(e.weight) {
                return Err(format!(
                    "edge ({u}, {}) can still relax: {} > {} + {}",
                    e.dst, dist[e.dst as usize], dist[u as usize], e.weight
                ));
            }
        }
    }
    for v in graph.vertices() {
        if v == source || dist[v as usize] >= UNREACHABLE {
            continue;
        }
        let tight = graph.in_edges(v).iter().any(|e| {
            dist[e.dst as usize] < UNREACHABLE
                && dist[e.dst as usize] + i64::from(e.weight) == dist[v as usize]
        });
        if !tight {
            return Err(format!(
                "vertex {v} has distance {} but no tight incoming edge",
                dist[v as usize]
            ));
        }
    }
    Ok(())
}

/// Verifies the structural k-core invariant: every vertex of coreness `c`
/// keeps at least `c` neighbors of coreness `>= c` (membership in the
/// c-core), and no coreness exceeds the degree.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_coreness(graph: &CsrGraph, coreness: &[i64]) -> Result<(), String> {
    if coreness.len() != graph.num_vertices() {
        return Err("coreness vector length mismatch".into());
    }
    for v in graph.vertices() {
        let c = coreness[v as usize];
        if c < 0 {
            return Err(format!("vertex {v} has negative coreness {c}"));
        }
        if c > graph.out_degree(v) as i64 {
            return Err(format!(
                "vertex {v} coreness {c} exceeds degree {}",
                graph.out_degree(v)
            ));
        }
        let strong = graph
            .out_edges(v)
            .iter()
            .filter(|e| coreness[e.dst as usize] >= c)
            .count() as i64;
        if strong < c {
            return Err(format!(
                "vertex {v} claims coreness {c} but has only {strong} neighbors at >= {c}"
            ));
        }
    }
    Ok(())
}

/// Verifies that `chosen` covers every coverable element.
///
/// # Errors
///
/// Returns a human-readable description of the first uncovered element or
/// invalid set index.
pub fn validate_cover(instance: &SetCoverInstance, chosen: &[u32]) -> Result<(), String> {
    let mut covered = vec![false; instance.num_elements];
    for &s in chosen {
        let set = instance
            .sets
            .get(s as usize)
            .ok_or_else(|| format!("chosen set {s} does not exist"))?;
        for &e in set {
            covered[e as usize] = true;
        }
    }
    for (e, coverable) in instance.coverable().into_iter().enumerate() {
        if coverable && !covered[e] {
            return Err(format!("element {e} is coverable but left uncovered"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::{dijkstra, kcore_serial};
    use priograph_graph::gen::GraphGen;
    use priograph_graph::GraphBuilder;

    #[test]
    fn accepts_dijkstra_output() {
        let g = GraphGen::rmat(7, 6).seed(1).weights_uniform(1, 50).build();
        let dist = dijkstra(&g, 0);
        validate_sssp(&g, 0, &dist).unwrap();
    }

    #[test]
    fn rejects_wrong_source_distance() {
        let g = GraphGen::path(3).build();
        let err = validate_sssp(&g, 0, &[5, 1, 2]).unwrap_err();
        assert!(err.contains("source"));
    }

    #[test]
    fn rejects_relaxable_edge() {
        let g = GraphBuilder::new(2).edge(0, 1, 1).build();
        let err = validate_sssp(&g, 0, &[0, 5]).unwrap_err();
        assert!(err.contains("can still relax"));
    }

    #[test]
    fn rejects_untight_distance() {
        let g = GraphBuilder::new(2).edge(0, 1, 5).build();
        // dist 3 < true distance 5: no edge relaxes (3 < 0+5 holds... it does
        // not exceed), but no tight in-edge exists.
        let err = validate_sssp(&g, 0, &[0, 3]).unwrap_err();
        assert!(err.contains("tight"));
    }

    #[test]
    fn accepts_serial_coreness() {
        let g = GraphGen::rmat(7, 6).seed(3).build().symmetrize();
        validate_coreness(&g, &kcore_serial(&g)).unwrap();
    }

    #[test]
    fn rejects_inflated_coreness() {
        let g = GraphGen::path(3).build().symmetrize();
        let err = validate_coreness(&g, &[5, 5, 5]).unwrap_err();
        assert!(err.contains("exceeds degree") || err.contains("neighbors"));
    }

    #[test]
    fn cover_validator_flags_gaps() {
        let inst = SetCoverInstance::new(3, vec![vec![0], vec![1], vec![2]]);
        assert!(validate_cover(&inst, &[0, 1, 2]).is_ok());
        let err = validate_cover(&inst, &[0]).unwrap_err();
        assert!(err.contains("uncovered"));
        assert!(validate_cover(&inst, &[9]).is_err());
    }
}
