//! Point-to-point shortest path: Δ-stepping with early termination
//! (paper §6.1: "terminates the program early when it enters iteration i
//! where iΔ is greater than or equal to the shortest distance between s and
//! d it has already found").

use crate::result::{PointToPoint, UNREACHABLE};
use crate::AlgoError;
use priograph_core::engine::{run_ordered_on, StopView};
use priograph_core::prelude::*;
use priograph_graph::{CsrGraph, VertexId};
use priograph_parallel::Pool;

/// Runs a PPSP query on the global pool.
///
/// # Panics
///
/// Panics on invalid input; use [`ppsp_on`] for recoverable errors.
pub fn ppsp(
    graph: &CsrGraph,
    source: VertexId,
    target: VertexId,
    schedule: &Schedule,
) -> PointToPoint {
    ppsp_on(
        priograph_parallel::global(),
        graph,
        source,
        target,
        schedule,
    )
    .expect("invalid PPSP configuration")
}

/// Runs a PPSP query on `pool`.
///
/// # Errors
///
/// Fails when an endpoint is out of range or the schedule is rejected.
pub fn ppsp_on(
    pool: &Pool,
    graph: &CsrGraph,
    source: VertexId,
    target: VertexId,
    schedule: &Schedule,
) -> Result<PointToPoint, AlgoError> {
    let n = graph.num_vertices();
    crate::check_vertex(source, n)?;
    crate::check_vertex(target, n)?;
    let problem = OrderedProblem::lower_first(graph)
        .allow_coarsening()
        .init_constant(NULL_PRIORITY)
        .seed(source, 0);
    // Early termination: once the bucket being opened starts at or past the
    // best distance already found for the target, the target is finalized.
    let stop = move |current_priority: i64, view: &StopView<'_>| {
        current_priority >= view.priority_of(target)
    };
    let out = run_ordered_on(pool, &problem, schedule, &MinPlusWeight, Some(&stop))?;
    let d = out.priorities[target as usize];
    Ok(PointToPoint {
        distance: (d < UNREACHABLE).then_some(d),
        dist: out.priorities,
        stats: out.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::dijkstra;
    use priograph_graph::gen::GraphGen;

    #[test]
    fn ppsp_matches_dijkstra_distance() {
        let pool = Pool::new(4);
        let g = GraphGen::rmat(8, 8).seed(3).weights_uniform(1, 100).build();
        let reference = dijkstra(&g, 0);
        for target in [1u32, 50, 200] {
            for schedule in [Schedule::eager_with_fusion(16), Schedule::lazy(16)] {
                let r = ppsp_on(&pool, &g, 0, target, &schedule).unwrap();
                let expected = (reference[target as usize] < UNREACHABLE)
                    .then_some(reference[target as usize]);
                assert_eq!(r.distance, expected, "target={target}");
            }
        }
    }

    #[test]
    fn ppsp_does_less_work_than_full_sssp_on_road_networks() {
        let pool = Pool::new(2);
        let g = GraphGen::road_grid(24, 24).seed(5).build();
        // Target adjacent to the source: the run should stop almost
        // immediately.
        let target = g.out_edges(0)[0].dst;
        let schedule = Schedule::eager_with_fusion(64);
        let pp = ppsp_on(&pool, &g, 0, target, &schedule).unwrap();
        let full = crate::sssp::delta_stepping_on(&pool, &g, 0, &schedule).unwrap();
        assert_eq!(pp.distance, Some(full.dist[target as usize]));
        assert!(
            pp.stats.relaxations < full.stats.relaxations / 4,
            "early stop should skip most relaxations: {} vs {}",
            pp.stats.relaxations,
            full.stats.relaxations
        );
    }

    #[test]
    fn unreachable_target_reports_none() {
        let g = priograph_graph::GraphBuilder::new(3).edge(0, 1, 1).build();
        let pool = Pool::new(1);
        let r = ppsp_on(&pool, &g, 0, 2, &Schedule::lazy(1)).unwrap();
        assert_eq!(r.distance, None);
    }

    #[test]
    fn source_equals_target_is_zero() {
        let g = GraphGen::cycle(5).build();
        let pool = Pool::new(1);
        let r = ppsp_on(&pool, &g, 2, 2, &Schedule::default()).unwrap();
        assert_eq!(r.distance, Some(0));
    }
}
