//! k-core decomposition by bucketed peeling (paper §6.1, Figure 10).
//!
//! Every vertex's priority starts at its degree; the smallest bucket `k` is
//! peeled, decrementing neighbors' priorities (never below `k`), so each
//! vertex finalizes at exactly its coreness. Strict priority ordering is
//! required — no coarsening (§2).

use crate::result::Coreness;
use crate::AlgoError;
use priograph_core::engine::{run_ordered_observed, RoundObserver};
use priograph_core::prelude::*;
use priograph_core::udf::DecrementToFloor;
use priograph_graph::CsrGraph;
use priograph_parallel::Pool;

/// Computes the coreness of every vertex on the global pool.
///
/// The paper's preferred schedule is `lazy_constant_sum` (Table 7 shows the
/// histogram-reduced lazy strategy beating eager by 3–4× on social graphs).
///
/// # Panics
///
/// Panics on invalid input; use [`kcore_on`] for recoverable errors.
pub fn kcore(graph: &CsrGraph, schedule: &Schedule) -> Coreness {
    kcore_on(priograph_parallel::global(), graph, schedule).expect("invalid k-core configuration")
}

/// Computes the coreness of every vertex on `pool`.
///
/// # Errors
///
/// Fails when the graph is not symmetrized or the schedule is rejected
/// (coarsening, for instance, is illegal for k-core).
pub fn kcore_on(pool: &Pool, graph: &CsrGraph, schedule: &Schedule) -> Result<Coreness, AlgoError> {
    kcore_observed(pool, graph, schedule, None)
}

/// Computes the coreness of every vertex on `pool`, reporting each engine
/// round to `observer`.
///
/// # Errors
///
/// Fails when the graph is not symmetrized or the schedule is rejected.
pub fn kcore_observed(
    pool: &Pool,
    graph: &CsrGraph,
    schedule: &Schedule,
    observer: Option<&dyn RoundObserver>,
) -> Result<Coreness, AlgoError> {
    if !graph.is_symmetric() {
        return Err(AlgoError::RequiresSymmetricGraph);
    }
    let degrees: Vec<i64> = graph
        .vertices()
        .map(|v| graph.out_degree(v) as i64)
        .collect();
    let problem = OrderedProblem::lower_first(graph)
        .init_per_vertex(degrees)
        .seed_all_finite();
    let out = run_ordered_observed(pool, &problem, schedule, &DecrementToFloor, None, observer)?;
    Ok(Coreness {
        coreness: out.priorities,
        stats: out.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::kcore_serial;
    use crate::validate::validate_coreness;
    use priograph_graph::gen::GraphGen;
    use priograph_graph::GraphBuilder;

    #[test]
    fn triangle_with_tail() {
        let g = GraphBuilder::new(4)
            .edges(vec![(0, 1, 1), (1, 2, 1), (0, 2, 1), (0, 3, 1)])
            .build()
            .symmetrize();
        let pool = Pool::new(2);
        let c = kcore_on(&pool, &g, &Schedule::lazy_constant_sum()).unwrap();
        assert_eq!(c.coreness, vec![2, 2, 2, 1]);
        assert_eq!(c.degeneracy(), 2);
    }

    #[test]
    fn all_schedules_agree_with_serial_reference() {
        let pool = Pool::new(4);
        for seed in [1, 13] {
            let g = GraphGen::rmat(8, 6).seed(seed).build().symmetrize();
            let reference = kcore_serial(&g);
            for schedule in [
                Schedule::lazy_constant_sum(),
                Schedule::lazy(1),
                Schedule::eager(1),
                Schedule::eager_with_fusion(1),
            ] {
                let c = kcore_on(&pool, &g, &schedule).unwrap();
                assert_eq!(c.coreness, reference, "seed={seed} schedule={schedule}");
                validate_coreness(&g, &c.coreness).unwrap();
            }
        }
    }

    #[test]
    fn asymmetric_graph_is_rejected() {
        let g = GraphBuilder::new(2).edge(0, 1, 1).build();
        let pool = Pool::new(1);
        assert_eq!(
            kcore_on(&pool, &g, &Schedule::lazy_constant_sum()).unwrap_err(),
            AlgoError::RequiresSymmetricGraph
        );
    }

    #[test]
    fn coarsening_is_rejected() {
        let g = GraphGen::cycle(6).build().symmetrize();
        let pool = Pool::new(1);
        let err = kcore_on(&pool, &g, &Schedule::lazy(8)).unwrap_err();
        assert!(matches!(err, AlgoError::Schedule(_)));
    }

    #[test]
    fn isolated_vertices_have_coreness_zero() {
        let mut g = GraphBuilder::new(3).edge(0, 1, 1).build().symmetrize();
        // symmetrize keeps vertex 2 isolated
        g.set_coords(vec![Default::default(); 3]);
        let pool = Pool::new(1);
        let c = kcore_on(&pool, &g, &Schedule::lazy_constant_sum()).unwrap();
        assert_eq!(c.coreness[2], 0);
        assert_eq!(c.coreness[0], 1);
    }
}
