//! The six ordered graph algorithms of the paper's evaluation (§6.1), their
//! unordered counterparts, serial references, and result validators.
//!
//! | Algorithm | Module | Ordered formulation |
//! |---|---|---|
//! | SSSP (Δ-stepping) | [`sssp`] | `updatePriorityMin(dst, dist[src] + w)`, coarsened buckets |
//! | wBFS | [`wbfs`] | Δ-stepping with Δ = 1 |
//! | PPSP | [`ppsp`] | Δ-stepping + early stop at the destination |
//! | A\* search | [`astar`] | priority = g + heuristic, early stop |
//! | k-core | [`kcore`] | peel by degree, `updatePrioritySum(dst, -1, k)` |
//! | SetCover | [`setcover`] | bucket sets by coverage, highest first |
//!
//! Unordered baselines (Bellman-Ford, threshold-scan k-core) live in
//! [`unordered`]; serial references (Dijkstra, serial peeling) in [`serial`];
//! validators in [`validate`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod astar;
pub mod kcore;
pub mod ppsp;
pub mod serial;
pub mod setcover;
pub mod sssp;
pub mod unordered;
pub mod validate;
pub mod wbfs;

mod result;

pub use result::{Coreness, PointToPoint, ShortestPaths, UNREACHABLE};

use priograph_core::schedule::ScheduleError;
use std::fmt;

/// Errors raised by algorithm drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgoError {
    /// The schedule is invalid for this algorithm/problem combination.
    Schedule(ScheduleError),
    /// A vertex argument is out of range.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: u32,
        /// The graph's vertex count.
        num_vertices: usize,
    },
    /// A\* needs vertex coordinates but the graph has none.
    MissingCoordinates,
    /// k-core requires a symmetrized graph (paper Table 3).
    RequiresSymmetricGraph,
}

impl fmt::Display for AlgoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgoError::Schedule(e) => write!(f, "schedule error: {e}"),
            AlgoError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(f, "vertex {vertex} out of range (graph has {num_vertices})"),
            AlgoError::MissingCoordinates => {
                write!(f, "graph has no vertex coordinates (required by A*)")
            }
            AlgoError::RequiresSymmetricGraph => {
                write!(f, "k-core requires a symmetrized graph")
            }
        }
    }
}

impl std::error::Error for AlgoError {}

impl From<ScheduleError> for AlgoError {
    fn from(e: ScheduleError) -> Self {
        AlgoError::Schedule(e)
    }
}

pub(crate) fn check_vertex(v: u32, n: usize) -> Result<(), AlgoError> {
    if (v as usize) < n {
        Ok(())
    } else {
        Err(AlgoError::VertexOutOfRange {
            vertex: v,
            num_vertices: n,
        })
    }
}
