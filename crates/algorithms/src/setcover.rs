//! Approximate set cover by bucketed greedy selection (paper §6.1).
//!
//! Sets are bucketed by how many uncovered elements they cover (their
//! "cost per element" under unit costs), and processed highest-coverage
//! first under strict priority ordering. Each round, the ready sets race to
//! *claim* their uncovered elements (lowest set id wins each element); a set
//! whose claims all succeeded — and whose stored coverage is still accurate
//! — joins the cover, while the rest release their claims and are
//! re-bucketed at their refreshed coverage. This is the
//! nearly-independent-set flavor of Blelloch et al.'s parallel greedy that
//! Julienne implements with its bucket structure.
//!
//! This algorithm drives the [`PriorityQueue`] facade directly — it is the
//! paper's example of an ordered algorithm whose main loop does more than
//! one `applyUpdatePriority` (which is also why its line count is higher,
//! Table 5).

use crate::AlgoError;
use parking_lot::Mutex;
use priograph_core::pq::PriorityQueue;
use priograph_core::schedule::Schedule;
use priograph_core::stats::ExecStats;
use priograph_graph::{CsrGraph, GraphBuilder, VertexId};
use priograph_parallel::Pool;
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::time::Instant;

/// A set cover instance: a universe `0..num_elements` and a family of sets.
#[derive(Debug, Clone)]
pub struct SetCoverInstance {
    /// Universe size.
    pub num_elements: usize,
    /// Element ids per set.
    pub sets: Vec<Vec<u32>>,
}

impl SetCoverInstance {
    /// Creates an instance, validating element ids.
    ///
    /// # Panics
    ///
    /// Panics if a set references an element outside the universe.
    pub fn new(num_elements: usize, sets: Vec<Vec<u32>>) -> Self {
        for (i, set) in sets.iter().enumerate() {
            for &e in set {
                assert!(
                    (e as usize) < num_elements,
                    "set {i} references element {e} outside universe of {num_elements}"
                );
            }
        }
        SetCoverInstance { num_elements, sets }
    }

    /// Encodes the instance as a bipartite graph: vertices `0..s` are sets,
    /// `s..s+u` are elements, with an edge from each set to its elements.
    pub fn to_graph(&self) -> CsrGraph {
        let s = self.sets.len();
        let n = s + self.num_elements;
        let mut builder = GraphBuilder::new(n);
        for (i, set) in self.sets.iter().enumerate() {
            for &e in set {
                builder = builder.edge(i as VertexId, s as VertexId + e, 1);
            }
        }
        builder.build()
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Elements covered by at least one set.
    pub fn coverable(&self) -> Vec<bool> {
        let mut coverable = vec![false; self.num_elements];
        for set in &self.sets {
            for &e in set {
                coverable[e as usize] = true;
            }
        }
        coverable
    }
}

/// A computed cover.
#[derive(Debug, Clone)]
pub struct SetCoverSolution {
    /// Chosen set indices, in selection order.
    pub chosen: Vec<u32>,
    /// Loop counters (rounds = bucket dequeues).
    pub stats: ExecStats,
}

/// Runs approximate set cover on the global pool.
///
/// # Panics
///
/// Panics on invalid configuration; use [`set_cover_on`] to recover.
pub fn set_cover(instance: &SetCoverInstance, schedule: &Schedule) -> SetCoverSolution {
    set_cover_on(priograph_parallel::global(), instance, schedule)
        .expect("invalid SetCover configuration")
}

/// Runs approximate set cover on `pool`.
///
/// # Errors
///
/// Fails when the schedule is rejected (SetCover forbids coarsening and the
/// eager strategies — it is a `higher_first` algorithm).
pub fn set_cover_on(
    pool: &Pool,
    instance: &SetCoverInstance,
    schedule: &Schedule,
) -> Result<SetCoverSolution, AlgoError> {
    if schedule.is_eager() {
        return Err(AlgoError::Schedule(
            priograph_core::schedule::ScheduleError::EagerRequiresLowerFirst,
        ));
    }
    if schedule.delta != 1 {
        return Err(AlgoError::Schedule(
            priograph_core::schedule::ScheduleError::CoarseningNotAllowed {
                delta: schedule.delta,
            },
        ));
    }
    let started = Instant::now();
    let graph = instance.to_graph();
    let num_sets = instance.num_sets();
    let element_base = num_sets as u32;

    // Sets carry their uncovered-count as priority; elements are unbucketed.
    let mut initial = vec![priograph_buckets::NULL_PRIORITY; graph.num_vertices()];
    for (i, set) in instance.sets.iter().enumerate() {
        initial[i] = set.len() as i64;
    }
    let seeds: Vec<VertexId> = (0..num_sets as VertexId).collect();
    let mut pq = PriorityQueue::new(
        &graph,
        priograph_buckets::BucketOrder::Decreasing,
        initial,
        &seeds,
        schedule,
    );

    // Element state: current claimant (min set id wins) and covered flag.
    let owner: Vec<AtomicU32> = (0..instance.num_elements)
        .map(|_| AtomicU32::new(u32::MAX))
        .collect();
    let covered: Vec<AtomicU8> = (0..instance.num_elements)
        .map(|_| AtomicU8::new(0))
        .collect();
    let chosen: Mutex<Vec<u32>> = Mutex::new(Vec::new());
    let mut stats = ExecStats::default();

    let is_covered = |e: usize| covered[e].load(Ordering::Relaxed) != 0;

    while !pq.finished(pool) {
        let bucket = pq.dequeue_ready_set(pool);
        let coverage = pq.get_current_priority();
        stats.rounds += 1;
        if coverage <= 0 {
            // Nothing useful remains at or below zero coverage.
            for &set in bucket.iter() {
                pq.finalize_vertex(set);
            }
            continue;
        }

        let sets = bucket.as_slice();
        // Phase 1: claim uncovered elements (min set id wins each element).
        pool.parallel_for(0..sets.len(), 8, |i| {
            let sid = sets[i];
            for edge in graph.out_edges(sid) {
                let e = (edge.dst - element_base) as usize;
                if !is_covered(e) {
                    owner[e].fetch_min(sid, Ordering::Relaxed);
                }
            }
        });

        // Phase 2: decide. A set is accepted only if it won every one of its
        // uncovered elements *and* its stored coverage is still accurate
        // (stale sets are re-bucketed, preserving strict greedy order).
        pool.parallel_for(0..sets.len(), 8, |i| {
            let sid = sets[i];
            let mut won = 0i64;
            let mut uncovered = 0i64;
            for edge in graph.out_edges(sid) {
                let e = (edge.dst - element_base) as usize;
                if !is_covered(e) {
                    uncovered += 1;
                    if owner[e].load(Ordering::Relaxed) == sid {
                        won += 1;
                    }
                }
            }
            if uncovered == coverage && won == uncovered {
                // Accept: cover the claimed elements.
                for edge in graph.out_edges(sid) {
                    let e = (edge.dst - element_base) as usize;
                    if owner[e].load(Ordering::Relaxed) == sid {
                        covered[e].store(1, Ordering::Relaxed);
                    }
                }
                chosen.lock().push(sid);
                pq.finalize_vertex(sid);
            } else {
                // Release claims and re-bucket at the refreshed coverage.
                for edge in graph.out_edges(sid) {
                    let e = (edge.dst - element_base) as usize;
                    let _ = owner[e].compare_exchange(
                        sid,
                        u32::MAX,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    );
                }
                if uncovered < coverage {
                    pq.update_priority_min(sid, uncovered);
                } else {
                    pq.reschedule(sid);
                }
            }
        });
        stats.relaxations += 2 * graph.out_degree_sum(sets);
    }

    let mut chosen = chosen.into_inner();
    chosen.sort_unstable();
    stats.elapsed = started.elapsed();
    Ok(SetCoverSolution { chosen, stats })
}

/// Serial greedy reference (always picks a maximum-coverage set).
pub fn greedy_cover(instance: &SetCoverInstance) -> Vec<u32> {
    let mut covered = vec![false; instance.num_elements];
    let mut chosen = Vec::new();
    loop {
        let mut best: Option<(usize, usize)> = None; // (coverage, set)
        for (i, set) in instance.sets.iter().enumerate() {
            let cov = set.iter().filter(|&&e| !covered[e as usize]).count();
            if cov > 0 && best.is_none_or(|(bc, _)| cov > bc) {
                best = Some((cov, i));
            }
        }
        let Some((_, set)) = best else { break };
        for &e in &instance.sets[set] {
            covered[e as usize] = true;
        }
        chosen.push(set as u32);
    }
    chosen.sort_unstable();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_cover;

    fn small_instance() -> SetCoverInstance {
        SetCoverInstance::new(
            6,
            vec![
                vec![0, 1, 2, 3], // the big set
                vec![0, 1],
                vec![2, 3],
                vec![4],
                vec![4, 5],
            ],
        )
    }

    #[test]
    fn covers_everything_coverable() {
        let pool = Pool::new(2);
        let inst = small_instance();
        let sol = set_cover_on(&pool, &inst, &Schedule::lazy(1)).unwrap();
        validate_cover(&inst, &sol.chosen).unwrap();
        // Greedy picks {0, 4}: the strict-priority parallel version must too.
        assert_eq!(sol.chosen, vec![0, 4]);
    }

    #[test]
    fn matches_greedy_quality_on_chains() {
        // Overlapping chain sets: strict ordering keeps the approximation
        // within greedy's ballpark.
        let sets: Vec<Vec<u32>> = (0..10)
            .map(|i| (i..(i + 4).min(12)).map(|e| e as u32).collect())
            .collect();
        let inst = SetCoverInstance::new(12, sets);
        let pool = Pool::new(4);
        let sol = set_cover_on(&pool, &inst, &Schedule::lazy(1)).unwrap();
        validate_cover(&inst, &sol.chosen).unwrap();
        let greedy = greedy_cover(&inst);
        assert!(
            sol.chosen.len() <= greedy.len() * 2,
            "parallel {} vs greedy {}",
            sol.chosen.len(),
            greedy.len()
        );
    }

    #[test]
    fn uncoverable_elements_are_tolerated() {
        let inst = SetCoverInstance::new(4, vec![vec![0], vec![1]]);
        let pool = Pool::new(1);
        let sol = set_cover_on(&pool, &inst, &Schedule::lazy(1)).unwrap();
        validate_cover(&inst, &sol.chosen).unwrap();
        assert_eq!(sol.chosen, vec![0, 1]);
    }

    #[test]
    fn empty_instance() {
        let inst = SetCoverInstance::new(0, vec![]);
        let pool = Pool::new(1);
        let sol = set_cover_on(&pool, &inst, &Schedule::lazy(1)).unwrap();
        assert!(sol.chosen.is_empty());
    }

    #[test]
    fn eager_schedule_is_rejected() {
        let inst = small_instance();
        let pool = Pool::new(1);
        assert!(set_cover_on(&pool, &inst, &Schedule::eager(1)).is_err());
        assert!(set_cover_on(&pool, &inst, &Schedule::lazy(4)).is_err());
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_universe_element_panics() {
        let _ = SetCoverInstance::new(2, vec![vec![5]]);
    }

    #[test]
    fn duplicate_coverage_prefers_larger_sets() {
        // Two disjoint pairs plus a set covering all four: pick the big one
        // then fill in.
        let inst = SetCoverInstance::new(4, vec![vec![0, 1], vec![2, 3], vec![0, 1, 2, 3]]);
        let pool = Pool::new(2);
        let sol = set_cover_on(&pool, &inst, &Schedule::lazy(1)).unwrap();
        assert_eq!(sol.chosen, vec![2]);
    }
}
