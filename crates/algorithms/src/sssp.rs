//! Single-source shortest paths with Δ-stepping (paper Figure 3 / §6.1).

use crate::result::ShortestPaths;
use crate::AlgoError;
use priograph_core::engine::{run_ordered_observed, RoundObserver};
use priograph_core::prelude::*;
use priograph_graph::{CsrGraph, VertexId};
use priograph_parallel::Pool;

/// Runs Δ-stepping SSSP from `source` on the global pool.
///
/// The schedule carries Δ and the bucketing strategy; the paper's default is
/// `eager_with_fusion` with graph-dependent Δ (§6.2: small Δ for social
/// networks, 2^13–2^17 for road networks).
///
/// # Panics
///
/// Panics if `source` is out of range or the schedule is invalid — use
/// [`delta_stepping_on`] for recoverable errors.
pub fn delta_stepping(graph: &CsrGraph, source: VertexId, schedule: &Schedule) -> ShortestPaths {
    delta_stepping_on(priograph_parallel::global(), graph, source, schedule)
        .expect("invalid SSSP configuration")
}

/// Runs Δ-stepping SSSP from `source` on `pool`.
///
/// # Errors
///
/// Fails when `source` is out of range or the schedule is rejected.
pub fn delta_stepping_on(
    pool: &Pool,
    graph: &CsrGraph,
    source: VertexId,
    schedule: &Schedule,
) -> Result<ShortestPaths, AlgoError> {
    delta_stepping_observed(pool, graph, source, schedule, None)
}

/// Runs Δ-stepping SSSP from `source` on `pool`, reporting each engine
/// round to `observer` (see `priograph_core::engine::observe`).
///
/// # Errors
///
/// Fails when `source` is out of range or the schedule is rejected.
pub fn delta_stepping_observed(
    pool: &Pool,
    graph: &CsrGraph,
    source: VertexId,
    schedule: &Schedule,
    observer: Option<&dyn RoundObserver>,
) -> Result<ShortestPaths, AlgoError> {
    crate::check_vertex(source, graph.num_vertices())?;
    let problem = OrderedProblem::lower_first(graph)
        .allow_coarsening()
        .init_constant(NULL_PRIORITY)
        .seed(source, 0);
    let out = run_ordered_observed(pool, &problem, schedule, &MinPlusWeight, None, observer)?;
    Ok(ShortestPaths {
        dist: out.priorities,
        stats: out.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::dijkstra;
    use crate::validate::validate_sssp;
    use priograph_graph::gen::GraphGen;

    #[test]
    fn matches_dijkstra_on_social_graphs() {
        let pool = Pool::new(4);
        for seed in [1, 7, 42] {
            let g = GraphGen::rmat(8, 8)
                .seed(seed)
                .weights_uniform(1, 1000)
                .build();
            let reference = dijkstra(&g, 0);
            for schedule in [
                Schedule::eager_with_fusion(32),
                Schedule::eager(32),
                Schedule::lazy(32),
            ] {
                let sp = delta_stepping_on(&pool, &g, 0, &schedule).unwrap();
                assert_eq!(sp.dist, reference, "seed={seed} schedule={schedule}");
                validate_sssp(&g, 0, &sp.dist).unwrap();
            }
        }
    }

    #[test]
    fn matches_dijkstra_on_road_graphs() {
        let pool = Pool::new(4);
        let g = GraphGen::road_grid(20, 20).seed(2).build();
        let reference = dijkstra(&g, 5);
        let sp = delta_stepping_on(&pool, &g, 5, &Schedule::eager_with_fusion(512)).unwrap();
        assert_eq!(sp.dist, reference);
        assert!(sp.reached() == g.num_vertices());
    }

    #[test]
    fn out_of_range_source_is_an_error() {
        let g = GraphGen::path(3).build();
        let pool = Pool::new(1);
        let err = delta_stepping_on(&pool, &g, 9, &Schedule::default()).unwrap_err();
        assert!(matches!(err, AlgoError::VertexOutOfRange { vertex: 9, .. }));
    }

    #[test]
    fn delta_sweep_is_result_invariant() {
        let pool = Pool::new(2);
        let g = GraphGen::road_grid(10, 10).seed(8).build();
        let reference = dijkstra(&g, 0);
        for delta in [1, 2, 16, 256, 4096] {
            let sp = delta_stepping_on(&pool, &g, 0, &Schedule::eager_with_fusion(delta)).unwrap();
            assert_eq!(sp.dist, reference, "delta={delta}");
        }
    }
}
