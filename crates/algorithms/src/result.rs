//! Result types shared by the algorithm drivers.

use priograph_core::stats::ExecStats;
use priograph_graph::VertexId;

/// Distance value marking unreachable vertices (the null priority ∅).
pub const UNREACHABLE: i64 = priograph_buckets::NULL_PRIORITY;

/// Single-source shortest path distances.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// `dist[v]` = shortest distance from the source, or [`UNREACHABLE`].
    pub dist: Vec<i64>,
    /// Engine counters.
    pub stats: ExecStats,
}

impl ShortestPaths {
    /// True if `v` was reached.
    pub fn is_reachable(&self, v: VertexId) -> bool {
        self.dist[v as usize] < UNREACHABLE
    }

    /// Number of reached vertices.
    pub fn reached(&self) -> usize {
        self.dist.iter().filter(|&&d| d < UNREACHABLE).count()
    }
}

/// Point-to-point query result (PPSP, A\*).
#[derive(Debug, Clone)]
pub struct PointToPoint {
    /// Shortest distance from source to destination, if connected.
    pub distance: Option<i64>,
    /// Partial distance vector (only finalized prefixes are meaningful).
    pub dist: Vec<i64>,
    /// Engine counters.
    pub stats: ExecStats,
}

/// k-core decomposition result.
#[derive(Debug, Clone)]
pub struct Coreness {
    /// `coreness[v]` = largest k such that `v` belongs to the k-core.
    pub coreness: Vec<i64>,
    /// Engine counters.
    pub stats: ExecStats,
}

impl Coreness {
    /// The degeneracy (maximum coreness).
    pub fn degeneracy(&self) -> i64 {
        self.coreness.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachability_helpers() {
        let sp = ShortestPaths {
            dist: vec![0, 5, UNREACHABLE],
            stats: ExecStats::default(),
        };
        assert!(sp.is_reachable(0));
        assert!(sp.is_reachable(1));
        assert!(!sp.is_reachable(2));
        assert_eq!(sp.reached(), 2);
    }

    #[test]
    fn degeneracy_is_max() {
        let c = Coreness {
            coreness: vec![1, 3, 2],
            stats: ExecStats::default(),
        };
        assert_eq!(c.degeneracy(), 3);
        let empty = Coreness {
            coreness: vec![],
            stats: ExecStats::default(),
        };
        assert_eq!(empty.degeneracy(), 0);
    }
}
