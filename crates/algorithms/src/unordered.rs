//! Unordered counterparts of the ordered algorithms (the "GraphIt
//! (unordered)" and "Ligra (unordered)" rows of paper Table 4 and the
//! baseline of Figure 1).
//!
//! * [`bellman_ford_on`] — frontier-based Bellman-Ford: every active vertex
//!   is relaxed every round regardless of priority, so low-distance and
//!   high-distance vertices mix and redundant relaxations abound.
//! * [`kcore_unordered_on`] — threshold-scan peeling: for each k the whole
//!   vertex set is rescanned to find vertices below the threshold, without
//!   any bucketing.

use crate::result::{Coreness, ShortestPaths, UNREACHABLE};
use crate::AlgoError;
use priograph_buckets::SharedFrontier;
use priograph_core::stats::ExecStats;
use priograph_graph::{CsrGraph, VertexId};
use priograph_parallel::atomics::{atomic_vec, write_min};
use priograph_parallel::Pool;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

/// Per-round claim stamps (same idea as the engines' dedup CAS).
struct Stamps {
    stamps: Box<[AtomicU64]>,
}

impl Stamps {
    fn new(n: usize) -> Self {
        Stamps {
            stamps: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    #[inline]
    fn claim(&self, v: VertexId, round: u64) -> bool {
        self.stamps[v as usize].swap(round, Ordering::Relaxed) != round
    }
}

/// Frontier-based Bellman-Ford SSSP (unordered).
///
/// # Errors
///
/// Fails when `source` is out of range.
pub fn bellman_ford_on(
    pool: &Pool,
    graph: &CsrGraph,
    source: VertexId,
) -> Result<ShortestPaths, AlgoError> {
    let n = graph.num_vertices();
    crate::check_vertex(source, n)?;
    let started = Instant::now();
    let dist = atomic_vec(n, UNREACHABLE);
    dist[source as usize].store(0, Ordering::Relaxed);

    let stamps = Stamps::new(n);
    let out = SharedFrontier::new(n + 1);
    let mut frontier = vec![source];
    let mut stats = ExecStats::default();
    let mut round: u64 = 0;

    while !frontier.is_empty() {
        round += 1;
        stats.rounds += 1;
        stats.relaxations += graph.out_degree_sum(&frontier);
        out.reset();
        let dist = &dist;
        let stamps = &stamps;
        let out_ref = &out;
        let frontier_ref = &frontier;
        pool.parallel_for(0..frontier.len(), 64, move |i| {
            let src = frontier_ref[i];
            let base = dist[src as usize].load(Ordering::Relaxed);
            for e in graph.out_edges(src) {
                if write_min(&dist[e.dst as usize], base + i64::from(e.weight))
                    && stamps.claim(e.dst, round)
                {
                    out_ref.push(e.dst);
                }
            }
        });
        frontier = out.to_vec();
        stats.bucket_inserts += frontier.len() as u64;
    }

    stats.elapsed = started.elapsed();
    Ok(ShortestPaths {
        dist: dist.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        stats,
    })
}

/// Threshold-scan k-core (unordered): for ascending k, repeatedly scan *all*
/// live vertices for degree < k and peel them.
///
/// # Errors
///
/// Fails when the graph is not symmetrized.
pub fn kcore_unordered_on(pool: &Pool, graph: &CsrGraph) -> Result<Coreness, AlgoError> {
    if !graph.is_symmetric() {
        return Err(AlgoError::RequiresSymmetricGraph);
    }
    let n = graph.num_vertices();
    let started = Instant::now();
    let degree: Vec<AtomicI64> = graph
        .vertices()
        .map(|v| AtomicI64::new(graph.out_degree(v) as i64))
        .collect();
    let alive: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(1)).collect();
    let coreness: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(0)).collect();
    let mut remaining = n;
    let mut stats = ExecStats::default();
    let out = SharedFrontier::new(n + 1);

    let mut k: i64 = 1;
    let max_degree = (0..n)
        .map(|v| graph.out_degree(v as VertexId))
        .max()
        .unwrap_or(0) as i64;
    while remaining > 0 && k <= max_degree + 1 {
        loop {
            stats.rounds += 1;
            // Full scan: the unordered formulation's inefficiency.
            stats.relaxations += n as u64;
            out.reset();
            pool.parallel_for(0..n, 256, |v| {
                if alive[v].load(Ordering::Relaxed) == 1
                    && degree[v].load(Ordering::Relaxed) < k
                    && alive[v].swap(0, Ordering::Relaxed) == 1
                {
                    out.push(v as VertexId);
                }
            });
            let peeled = out.to_vec();
            if peeled.is_empty() {
                break;
            }
            remaining -= peeled.len();
            let peeled_ref = &peeled;
            pool.parallel_for(0..peeled.len(), 64, |i| {
                let v = peeled_ref[i];
                coreness[v as usize].store(k - 1, Ordering::Relaxed);
                for e in graph.out_edges(v) {
                    if alive[e.dst as usize].load(Ordering::Relaxed) == 1 {
                        degree[e.dst as usize].fetch_sub(1, Ordering::Relaxed);
                    }
                }
            });
        }
        k += 1;
    }

    stats.elapsed = started.elapsed();
    Ok(Coreness {
        coreness: coreness.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::{dijkstra, kcore_serial};
    use priograph_graph::gen::GraphGen;

    #[test]
    fn bellman_ford_matches_dijkstra() {
        let pool = Pool::new(4);
        for seed in [2, 9] {
            let g = GraphGen::rmat(8, 8)
                .seed(seed)
                .weights_uniform(1, 100)
                .build();
            let bf = bellman_ford_on(&pool, &g, 0).unwrap();
            assert_eq!(bf.dist, dijkstra(&g, 0), "seed={seed}");
        }
    }

    #[test]
    fn bellman_ford_is_less_work_efficient_on_weighted_social_graphs() {
        // Paper Figure 1: ordered algorithms avoid redundant relaxations.
        // With skewed degrees and wide weights, Bellman-Ford repeatedly
        // re-relaxes hub out-edges; Δ-stepping with a small Δ does not.
        let pool = Pool::new(2);
        let g = GraphGen::rmat(8, 8)
            .seed(4)
            .weights_uniform(1, 1000)
            .build();
        let bf = bellman_ford_on(&pool, &g, 0).unwrap();
        let ordered = crate::sssp::delta_stepping_on(
            &pool,
            &g,
            0,
            &priograph_core::schedule::Schedule::eager_with_fusion(16),
        )
        .unwrap();
        assert_eq!(bf.dist, ordered.dist);
        assert!(
            bf.stats.relaxations > ordered.stats.relaxations,
            "unordered should do redundant work: {} vs {}",
            bf.stats.relaxations,
            ordered.stats.relaxations
        );
    }

    #[test]
    fn kcore_unordered_matches_serial() {
        let pool = Pool::new(4);
        let g = GraphGen::rmat(7, 6).seed(5).build().symmetrize();
        let unord = kcore_unordered_on(&pool, &g).unwrap();
        assert_eq!(unord.coreness, kcore_serial(&g));
    }

    #[test]
    fn kcore_unordered_rejects_asymmetric() {
        let g = priograph_graph::GraphBuilder::new(2).edge(0, 1, 1).build();
        let pool = Pool::new(1);
        assert!(kcore_unordered_on(&pool, &g).is_err());
    }

    #[test]
    fn bellman_ford_source_out_of_range() {
        let g = GraphGen::path(3).build();
        let pool = Pool::new(1);
        assert!(bellman_ford_on(&pool, &g, 7).is_err());
    }
}
