//! Weighted breadth-first search: Δ-stepping with Δ fixed to 1
//! (paper §6.1: "wBFS is a special case of Δ-stepping for graphs with
//! positive integer edge weights, with delta fixed to 1"). Benchmarked on
//! graphs with weights in `[1, log n)`.

use crate::result::ShortestPaths;
use crate::AlgoError;
use priograph_core::prelude::*;
use priograph_graph::{CsrGraph, VertexId};
use priograph_parallel::Pool;

/// Runs wBFS from `source` on the global pool.
///
/// # Panics
///
/// Panics on invalid input; use [`wbfs_on`] for recoverable errors.
pub fn wbfs(graph: &CsrGraph, source: VertexId, schedule: &Schedule) -> ShortestPaths {
    wbfs_on(priograph_parallel::global(), graph, source, schedule)
        .expect("invalid wBFS configuration")
}

/// Runs wBFS from `source` on `pool`. Whatever Δ the schedule carries is
/// overridden to 1.
///
/// # Errors
///
/// Fails when `source` is out of range or the schedule is rejected.
pub fn wbfs_on(
    pool: &Pool,
    graph: &CsrGraph,
    source: VertexId,
    schedule: &Schedule,
) -> Result<ShortestPaths, AlgoError> {
    wbfs_observed(pool, graph, source, schedule, None)
}

/// Runs wBFS from `source` on `pool` (Δ forced to 1), reporting each
/// engine round to `observer`.
///
/// # Errors
///
/// Fails when `source` is out of range or the schedule is rejected.
pub fn wbfs_observed(
    pool: &Pool,
    graph: &CsrGraph,
    source: VertexId,
    schedule: &Schedule,
    observer: Option<&dyn priograph_core::engine::RoundObserver>,
) -> Result<ShortestPaths, AlgoError> {
    let schedule = schedule.clone().config_apply_priority_update_delta(1);
    crate::sssp::delta_stepping_observed(pool, graph, source, &schedule, observer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::dijkstra;
    use priograph_graph::gen::GraphGen;

    #[test]
    fn wbfs_matches_dijkstra_with_log_weights() {
        let pool = Pool::new(2);
        let g = GraphGen::rmat(8, 8).seed(4).weights_log_n().build();
        let reference = dijkstra(&g, 0);
        for schedule in [Schedule::eager_with_fusion(999), Schedule::lazy(999)] {
            // Δ is forced to 1 regardless of the schedule's value.
            let sp = wbfs_on(&pool, &g, 0, &schedule).unwrap();
            assert_eq!(sp.dist, reference);
        }
    }

    #[test]
    fn unit_weights_reduce_to_bfs_levels() {
        let pool = Pool::new(2);
        let g = GraphGen::rmat(7, 4).seed(9).weights_unit().build();
        let sp = wbfs_on(&pool, &g, 0, &Schedule::default()).unwrap();
        let levels = priograph_graph::props::bfs_levels(&g, 0);
        for v in g.vertices() {
            match levels[v as usize] {
                usize::MAX => assert!(!sp.is_reachable(v)),
                l => assert_eq!(sp.dist[v as usize], l as i64),
            }
        }
    }
}
