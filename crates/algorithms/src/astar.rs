//! A\* search (paper §6.1): point-to-point shortest path where the priority
//! is the *estimated* total distance through the vertex — the true distance
//! from the source (`g`) plus an admissible heuristic to the target.
//!
//! The paper uses road networks with longitude/latitude per vertex and a
//! straight-line distance heuristic; [`euclidean_heuristic`] provides the
//! same over generated road grids (whose metric weights make it admissible
//! and consistent).

use crate::result::{PointToPoint, UNREACHABLE};
use crate::AlgoError;
use priograph_core::engine::{run_ordered_on, StopView};
use priograph_core::prelude::*;
use priograph_core::udf::OrderedUdf;
use priograph_graph::{CsrGraph, VertexId, Weight};
use priograph_parallel::atomics::{atomic_vec, write_min};
use priograph_parallel::Pool;
use std::sync::atomic::{AtomicI64, Ordering};

/// The A\* relaxation: maintain true distances `g` separately, and use
/// `g + h` as the scheduling priority.
struct AStarUdf<'a, H> {
    g: &'a [AtomicI64],
    heuristic: &'a H,
}

impl<H> OrderedUdf for AStarUdf<'_, H>
where
    H: Fn(VertexId) -> i64 + Sync,
{
    #[inline]
    fn apply<P: PriorityOps>(&self, src: VertexId, dst: VertexId, weight: Weight, pq: &P) {
        let new_g = self.g[src as usize].load(Ordering::Relaxed) + i64::from(weight);
        if write_min(&self.g[dst as usize], new_g) {
            pq.update_min(dst, new_g + (self.heuristic)(dst));
        }
    }
}

/// Builds the straight-line-distance heuristic to `target` from the graph's
/// coordinates, scaled by `scale` (use
/// [`road_metric_scale`] for generated road grids).
///
/// # Errors
///
/// Fails when the graph carries no coordinates.
pub fn euclidean_heuristic(
    graph: &CsrGraph,
    target: VertexId,
    scale: f64,
) -> Result<impl Fn(VertexId) -> i64 + Sync + use<'_>, AlgoError> {
    let coords = graph.coords().ok_or(AlgoError::MissingCoordinates)?;
    crate::check_vertex(target, graph.num_vertices())?;
    let goal = coords[target as usize];
    Ok(move |v: VertexId| (coords[v as usize].distance(&goal) * scale).floor() as i64)
}

/// The weight scale of [`priograph_graph::gen::GraphGen::road_grid`] metric
/// weights: weights are `ceil(euclidean * 100)`, so a `100.0`-scaled
/// straight-line heuristic is admissible.
pub fn road_metric_scale() -> f64 {
    100.0
}

/// Runs A\* on the global pool with the Euclidean heuristic.
///
/// # Panics
///
/// Panics on invalid input; use [`astar_on`] for recoverable errors.
pub fn astar(
    graph: &CsrGraph,
    source: VertexId,
    target: VertexId,
    schedule: &Schedule,
) -> PointToPoint {
    let h = euclidean_heuristic(graph, target, road_metric_scale())
        .expect("graph must carry coordinates");
    astar_on(
        priograph_parallel::global(),
        graph,
        source,
        target,
        schedule,
        &h,
    )
    .expect("invalid A* configuration")
}

/// Runs A\* from `source` to `target` on `pool` with a caller-supplied
/// heuristic. The heuristic must be admissible (never overestimate) and
/// consistent for exact results.
///
/// # Errors
///
/// Fails when an endpoint is out of range or the schedule is rejected.
pub fn astar_on<H>(
    pool: &Pool,
    graph: &CsrGraph,
    source: VertexId,
    target: VertexId,
    schedule: &Schedule,
    heuristic: &H,
) -> Result<PointToPoint, AlgoError>
where
    H: Fn(VertexId) -> i64 + Sync,
{
    let n = graph.num_vertices();
    crate::check_vertex(source, n)?;
    crate::check_vertex(target, n)?;

    let g = atomic_vec(n, UNREACHABLE);
    g[source as usize].store(0, Ordering::Relaxed);

    // Priority = f = g + h; the source's f is just h(source).
    let problem = OrderedProblem::lower_first(graph)
        .allow_coarsening()
        .init_constant(NULL_PRIORITY)
        .seed(source, heuristic(source));

    let udf = AStarUdf { g: &g, heuristic };
    // f(target) = g(target) since h(target) = 0; stop once the current
    // bucket's priority reaches it.
    let stop = move |current_priority: i64, view: &StopView<'_>| {
        current_priority >= view.priority_of(target)
    };
    let out = run_ordered_on(pool, &problem, schedule, &udf, Some(&stop))?;
    let dist: Vec<i64> = g.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    let d = dist[target as usize];
    Ok(PointToPoint {
        distance: (d < UNREACHABLE).then_some(d),
        dist,
        stats: out.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::dijkstra;
    use priograph_graph::gen::GraphGen;

    #[test]
    fn astar_matches_dijkstra_on_road_grids() {
        let pool = Pool::new(4);
        let g = GraphGen::road_grid(16, 16).seed(1).build();
        let reference = dijkstra(&g, 0);
        for target in [10u32, 100, 255] {
            let h = euclidean_heuristic(&g, target, road_metric_scale()).unwrap();
            for schedule in [Schedule::eager_with_fusion(256), Schedule::lazy(256)] {
                let r = astar_on(&pool, &g, 0, target, &schedule, &h).unwrap();
                assert_eq!(r.distance, Some(reference[target as usize]), "t={target}");
            }
        }
    }

    #[test]
    fn heuristic_prunes_relaxations_versus_zero_heuristic() {
        let pool = Pool::new(2);
        let g = GraphGen::road_grid(30, 30).seed(7).build();
        // Source top-left, target adjacent-ish: A* should only explore a
        // corridor, the zero heuristic (PPSP) explores a ball.
        let (s, t) = (0u32, 31u32);
        let schedule = Schedule::eager_with_fusion(128);
        let h = euclidean_heuristic(&g, t, road_metric_scale()).unwrap();
        let astar_run = astar_on(&pool, &g, s, t, &schedule, &h).unwrap();
        let zero = |_: VertexId| 0i64;
        let ppsp_run = astar_on(&pool, &g, s, t, &schedule, &zero).unwrap();
        assert_eq!(astar_run.distance, ppsp_run.distance);
        assert!(
            astar_run.stats.relaxations <= ppsp_run.stats.relaxations,
            "heuristic must not explore more: {} vs {}",
            astar_run.stats.relaxations,
            ppsp_run.stats.relaxations
        );
    }

    #[test]
    fn missing_coordinates_is_an_error() {
        let g = GraphGen::rmat(5, 4).seed(1).build();
        let err = match euclidean_heuristic(&g, 0, 100.0) {
            Err(e) => e,
            Ok(_) => panic!("expected MissingCoordinates"),
        };
        assert_eq!(err, AlgoError::MissingCoordinates);
    }

    #[test]
    fn astar_to_self_is_zero() {
        let pool = Pool::new(1);
        let g = GraphGen::road_grid(6, 6).seed(3).build();
        let h = euclidean_heuristic(&g, 0, road_metric_scale()).unwrap();
        let r = astar_on(&pool, &g, 0, 0, &Schedule::default(), &h).unwrap();
        assert_eq!(r.distance, Some(0));
    }
}
