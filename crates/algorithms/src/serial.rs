//! Serial reference implementations used for correctness validation.

use crate::result::UNREACHABLE;
use priograph_graph::{CsrGraph, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Textbook Dijkstra with a binary heap.
pub fn dijkstra(graph: &CsrGraph, source: VertexId) -> Vec<i64> {
    let n = graph.num_vertices();
    let mut dist = vec![UNREACHABLE; n];
    if n == 0 {
        return dist;
    }
    let mut heap: BinaryHeap<Reverse<(i64, VertexId)>> = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale heap entry
        }
        for e in graph.out_edges(u) {
            let nd = d + i64::from(e.weight);
            if nd < dist[e.dst as usize] {
                dist[e.dst as usize] = nd;
                heap.push(Reverse((nd, e.dst)));
            }
        }
    }
    dist
}

/// Serial k-core peeling in O(n + m) with array buckets
/// (Matula–Beck degeneracy ordering).
///
/// # Panics
///
/// Debug-asserts the graph is symmetric; results are meaningless otherwise.
pub fn kcore_serial(graph: &CsrGraph) -> Vec<i64> {
    debug_assert!(graph.is_symmetric(), "k-core needs a symmetric graph");
    let n = graph.num_vertices();
    let mut degree: Vec<usize> = (0..n).map(|v| graph.out_degree(v as VertexId)).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);

    // Bucket sort vertices by degree.
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_degree + 1];
    for v in 0..n {
        buckets[degree[v]].push(v as VertexId);
    }

    let mut coreness = vec![0i64; n];
    let mut removed = vec![false; n];
    let mut current_core = 0usize;
    let mut d = 0usize;
    while d <= max_degree {
        let Some(v) = buckets[d].pop() else {
            d += 1;
            continue;
        };
        if removed[v as usize] || degree[v as usize] != d {
            continue; // stale bucket entry
        }
        current_core = current_core.max(d);
        coreness[v as usize] = current_core as i64;
        removed[v as usize] = true;
        for e in graph.out_edges(v) {
            let u = e.dst as usize;
            if !removed[u] && degree[u] > d {
                degree[u] -= 1;
                buckets[degree[u]].push(e.dst);
                if degree[u] < d {
                    d = degree[u];
                }
            }
        }
        // Peeling may have created smaller-degree vertices; restart scan low.
        d = d.min(degree[v as usize]);
    }
    coreness
}

#[cfg(test)]
mod tests {
    use super::*;
    use priograph_graph::gen::GraphGen;
    use priograph_graph::GraphBuilder;

    #[test]
    fn dijkstra_on_diamond() {
        let g = GraphBuilder::new(4)
            .edge(0, 1, 5)
            .edge(0, 2, 1)
            .edge(2, 1, 1)
            .edge(1, 3, 2)
            .build();
        assert_eq!(dijkstra(&g, 0), vec![0, 2, 1, 4]);
    }

    #[test]
    fn dijkstra_unreachable() {
        let g = GraphBuilder::new(3).edge(0, 1, 1).build();
        let d = dijkstra(&g, 0);
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn kcore_serial_on_clique() {
        // K4: every vertex has coreness 3.
        let mut edges = Vec::new();
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    edges.push((i, j, 1));
                }
            }
        }
        let mut g = GraphBuilder::new(4).edges(edges).build();
        g = g.symmetrize();
        assert_eq!(kcore_serial(&g), vec![3; 4]);
    }

    #[test]
    fn kcore_serial_on_path() {
        let g = GraphGen::path(5).build().symmetrize();
        assert_eq!(kcore_serial(&g), vec![1; 5]);
    }

    #[test]
    fn kcore_serial_structural_invariant() {
        // Every vertex with coreness c has >= c neighbors of coreness >= c.
        let g = GraphGen::rmat(8, 6).seed(2).build().symmetrize();
        let coreness = kcore_serial(&g);
        for v in g.vertices() {
            let c = coreness[v as usize];
            let strong = g
                .out_edges(v)
                .iter()
                .filter(|e| coreness[e.dst as usize] >= c)
                .count() as i64;
            assert!(
                strong >= c,
                "vertex {v}: coreness {c} but only {strong} strong neighbors"
            );
        }
    }
}
