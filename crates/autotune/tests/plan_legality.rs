//! Property tests for the planning layer's legality contract: **every plan
//! the cache or the tuner can install passes the engine's `ScheduleError`
//! validation for its algorithm family** — the planner must never
//! synthesize a documented-unsupported combination from the schedule
//! support matrix (`docs/ARCHITECTURE.md`).
//!
//! Plans reach a cache three ways: heuristic seeding from a
//! [`GraphProfile`], tuner winners from [`tune_for_graph`], and manifest
//! restore (which re-validates through the same `PlanCache::install`).
//! These tests cover the first two generators exhaustively-at-random and
//! pin the family-level check ([`QueryPlan::validate`]) to the engine-level
//! check ([`priograph_core::engine::validate`]) it abstracts.

use priograph_autotune::{space_for, tune_for_graph};
use priograph_core::engine::validate;
use priograph_core::plan::{AlgoFamily, GraphProfile, PlanOrigin, QueryPlan};
use priograph_core::prelude::*;
use priograph_core::udf::DecrementToFloor;
use priograph_graph::gen::GraphGen;
use priograph_graph::CsrGraph;
use priograph_parallel::Pool;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn family_of(index: u8) -> AlgoFamily {
    AlgoFamily::ALL[index as usize % AlgoFamily::ALL.len()]
}

/// The engine-level check a query of `family` would hit at execution time,
/// with the family's representative problem + UDF — exactly what
/// `run_ordered_on` validates before running.
fn engine_accepts(family: AlgoFamily, schedule: &Schedule, graph: &CsrGraph) -> bool {
    match family {
        AlgoFamily::Sssp => {
            let problem = OrderedProblem::lower_first(graph)
                .allow_coarsening()
                .init_constant(NULL_PRIORITY)
                .seed(0, 0);
            validate(&problem, schedule, &MinPlusWeight).is_ok()
        }
        AlgoFamily::Wbfs => {
            // The wBFS driver pins Δ to 1 before validating, so the engine
            // sees the delta-1 schedule (same problem family as SSSP).
            let schedule = schedule.clone().config_apply_priority_update_delta(1);
            let problem = OrderedProblem::lower_first(graph)
                .allow_coarsening()
                .init_constant(NULL_PRIORITY)
                .seed(0, 0);
            validate(&problem, &schedule, &MinPlusWeight).is_ok()
        }
        AlgoFamily::KCore => {
            let degrees: Vec<i64> = graph
                .vertices()
                .map(|v| graph.out_degree(v) as i64)
                .collect();
            let problem = OrderedProblem::lower_first(graph)
                .init_per_vertex(degrees)
                .seed_all_finite();
            validate(&problem, schedule, &DecrementToFloor).is_ok()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Heuristic seeding — the plans a `PlanCache` starts with — is legal
    /// for every family over arbitrary (including degenerate) profiles.
    #[test]
    fn heuristic_plans_pass_engine_validation(
        vertices in 0usize..2_000_000,
        edges in 0usize..30_000_000,
        max_weight in 0i64..(1 << 20),
        has_coords in proptest::bool::ANY,
        symmetric in proptest::bool::ANY,
        family_index in 0u8..3,
    ) {
        let profile = GraphProfile {
            vertices,
            edges,
            avg_degree: if vertices == 0 { 0.0 } else { edges as f64 / vertices as f64 },
            max_weight,
            has_coords,
            symmetric,
        };
        let family = family_of(family_index);
        let plan = QueryPlan::heuristic(family, &profile);
        prop_assert!(plan.validate().is_ok(), "family check failed for {}", plan);
        let graph = GraphGen::road_grid(4, 4).seed(1).build();
        prop_assert!(
            engine_accepts(family, &plan.schedule, &graph),
            "engine rejected heuristic {}",
            plan
        );
    }

    /// Every schedule the tuner's search space can emit (samples and
    /// mutation chains), once normalized into a plan, agrees with the
    /// engine: plan-level Ok implies engine-level Ok. This is the exact
    /// invariant that lets `PlanCache::install` be the last line of
    /// defense.
    #[test]
    fn family_validation_implies_engine_validation_over_the_search_space(
        seed in 0u64..10_000,
        family_index in 0u8..3,
        mutations in 0usize..6,
    ) {
        let family = family_of(family_index);
        let space = space_for(family);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut schedule = space.sample(&mut rng);
        for _ in 0..mutations {
            schedule = space.mutate(&schedule, &mut rng);
        }
        let plan = QueryPlan::new(family, schedule, PlanOrigin::Tuned { trials: 1 });
        // The per-family spaces are constructed to stay legal — and the
        // normalization in QueryPlan::new (Δ pinning) must keep them so.
        prop_assert!(plan.validate().is_ok(), "space emitted illegal {}", plan);
        let graph = GraphGen::rmat(5, 4).seed(3).build().symmetrize();
        prop_assert!(
            engine_accepts(family, &plan.schedule, &graph),
            "family check passed but engine rejected {}",
            plan
        );
    }

    /// End-to-end: tuner winners against real graphs are installable and
    /// engine-legal for every family.
    #[test]
    fn tuner_winners_pass_engine_validation(
        seed in 0u64..1_000,
        family_index in 0u8..3,
        road in proptest::bool::ANY,
    ) {
        let family = family_of(family_index);
        let pool = Pool::new(1);
        let graph = if road {
            GraphGen::road_grid(5, 5).seed(seed).build()
        } else {
            GraphGen::rmat(5, 4).seed(seed).weights_uniform(1, 60).build().symmetrize()
        };
        // Small budget: the property is legality, not quality.
        let (plan, result) = tune_for_graph(&pool, &graph, family, 3, seed);
        prop_assert!(plan.validate().is_ok(), "tuner installed illegal {}", plan);
        prop_assert!(engine_accepts(family, &plan.schedule, &graph));
        prop_assert!(matches!(plan.origin, PlanOrigin::Tuned { .. }));
        prop_assert!(!result.trials.is_empty());
    }
}
