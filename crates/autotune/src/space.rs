//! The tunable schedule space.

use priograph_core::schedule::{Direction, Parallelization, PriorityUpdateStrategy, Schedule};
use rand::rngs::StdRng;
use rand::Rng;

/// A cartesian space of schedule knobs (paper Table 2), with per-algorithm
/// presets that exclude illegal combinations up front.
#[derive(Debug, Clone)]
pub struct ScheduleSpace {
    /// Candidate bucket-update strategies.
    pub strategies: Vec<PriorityUpdateStrategy>,
    /// Candidate coarsening factors.
    pub deltas: Vec<i64>,
    /// Candidate fusion thresholds.
    pub fusion_thresholds: Vec<usize>,
    /// Candidate open-bucket counts.
    pub num_buckets: Vec<usize>,
    /// Candidate traversal directions.
    pub directions: Vec<Direction>,
    /// Candidate dynamic grains.
    pub grains: Vec<usize>,
}

impl ScheduleSpace {
    /// Space for Δ-stepping-family algorithms (SSSP, wBFS, PPSP, A\*):
    /// Δ ranges over powers of two up to 2^17 (§6.2: road networks want
    /// 2^13–2^17, social networks 1–100).
    pub fn sssp_like() -> Self {
        ScheduleSpace {
            strategies: vec![
                PriorityUpdateStrategy::EagerWithFusion,
                PriorityUpdateStrategy::EagerNoFusion,
                PriorityUpdateStrategy::Lazy,
            ],
            deltas: (0..18).map(|p| 1i64 << p).collect(),
            fusion_thresholds: vec![100, 500, 1000, 5000, 20000],
            num_buckets: vec![32, 128, 512],
            directions: vec![Direction::SparsePush],
            grains: vec![16, 64, 256, 1024],
        }
    }

    /// Space for strict-priority peeling algorithms (k-core): Δ fixed to 1,
    /// histogram strategy included.
    pub fn kcore_like() -> Self {
        ScheduleSpace {
            strategies: vec![
                PriorityUpdateStrategy::LazyConstantSum,
                PriorityUpdateStrategy::Lazy,
                PriorityUpdateStrategy::EagerNoFusion,
                PriorityUpdateStrategy::EagerWithFusion,
            ],
            deltas: vec![1],
            fusion_thresholds: vec![100, 1000, 10000],
            num_buckets: vec![32, 128, 512],
            directions: vec![Direction::SparsePush],
            grains: vec![16, 64, 256],
        }
    }

    /// Number of points in the space.
    pub fn size(&self) -> usize {
        self.strategies.len()
            * self.deltas.len()
            * self.fusion_thresholds.len()
            * self.num_buckets.len()
            * self.directions.len()
            * self.grains.len()
    }

    /// Draws a uniform random schedule.
    pub fn sample(&self, rng: &mut StdRng) -> Schedule {
        let pick = |rng: &mut StdRng, n: usize| rng.gen_range(0..n);
        Schedule {
            priority_update: self.strategies[pick(rng, self.strategies.len())],
            delta: self.deltas[pick(rng, self.deltas.len())],
            fusion_threshold: self.fusion_thresholds[pick(rng, self.fusion_thresholds.len())],
            num_open_buckets: self.num_buckets[pick(rng, self.num_buckets.len())],
            direction: self.directions[pick(rng, self.directions.len())],
            parallelization: Parallelization::DynamicVertex {
                grain: self.grains[pick(rng, self.grains.len())],
            },
        }
    }

    /// Mutates one knob of `base` (hill-climbing neighborhood).
    pub fn mutate(&self, base: &Schedule, rng: &mut StdRng) -> Schedule {
        let mut s = base.clone();
        match rng.gen_range(0..5) {
            0 => s.priority_update = self.strategies[rng.gen_range(0..self.strategies.len())],
            1 => s.delta = self.deltas[rng.gen_range(0..self.deltas.len())],
            2 => {
                s.fusion_threshold =
                    self.fusion_thresholds[rng.gen_range(0..self.fusion_thresholds.len())]
            }
            3 => s.num_open_buckets = self.num_buckets[rng.gen_range(0..self.num_buckets.len())],
            _ => {
                s.parallelization = Parallelization::DynamicVertex {
                    grain: self.grains[rng.gen_range(0..self.grains.len())],
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sssp_space_is_large() {
        let space = ScheduleSpace::sssp_like();
        assert!(space.size() > 1000, "space of {} too small", space.size());
    }

    #[test]
    fn samples_stay_in_space() {
        let space = ScheduleSpace::sssp_like();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let s = space.sample(&mut rng);
            assert!(space.strategies.contains(&s.priority_update));
            assert!(space.deltas.contains(&s.delta));
        }
    }

    #[test]
    fn mutation_changes_at_most_one_knob() {
        let space = ScheduleSpace::sssp_like();
        let mut rng = StdRng::seed_from_u64(2);
        let base = space.sample(&mut rng);
        for _ in 0..50 {
            let m = space.mutate(&base, &mut rng);
            let mut diffs = 0;
            diffs += usize::from(m.priority_update != base.priority_update);
            diffs += usize::from(m.delta != base.delta);
            diffs += usize::from(m.fusion_threshold != base.fusion_threshold);
            diffs += usize::from(m.num_open_buckets != base.num_open_buckets);
            diffs += usize::from(m.parallelization != base.parallelization);
            assert!(diffs <= 1);
        }
    }

    #[test]
    fn kcore_space_fixes_delta() {
        let space = ScheduleSpace::kcore_like();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            assert_eq!(space.sample(&mut rng).delta, 1);
        }
    }
}
