//! The stochastic search loop.

use crate::space::ScheduleSpace;
use priograph_core::schedule::Schedule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// One evaluated schedule.
#[derive(Debug, Clone)]
pub struct TrialRecord {
    /// The schedule tried.
    pub schedule: Schedule,
    /// Its measured cost, or `None` when the evaluator rejected it.
    pub cost: Option<Duration>,
}

/// The outcome of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Best schedule found.
    pub best: Schedule,
    /// Its cost.
    pub best_cost: Duration,
    /// Every trial, in order.
    pub trials: Vec<TrialRecord>,
}

impl TuneResult {
    /// Index of the trial that discovered the best schedule.
    pub fn best_trial_index(&self) -> usize {
        self.trials
            .iter()
            .position(|t| t.cost == Some(self.best_cost))
            .unwrap_or(0)
    }
}

/// A random-sampling + mutation-hill-climbing ensemble over a
/// [`ScheduleSpace`], in the spirit of the paper's OpenTuner setup.
#[derive(Debug, Clone)]
pub struct Autotuner {
    space: ScheduleSpace,
    max_trials: usize,
    time_budget: Duration,
    seed: u64,
    /// Probability of exploring (random sample) vs exploiting (mutating the
    /// incumbent).
    explore_probability: f64,
}

impl Autotuner {
    /// Creates a tuner with defaults matching the paper's observations
    /// (30–40 trials usually suffice).
    pub fn new(space: ScheduleSpace) -> Self {
        Autotuner {
            space,
            max_trials: 40,
            time_budget: Duration::from_secs(300),
            seed: 0xA0707,
            explore_probability: 0.4,
        }
    }

    /// Sets the trial budget.
    pub fn trials(mut self, n: usize) -> Self {
        self.max_trials = n;
        self
    }

    /// Sets the wall-clock budget ("users can specify a time limit to
    /// reduce autotuning time", §6.2).
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = budget;
        self
    }

    /// Sets the RNG seed (tuning is deterministic given a deterministic
    /// evaluator).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the search. `eval` measures one schedule, returning `None` for
    /// illegal combinations (which still consume a trial, as in OpenTuner).
    ///
    /// # Panics
    ///
    /// Panics if no legal schedule was found within the budget.
    pub fn tune<F>(&self, mut eval: F) -> TuneResult
    where
        F: FnMut(&Schedule) -> Option<Duration>,
    {
        let started = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut trials = Vec::new();
        let mut best: Option<(Schedule, Duration)> = None;

        for trial in 0..self.max_trials {
            if started.elapsed() > self.time_budget && best.is_some() {
                break;
            }
            let candidate = match &best {
                // Warm-up and exploration: uniform random samples.
                None => self.space.sample(&mut rng),
                Some(_) if trial < 4 || rng.gen_bool(self.explore_probability) => {
                    self.space.sample(&mut rng)
                }
                // Exploitation: mutate the incumbent.
                Some((incumbent, _)) => self.space.mutate(incumbent, &mut rng),
            };
            let cost = eval(&candidate);
            trials.push(TrialRecord {
                schedule: candidate.clone(),
                cost,
            });
            if let Some(cost) = cost {
                if best.as_ref().is_none_or(|(_, b)| cost < *b) {
                    best = Some((candidate, cost));
                }
            }
        }

        let (best, best_cost) = best.expect("no legal schedule found within the budget");
        TuneResult {
            best,
            best_cost,
            trials,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic convex-ish cost landscape: optimum at delta = 256,
    /// eager-with-fusion preferred.
    fn synthetic_cost(s: &Schedule) -> Option<Duration> {
        use priograph_core::schedule::PriorityUpdateStrategy::*;
        let strategy_penalty = match s.priority_update {
            EagerWithFusion => 0,
            EagerNoFusion => 50,
            Lazy => 120,
            LazyConstantSum => return None, // illegal for SSSP
        };
        let delta_penalty = (s.delta - 256).unsigned_abs() / 4;
        Some(Duration::from_micros(
            100 + strategy_penalty + delta_penalty,
        ))
    }

    #[test]
    fn finds_near_optimal_schedule() {
        let tuner = Autotuner::new(ScheduleSpace::sssp_like())
            .trials(40)
            .seed(11);
        let result = tuner.tune(synthetic_cost);
        // Optimal cost is 100us + small delta penalty; within 5% of the
        // hand-tuned optimum mirrors the paper's §6.2 claim.
        assert!(
            result.best_cost <= Duration::from_micros(170),
            "found {:?}",
            result.best_cost
        );
        assert!(result.trials.len() <= 40);
    }

    #[test]
    fn deterministic_per_seed() {
        let tuner = Autotuner::new(ScheduleSpace::sssp_like())
            .trials(20)
            .seed(5);
        let a = tuner.tune(synthetic_cost);
        let b = tuner.tune(synthetic_cost);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_cost, b.best_cost);
    }

    #[test]
    fn rejected_schedules_are_recorded_but_not_chosen() {
        let tuner = Autotuner::new(ScheduleSpace::kcore_like())
            .trials(30)
            .seed(3);
        // Only lazy_constant_sum is "legal" in this synthetic evaluator.
        let result = tuner.tune(|s| {
            use priograph_core::schedule::PriorityUpdateStrategy::*;
            match s.priority_update {
                LazyConstantSum => Some(Duration::from_micros(10)),
                _ => None,
            }
        });
        assert_eq!(
            result.best.priority_update,
            priograph_core::schedule::PriorityUpdateStrategy::LazyConstantSum
        );
        assert!(result.trials.iter().any(|t| t.cost.is_none()));
    }

    #[test]
    fn best_trial_index_points_at_best() {
        let tuner = Autotuner::new(ScheduleSpace::sssp_like())
            .trials(15)
            .seed(9);
        let result = tuner.tune(synthetic_cost);
        let record = &result.trials[result.best_trial_index()];
        assert_eq!(record.cost, Some(result.best_cost));
    }

    #[test]
    #[should_panic(expected = "no legal schedule")]
    fn all_rejected_panics() {
        let tuner = Autotuner::new(ScheduleSpace::sssp_like()).trials(5).seed(1);
        let _ = tuner.tune(|_| None);
    }
}
