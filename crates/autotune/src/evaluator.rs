//! Graph-backed cost evaluation: measure candidate schedules by running the
//! *real* algorithm against the *resident* graph.
//!
//! The paper's autotuner does not model costs — it executes the generated
//! binary under each candidate schedule and times it (§5.3). This module is
//! that evaluator for the serving stack: [`GraphEvaluator`] runs the
//! family's driver (Δ-stepping, wBFS, k-core peeling) on a caller-provided
//! [`Pool`] and graph, returning `None` for schedules the engine validation
//! rejects — which is exactly the `Option<Duration>` contract
//! [`Autotuner::tune`](crate::Autotuner) expects.
//!
//! [`tune_for_graph`] is the one-call wrapper the server's `TuneGraph`
//! request uses: pick the family's [`ScheduleSpace`], run the search on the
//! dispatcher's pool, and return a [`QueryPlan`] ready to install (already
//! normalized and family-validated — the planner can never install an
//! illegal combination, property-tested in `tests/plan_legality.rs`).

use crate::{Autotuner, ScheduleSpace, TuneResult};
use priograph_algorithms::{kcore, sssp, wbfs};
use priograph_core::plan::{AlgoFamily, PlanOrigin, QueryPlan};
use priograph_core::schedule::Schedule;
use priograph_graph::CsrGraph;
use priograph_parallel::Pool;
use std::time::{Duration, Instant};

/// Deterministic sample sources for the shortest-path families: spread
/// across the vertex range so one lucky source does not decide the plan.
fn sample_sources(n: usize, count: usize) -> Vec<u32> {
    let count = count.clamp(1, n.max(1));
    (0..count)
        .map(|i| ((i * 2 + 1) * n / (2 * count)) as u32)
        .collect()
}

/// Measures schedules by executing an algorithm family on a pool + graph.
///
/// For k-core the graph must already be symmetric (hand the evaluator the
/// catalog's symmetrized twin, the same graph queries run on).
#[derive(Debug)]
pub struct GraphEvaluator<'a> {
    pool: &'a Pool,
    graph: &'a CsrGraph,
    family: AlgoFamily,
    sources: Vec<u32>,
}

impl<'a> GraphEvaluator<'a> {
    /// Builds an evaluator running `family` on `graph` over `pool`.
    ///
    /// Shortest-path families measure the summed cost over a small set of
    /// deterministic sample sources; k-core (source-free) runs once.
    pub fn new(pool: &'a Pool, graph: &'a CsrGraph, family: AlgoFamily) -> GraphEvaluator<'a> {
        let sources = match family {
            AlgoFamily::Sssp | AlgoFamily::Wbfs => sample_sources(graph.num_vertices(), 3),
            AlgoFamily::KCore => Vec::new(),
        };
        GraphEvaluator {
            pool,
            graph,
            family,
            sources,
        }
    }

    /// Overrides the sample sources (shortest-path families only).
    pub fn with_sources(mut self, sources: Vec<u32>) -> Self {
        self.sources = sources;
        self
    }

    /// Measures one schedule: wall-clock over the family's sample workload,
    /// or `None` when the engine validation rejects the combination (an
    /// illegal trial, recorded but never chosen — the OpenTuner convention).
    pub fn evaluate(&self, schedule: &Schedule) -> Option<Duration> {
        // Cheap pre-check: reject family-illegal plans without spinning up
        // the engines (the engine itself re-validates per run).
        QueryPlan::new(self.family, schedule.clone(), PlanOrigin::Pinned)
            .validate()
            .ok()?;
        let started = Instant::now();
        match self.family {
            AlgoFamily::Sssp => {
                for &source in &self.sources {
                    sssp::delta_stepping_on(self.pool, self.graph, source, schedule).ok()?;
                }
            }
            AlgoFamily::Wbfs => {
                for &source in &self.sources {
                    wbfs::wbfs_on(self.pool, self.graph, source, schedule).ok()?;
                }
            }
            AlgoFamily::KCore => {
                kcore::kcore_on(self.pool, self.graph, schedule).ok()?;
            }
        }
        Some(started.elapsed())
    }
}

/// The schedule space the tuner searches for `family` — the per-algorithm
/// presets of [`ScheduleSpace`] keyed the planner's way.
pub fn space_for(family: AlgoFamily) -> ScheduleSpace {
    match family {
        AlgoFamily::Sssp => ScheduleSpace::sssp_like(),
        // wBFS pins Δ = 1, so searching Δ would burn trials on aliases of
        // the same execution; reuse the strict-priority space without the
        // k-core-only constant-sum strategy.
        AlgoFamily::Wbfs => {
            let mut space = ScheduleSpace::kcore_like();
            space.strategies.retain(|s| {
                *s != priograph_core::schedule::PriorityUpdateStrategy::LazyConstantSum
            });
            space
        }
        AlgoFamily::KCore => ScheduleSpace::kcore_like(),
    }
}

/// Runs the autotuner for `family` against a resident graph and returns the
/// winning plan plus the full trial log.
///
/// `trials` is the search budget (the paper's §6.2: 30–40 usually suffice);
/// `seed` makes the search deterministic for a deterministic machine state.
/// The returned plan carries [`PlanOrigin::Tuned`] and has passed
/// family-level validation.
pub fn tune_for_graph(
    pool: &Pool,
    graph: &CsrGraph,
    family: AlgoFamily,
    trials: usize,
    seed: u64,
) -> (QueryPlan, TuneResult) {
    let evaluator = GraphEvaluator::new(pool, graph, family);
    let tuner = Autotuner::new(space_for(family)).trials(trials).seed(seed);
    let result = tuner.tune(|s| evaluator.evaluate(s));
    let plan = QueryPlan::new(
        family,
        result.best.clone(),
        PlanOrigin::Tuned {
            trials: result.trials.len() as u32,
        },
    );
    debug_assert!(plan.validate().is_ok(), "tuner found an illegal winner");
    (plan, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use priograph_algorithms::serial::dijkstra;
    use priograph_graph::gen::GraphGen;

    #[test]
    fn evaluator_rejects_illegal_schedules_without_running() {
        let g = GraphGen::road_grid(6, 6).seed(1).build();
        let pool = Pool::new(1);
        let eval = GraphEvaluator::new(&pool, &g, AlgoFamily::Sssp);
        assert!(eval.evaluate(&Schedule::lazy_constant_sum()).is_none());
        assert!(eval.evaluate(&Schedule::lazy(0)).is_none());
        assert!(eval.evaluate(&Schedule::lazy(16)).is_some());
    }

    #[test]
    fn tuned_sssp_plan_is_legal_and_correct() {
        let g = GraphGen::road_grid(10, 10).seed(2).build();
        let pool = Pool::new(2);
        let (plan, result) = tune_for_graph(&pool, &g, AlgoFamily::Sssp, 8, 7);
        assert_eq!(plan.family, AlgoFamily::Sssp);
        assert!(plan.validate().is_ok());
        assert!(
            matches!(plan.origin, PlanOrigin::Tuned { trials } if trials as usize == result.trials.len())
        );
        // The winning schedule really executes and matches the reference.
        let sp = sssp::delta_stepping_on(&pool, &g, 0, &plan.schedule).unwrap();
        assert_eq!(sp.dist, dijkstra(&g, 0));
    }

    #[test]
    fn tuned_kcore_plan_stays_in_the_strict_priority_subspace() {
        let g = GraphGen::rmat(6, 5).seed(3).build().symmetrize();
        let pool = Pool::new(2);
        let (plan, _) = tune_for_graph(&pool, &g, AlgoFamily::KCore, 6, 5);
        assert_eq!(plan.schedule.delta, 1, "coarsening is illegal for k-core");
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn wbfs_space_excludes_constant_sum_and_coarsening() {
        let space = space_for(AlgoFamily::Wbfs);
        assert!(!space
            .strategies
            .contains(&priograph_core::schedule::PriorityUpdateStrategy::LazyConstantSum));
        assert_eq!(space.deltas, vec![1]);
    }

    #[test]
    fn sample_sources_are_spread_and_bounded() {
        assert_eq!(sample_sources(100, 3), vec![16, 50, 83]);
        assert_eq!(sample_sources(1, 3), vec![0]);
        assert!(sample_sources(2, 5).iter().all(|&s| s < 2));
    }
}
