//! Schedule autotuning (paper §5.3).
//!
//! The paper builds an OpenTuner-based stochastic search over the scheduling
//! language: "the autotuner ... stochastically searches through a large
//! number of optimization strategies ... and uses an ensemble of search
//! methods". §6.2 reports it finds schedules within 5% of hand-tuned ones
//! after 30–40 trials out of a ~10^6 schedule space.
//!
//! This crate reproduces that loop natively: a [`ScheduleSpace`] describes
//! the legal knob combinations for an algorithm family, and [`Autotuner`]
//! runs a random-sampling + mutation-hill-climbing ensemble under a trial
//! and time budget.
//!
//! # Example
//!
//! ```
//! use priograph_autotune::{Autotuner, ScheduleSpace};
//! use std::time::Duration;
//!
//! let space = ScheduleSpace::sssp_like();
//! let tuner = Autotuner::new(space).trials(10).seed(7);
//! // A synthetic cost: pretend delta = 16 is optimal.
//! let result = tuner.tune(|s| {
//!     Some(Duration::from_micros(100 + (s.delta - 16).unsigned_abs()))
//! });
//! assert!(result.best_cost < Duration::from_millis(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod evaluator;
mod space;
mod tuner;

pub use evaluator::{space_for, tune_for_graph, GraphEvaluator};
pub use space::ScheduleSpace;
pub use tuner::{Autotuner, TrialRecord, TuneResult};
