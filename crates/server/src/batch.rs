//! Batched point-query execution: per-worker reusable engines dispatched
//! across the [`Pool`].
//!
//! Full-vector queries (SSSP, k-core) want *intra*-query parallelism — the
//! bucket engines already provide it. Point-to-point queries are the
//! opposite: early termination (paper §6.1's PPSP) finalizes only a small
//! neighborhood, so the win comes from *inter*-query parallelism — many
//! independent queries sharing the resident graph. This module serves a
//! batch of point queries by handing each pool worker its own
//! [`QueryEngine`], a serial strict-priority engine (the Δ → 0 limit of
//! Δ-stepping, i.e. Dijkstra with early stop) whose buffers persist across
//! queries and across batches.
//!
//! The engines follow PR 2's zero-allocation discipline: distance storage is
//! reset *sparsely* (only vertices the previous query touched), the heap and
//! touched-list keep their capacity, and the answer slots are written
//! through a [`SliceWriter`] over a caller-reused vector — steady-state
//! serving rounds allocate nothing in the engine hot path (asserted by
//! `steady_state_batches_reuse_buffers`, the same way as the bucket queue's
//! buffer-stability test).

use priograph_algorithms::UNREACHABLE;
use priograph_graph::{CsrGraph, VertexId};
use priograph_parallel::shared::{SliceWriter, WorkerLocal};
use priograph_parallel::{ChunkCursor, Pool};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Answer to one point query.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PointAnswer {
    /// Shortest distance, or `None` when the target is unreachable.
    pub distance: Option<i64>,
    /// Edge relaxations the early-terminating run performed.
    pub relaxations: u64,
}

/// A reusable serial strict-priority engine for point queries.
///
/// Construction is cheap; the first query against an `n`-vertex graph sizes
/// the distance array, and every later query reuses it via sparse resets.
#[derive(Debug, Default)]
pub struct QueryEngine {
    /// `dist[v]` for the current query; always [`UNREACHABLE`] between
    /// queries (maintained by sparse resets, never a full rewrite).
    dist: Vec<i64>,
    /// Vertices whose `dist` entry differs from [`UNREACHABLE`].
    touched: Vec<VertexId>,
    /// Min-heap of `(dist, vertex)`; `clear` retains capacity, so the
    /// storage stays warm across queries.
    heap: BinaryHeap<Reverse<(i64, VertexId)>>,
}

impl QueryEngine {
    /// Creates an engine with no storage; buffers grow on first use.
    pub fn new() -> Self {
        QueryEngine::default()
    }

    /// Answers a point-to-point shortest-path query, stopping as soon as the
    /// target is finalized.
    ///
    /// Out-of-range endpoints yield `distance: None` with zero relaxations
    /// (the server layer validates and reports them before dispatch).
    pub fn point_query(&mut self, graph: &CsrGraph, source: u32, target: u32) -> PointAnswer {
        let n = graph.num_vertices();
        if source as usize >= n || target as usize >= n {
            return PointAnswer {
                distance: None,
                relaxations: 0,
            };
        }
        if self.dist.len() < n {
            self.dist.resize(n, UNREACHABLE);
        }
        debug_assert!(self.touched.is_empty() && self.heap.is_empty());

        let mut relaxations = 0u64;
        self.dist[source as usize] = 0;
        self.touched.push(source);
        self.heap.push(Reverse((0, source)));
        let mut answer = None;
        while let Some(Reverse((d, v))) = self.heap.pop() {
            if d > self.dist[v as usize] {
                continue; // stale copy; v was finalized at a smaller distance
            }
            if v == target {
                answer = Some(d);
                break;
            }
            for e in graph.out_edges(v) {
                relaxations += 1;
                let nd = d + e.weight as i64;
                let slot = &mut self.dist[e.dst as usize];
                if nd < *slot {
                    if *slot == UNREACHABLE {
                        self.touched.push(e.dst);
                    }
                    *slot = nd;
                    self.heap.push(Reverse((nd, e.dst)));
                }
            }
        }

        // Sparse reset: restore only what this query dirtied, so the next
        // query starts clean without an O(n) wipe or any reallocation.
        for &v in &self.touched {
            self.dist[v as usize] = UNREACHABLE;
        }
        self.touched.clear();
        self.heap.clear();
        PointAnswer {
            distance: answer,
            relaxations,
        }
    }

    /// Buffer capacities (dist, touched, heap), for tests asserting that
    /// steady-state batches reuse rather than reallocate.
    #[doc(hidden)]
    pub fn capacities(&self) -> (usize, usize, usize) {
        (
            self.dist.capacity(),
            self.touched.capacity(),
            self.heap.capacity(),
        )
    }
}

/// Runs a batch of point queries across the pool's workers, each worker
/// answering whole queries with its own persistent [`QueryEngine`].
#[derive(Debug, Default)]
pub struct BatchRunner {
    engines: WorkerLocal<QueryEngine>,
}

impl BatchRunner {
    /// Creates a runner; engines materialize per worker on first use.
    pub fn new() -> Self {
        BatchRunner::default()
    }

    /// Answers `queries` (as `(source, target)` pairs) into `answers`
    /// (cleared and refilled in query order).
    ///
    /// Workers claim queries through a dynamic cursor — point queries vary
    /// wildly in cost (a road-network query touching the whole component vs.
    /// an adjacent pair), so static partitioning would straggle.
    pub fn run(
        &mut self,
        pool: &Pool,
        graph: &CsrGraph,
        queries: &[(u32, u32)],
        answers: &mut Vec<PointAnswer>,
    ) {
        answers.clear();
        answers.resize(queries.len(), PointAnswer::default());
        self.engines.ensure(pool.num_threads());
        let engines = &self.engines;
        let cursor = ChunkCursor::new(queries.len(), 1);
        let writer = SliceWriter::new(answers.as_mut_slice());
        pool.broadcast(|w| {
            engines.with_mut(w.tid(), |engine| {
                while let Some(chunk) = cursor.next_chunk() {
                    for i in chunk {
                        let (source, target) = queries[i];
                        let answer = engine.point_query(graph, source, target);
                        // SAFETY contract of `write_copy`: index `i` is
                        // claimed by exactly one worker via the cursor.
                        writer.write_copy(i, &[answer]);
                    }
                }
            });
        });
    }

    /// Deterministically warms every per-worker engine by running the whole
    /// query set through each of them serially. [`BatchRunner::run`]'s
    /// dynamic cursor makes a parallel warm-up nondeterministic — a worker
    /// may claim few (or only cheap) queries, leaving its buffers below
    /// their steady-state size, so capacities captured after it could still
    /// grow in a later round. After this, every engine's buffers are at the
    /// maximum any subset of `queries` can demand, in any claiming order.
    #[doc(hidden)]
    pub fn warm_engines(&mut self, workers: usize, graph: &CsrGraph, queries: &[(u32, u32)]) {
        self.engines.ensure(workers);
        for engine in self.engines.iter_mut() {
            for &(source, target) in queries {
                let _ = engine.point_query(graph, source, target);
            }
        }
    }

    /// Capacities of every per-worker engine, for buffer-stability tests.
    #[doc(hidden)]
    pub fn engine_capacities(&mut self) -> Vec<(usize, usize, usize)> {
        self.engines.iter_mut().map(|e| e.capacities()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priograph_algorithms::serial::dijkstra;
    use priograph_graph::gen::GraphGen;

    #[test]
    fn point_queries_match_dijkstra() {
        let g = GraphGen::rmat(8, 8).seed(5).weights_uniform(1, 100).build();
        let mut engine = QueryEngine::new();
        for source in [0u32, 17, 200] {
            let reference = dijkstra(&g, source);
            for target in [1u32, 42, 255] {
                let a = engine.point_query(&g, source, target);
                let expected = (reference[target as usize] < UNREACHABLE)
                    .then_some(reference[target as usize]);
                assert_eq!(a.distance, expected, "{source}->{target}");
            }
        }
    }

    #[test]
    fn early_stop_skips_work_on_road_graphs() {
        let g = GraphGen::road_grid(24, 24).seed(5).build();
        let mut engine = QueryEngine::new();
        let near = engine.point_query(&g, 0, g.out_edges(0)[0].dst);
        let far = engine.point_query(&g, 0, (g.num_vertices() - 1) as u32);
        assert!(near.distance.is_some() && far.distance.is_some());
        assert!(
            near.relaxations < far.relaxations / 4,
            "adjacent target must stop early: {} vs {}",
            near.relaxations,
            far.relaxations
        );
    }

    #[test]
    fn out_of_range_endpoints_are_unreachable_not_panics() {
        let g = GraphGen::path(3).build();
        let mut engine = QueryEngine::new();
        assert_eq!(engine.point_query(&g, 9, 0).distance, None);
        assert_eq!(engine.point_query(&g, 0, 9).distance, None);
        // The engine stays usable afterwards.
        assert_eq!(engine.point_query(&g, 0, 2).distance, Some(2));
    }

    #[test]
    fn disconnected_target_is_none_and_engine_resets() {
        let g = priograph_graph::GraphBuilder::new(4)
            .edge(0, 1, 3)
            .edge(2, 3, 1)
            .build();
        let mut engine = QueryEngine::new();
        assert_eq!(engine.point_query(&g, 0, 3).distance, None);
        // The failed query's touched set must not leak into the next one.
        assert_eq!(engine.point_query(&g, 2, 3).distance, Some(1));
        assert_eq!(engine.point_query(&g, 0, 1).distance, Some(3));
    }

    #[test]
    fn batch_runner_matches_dijkstra_across_thread_counts() {
        let g = GraphGen::road_grid(16, 16).seed(7).build();
        let n = g.num_vertices() as u32;
        let queries: Vec<(u32, u32)> = (0..64)
            .map(|i| ((i * 37) % n, (i * 101 + 13) % n))
            .collect();
        let mut expected = Vec::new();
        for &(s, t) in &queries {
            let d = dijkstra(&g, s)[t as usize];
            expected.push((d < UNREACHABLE).then_some(d));
        }
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let mut runner = BatchRunner::new();
            let mut answers = Vec::new();
            runner.run(&pool, &g, &queries, &mut answers);
            let got: Vec<Option<i64>> = answers.iter().map(|a| a.distance).collect();
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn steady_state_batches_reuse_buffers() {
        // The serving-layer analogue of the bucket queue's
        // steady_state_rounds_reuse_buffers: after a deterministic warm-up,
        // repeated identical batches must not grow any engine buffer and
        // must keep filling the same caller-owned answer storage. The
        // warm-up runs every query through every engine serially — a
        // parallel warm-up is not enough, because the dynamic cursor can
        // hand a worker so few queries that its buffers are still below
        // steady-state when capacities are captured (the release-mode flake
        // noted in PR 8).
        let g = GraphGen::road_grid(20, 20).seed(3).build();
        let n = g.num_vertices() as u32;
        let pool = Pool::new(4);
        let queries: Vec<(u32, u32)> = (0..128)
            .map(|i| ((i * 53) % n, (i * 71 + 29) % n))
            .collect();
        let mut runner = BatchRunner::new();
        let mut answers = Vec::new();

        runner.warm_engines(pool.num_threads(), &g, &queries);
        runner.run(&pool, &g, &queries, &mut answers);
        let warm = runner.engine_capacities();
        let answers_ptr = answers.as_ptr();
        let answers_cap = answers.capacity();
        assert!(
            warm.iter().any(|&(d, _, _)| d > 0),
            "warm-up must materialize engine buffers"
        );

        for round in 0..6 {
            runner.run(&pool, &g, &queries, &mut answers);
            assert_eq!(
                runner.engine_capacities(),
                warm,
                "round {round} must not grow any per-worker engine buffer"
            );
            assert_eq!(
                answers.as_ptr(),
                answers_ptr,
                "round {round} answers realloc"
            );
            assert_eq!(answers.capacity(), answers_cap);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let g = GraphGen::path(4).build();
        let pool = Pool::new(2);
        let mut runner = BatchRunner::new();
        let mut answers = vec![PointAnswer::default(); 3];
        runner.run(&pool, &g, &[], &mut answers);
        assert!(answers.is_empty());
    }
}
