//! `priograph-serve` — the serving layer over the priograph engines.
//!
//! The CGO 2020 paper makes ordered queries (SSSP, PPSP, wBFS, k-core) fast
//! under the assumption that the graph is preprocessed and resident; this
//! crate is the systems half of that amortization. It provides:
//!
//! * [`server`] — a std-TCP server holding a **catalog of resident graphs**
//!   (snapshot-loaded zero-copy via
//!   [`priograph_graph::SnapshotView`] where the format allows), with a
//!   single dispatcher thread that owns the worker
//!   [`Pool`](priograph_parallel::Pool), keeps **per-graph engine state**,
//!   and **batches** concurrent queries; admission is bounded by a
//!   pending-query budget (typed `Busy` replies, no unbounded queueing);
//! * [`catalog`] — the named-graph registry behind `LoadGraph` /
//!   `UnloadGraph` / `ListGraphs`;
//! * [`protocol`] — the versioned, length-prefixed binary wire protocol
//!   (typed PPSP/SSSP/wBFS/k-core queries carrying a graph id, schedule
//!   selection, typed errors, catalog + backpressure messages). The
//!   normative spec is `docs/PROTOCOL.md`;
//! * [`batch`] — per-worker reusable point-query engines: a steady stream
//!   of PPSP queries is served with zero allocation in the engine hot path,
//!   extending PR 2's zero-allocation frontier discipline across queries;
//! * [`client`] — a blocking client with the client half of the failure
//!   model: bounded timeouts, jittered backoff honoring `retry_after_ms`,
//!   and a circuit breaker ([`client::ResilientClient`]);
//! * [`spec`] — shared graph-source handling for the `priograph-server`
//!   and `priograph-client` binaries;
//! * `obs` (internal) — the telemetry surface behind the v5 `StatsV2`
//!   frame: lock-free phase histograms (global and per-(graph, op)),
//!   engine round profiling, exactly-once error-kind counters, and the
//!   slow-query ring (`docs/ARCHITECTURE.md` §8);
//! * `faults` (feature `fault-inject` only) — a deterministic
//!   seed-driven fault-injection layer over the server's stream I/O and
//!   snapshot loads, powering the reproducible chaos suite.
//!
//! The failure model end to end — per-query deadlines, overload shedding,
//! slow-loris defense, graceful drain — is documented in
//! `docs/ARCHITECTURE.md` §7 and `docs/PROTOCOL.md` §6.
//!
//! No async runtime is used: connections are OS threads, and the protocol
//! is strict request/response (see `vendor/README.md` for the rationale —
//! the build environment vendors all dependencies by hand, and a hand-rolled
//! tokio is a far worse idea than thread-per-connection at the connection
//! counts a resident-graph server sees). `docs/ARCHITECTURE.md` walks the
//! whole design.
//!
//! # Example
//!
//! ```
//! use priograph_serve::client::Client;
//! use priograph_serve::protocol::Query;
//! use priograph_serve::server::{serve_named, ServerConfig};
//! use priograph_graph::gen::GraphGen;
//!
//! // Two resident graphs, queried by id over one connection.
//! let roads = GraphGen::road_grid(8, 8).seed(1).build();
//! let social = GraphGen::rmat(6, 4).seed(2).weights_uniform(1, 100).build();
//! let handle = serve_named(
//!     vec![("roads".to_string(), roads), ("social".to_string(), social)],
//!     ServerConfig { threads: 2, ..Default::default() },
//! )
//! .unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let answers = client
//!     .batch(vec![Query::ppsp(0, 63).on_graph(0), Query::ppsp(0, 9).on_graph(1)])
//!     .unwrap();
//! assert_eq!(answers.len(), 2);
//! handle.stop();
//! ```

// See crates/graph/src/lib.rs: docs on public items are enforced, not
// suggested, for the crates the serving stack exposes.
#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod catalog;
pub mod client;
#[cfg(feature = "fault-inject")]
pub mod faults;
pub mod manifest;
mod obs;
pub mod plan_cache;
pub mod protocol;
pub mod server;
pub mod spec;

pub use client::Client;
pub use protocol::{
    BusyScope, ErrorKind, GraphId, GraphInfo, Query, QueryOp, Request, Response, SeriesSummary,
    ServerStats, StatsV2, TuneOutcome, WireError, WirePlan, WirePlanOrigin,
};
pub use server::{serve, serve_named, ServerConfig, ServerHandle};
