//! `priograph-serve` — the serving layer over the priograph engines.
//!
//! The CGO 2020 paper makes ordered queries (SSSP, PPSP, wBFS, k-core) fast
//! under the assumption that the graph is preprocessed and resident; this
//! crate is the systems half of that amortization. It provides:
//!
//! * [`server`] — a std-TCP server holding one resident
//!   [`CsrGraph`](priograph_graph::CsrGraph) (typically snapshot-loaded via
//!   [`priograph_graph::snapshot`]), with a single dispatcher thread that
//!   owns the worker [`Pool`](priograph_parallel::Pool) and **batches**
//!   concurrent queries against it;
//! * [`protocol`] — the versioned, length-prefixed binary wire protocol
//!   (typed PPSP/SSSP/wBFS/k-core queries, schedule selection, stats);
//! * [`batch`] — per-worker reusable point-query engines: a steady stream
//!   of PPSP queries is served with zero allocation in the engine hot path,
//!   extending PR 2's zero-allocation frontier discipline across queries;
//! * [`client`] — a blocking client;
//! * [`spec`] — shared graph-source handling for the `priograph-server`
//!   and `priograph-client` binaries.
//!
//! No async runtime is used: connections are OS threads, and the protocol
//! is strict request/response (see `vendor/README.md` for the rationale —
//! the build environment vendors all dependencies by hand, and a hand-rolled
//! tokio is a far worse idea than thread-per-connection at the connection
//! counts a resident-graph server sees).
//!
//! # Example
//!
//! ```
//! use priograph_serve::client::Client;
//! use priograph_serve::protocol::Query;
//! use priograph_serve::server::{serve, ServerConfig};
//! use priograph_graph::gen::GraphGen;
//!
//! let graph = GraphGen::road_grid(8, 8).seed(1).build();
//! let handle = serve(graph, ServerConfig { threads: 2, ..Default::default() }).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let answers = client.batch(vec![Query::ppsp(0, 63), Query::ppsp(5, 5)]).unwrap();
//! assert_eq!(answers.len(), 2);
//! handle.stop();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod client;
pub mod protocol;
pub mod server;
pub mod spec;

pub use client::Client;
pub use protocol::{Query, QueryOp, Request, Response, ServerStats, WireError};
pub use server::{serve, ServerConfig, ServerHandle};
