//! The graph catalog: named resident graphs behind stable ids.
//!
//! PR 3's server held exactly one resident graph; the catalog makes the
//! process multi-tenant. Each entry pins a [`CsrGraph`] (owned or zero-copy
//! memory-mapped — see [`SnapshotView`]), its lazily-symmetrized twin for
//! k-core, and per-graph counters. Queries address entries by [`GraphId`];
//! operators address them by name (`LoadGraph` / `UnloadGraph` on the wire,
//! `--graph-name` in the client).
//!
//! Lifetime rules that keep unloading safe without stalling the dispatcher:
//! entries are `Arc`ed, and a job resolves its entry *at submission*. An
//! `UnloadGraph` only removes the catalog's reference — queries already in
//! flight keep their `Arc` and finish against the evicted graph; the arrays
//! (and any backing mmap) are released when the last reference drops.

use crate::plan_cache::PlanCache;
use crate::protocol::{GraphId, GraphInfo};
use priograph_core::plan::GraphProfile;
use priograph_graph::{CsrGraph, LoadMode, MapOptions, SnapshotView};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One resident graph: the arrays, the k-core twin, the plan cache, and
/// counters.
#[derive(Debug)]
pub struct GraphEntry {
    /// Catalog id — what queries carry on the wire.
    pub id: GraphId,
    /// Operator-chosen name.
    pub name: String,
    /// The graph itself.
    pub graph: Arc<CsrGraph>,
    /// How the arrays are resident (owned heap vs. zero-copy mapping).
    pub mode: LoadMode,
    /// Queries answered against this graph.
    pub queries: AtomicU64,
    /// Queries admitted but not yet answered against this graph — the
    /// per-graph admission quota counter (`docs/ARCHITECTURE.md`
    /// §Admission).
    pub pending: AtomicU64,
    /// Installed per-family plans; seeded from [`GraphProfile`] heuristics
    /// at construction, replaced by `TuneGraph` winners.
    pub plans: PlanCache,
    /// Shape statistics the heuristic seeding used.
    pub profile: GraphProfile,
    /// The snapshot path backing this entry, when there is one — what the
    /// catalog manifest persists. Generated/in-process graphs have none
    /// and are skipped by persistence.
    pub source_path: Option<String>,
    /// Symmetrized view for k-core, computed on first use (the resident
    /// graph itself is reused when it is already symmetric).
    sym: OnceLock<Arc<CsrGraph>>,
}

impl GraphEntry {
    fn new(
        id: GraphId,
        name: String,
        graph: CsrGraph,
        mode: LoadMode,
        source_path: Option<String>,
    ) -> Arc<Self> {
        let profile = GraphProfile::of(&graph);
        Arc::new(GraphEntry {
            id,
            name,
            graph: Arc::new(graph),
            mode,
            queries: AtomicU64::new(0),
            pending: AtomicU64::new(0),
            plans: PlanCache::seeded(&profile),
            profile,
            source_path,
            sym: OnceLock::new(),
        })
    }

    /// The symmetrized twin (k-core and SetCover run on it).
    pub fn sym_graph(&self) -> Arc<CsrGraph> {
        self.sym
            .get_or_init(|| {
                if self.graph.is_symmetric() {
                    Arc::clone(&self.graph)
                } else {
                    Arc::new(self.graph.symmetrize())
                }
            })
            .clone()
    }

    /// Wire-facing description of this entry, installed plans included.
    pub fn info(&self) -> GraphInfo {
        GraphInfo {
            id: self.id,
            name: self.name.clone(),
            vertices: self.graph.num_vertices() as u64,
            edges: self.graph.num_edges() as u64,
            resident_bytes: self.graph.resident_bytes(),
            mode: self.mode,
            queries: self.queries.load(Ordering::Relaxed),
            plans: self.plans.wire_plans(),
        }
    }
}

/// Why a catalog mutation was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum CatalogError {
    /// `LoadGraph` named an already-resident graph.
    NameTaken(String),
    /// `UnloadGraph` (or a lookup) named no resident graph.
    UnknownName(String),
    /// The snapshot failed to open or validate.
    Load(String),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::NameTaken(name) => {
                write!(
                    f,
                    "a graph named {name:?} is already resident (unload it first)"
                )
            }
            CatalogError::UnknownName(name) => write!(f, "no resident graph named {name:?}"),
            CatalogError::Load(why) => write!(f, "snapshot failed to load: {why}"),
        }
    }
}

/// The set of resident graphs. Lookups are per-request (not per-query-row:
/// the dispatcher works with resolved `Arc<GraphEntry>`s), so a plain mutex
/// around two small maps is plenty.
#[derive(Debug, Default)]
pub struct Catalog {
    inner: Mutex<Inner>,
    /// Mapping knobs used by [`Catalog::load`] (`--mmap-populate`).
    map_options: MapOptions,
    /// Manifest file persisted on every catalog/plan change (`--manifest`);
    /// `None` disables persistence.
    manifest: Mutex<Option<std::path::PathBuf>>,
}

#[derive(Debug, Default)]
struct Inner {
    by_id: HashMap<GraphId, Arc<GraphEntry>>,
    next_id: GraphId,
}

impl Catalog {
    /// The catalog lock. A poisoned lock means a peer request panicked
    /// mid-mutation; serving from a half-updated catalog is worse than
    /// propagating the panic, so this is the one deliberate panic here.
    fn locked(&self) -> std::sync::MutexGuard<'_, Inner> {
        // lint: allow-panic poisoned catalog lock: a peer request died mid-mutation
        self.inner.lock().unwrap()
    }

    /// The manifest-path lock (same poisoning rationale as [`Catalog::locked`]).
    fn manifest_locked(&self) -> std::sync::MutexGuard<'_, Option<std::path::PathBuf>> {
        // lint: allow-panic poisoned manifest lock: a peer request died mid-mutation
        self.manifest.lock().unwrap()
    }

    /// Builds a catalog holding `graphs` under ids `0..n` in order.
    pub fn new(graphs: Vec<(String, CsrGraph, LoadMode)>) -> Catalog {
        Catalog::with_options(graphs, MapOptions::default())
    }

    /// [`Catalog::new`] with explicit snapshot mapping options for later
    /// wire loads.
    pub fn with_options(graphs: Vec<(String, CsrGraph, LoadMode)>, options: MapOptions) -> Catalog {
        let catalog = Catalog {
            map_options: options,
            ..Catalog::default()
        };
        for (name, graph, mode) in graphs {
            let mut inner = catalog.locked();
            let id = inner.next_id;
            inner.next_id += 1;
            inner
                .by_id
                .insert(id, GraphEntry::new(id, name, graph, mode, None));
        }
        catalog
    }

    /// Resolves a graph id (the per-query lookup).
    pub fn get(&self, id: GraphId) -> Option<Arc<GraphEntry>> {
        self.locked().by_id.get(&id).cloned()
    }

    /// Resolves a graph by name (the operator-facing lookup).
    pub fn by_name(&self, name: &str) -> Option<Arc<GraphEntry>> {
        let inner = self.locked();
        inner.by_id.values().find(|e| e.name == name).cloned()
    }

    /// Inserts an already-built graph under a fresh id.
    ///
    /// # Errors
    ///
    /// Refuses duplicate names — names are the operator-facing handle and
    /// must stay unambiguous.
    pub fn insert(
        &self,
        name: &str,
        graph: CsrGraph,
        mode: LoadMode,
    ) -> Result<Arc<GraphEntry>, CatalogError> {
        self.insert_with_path(name, graph, mode, None)
    }

    /// [`Catalog::insert`] recording the snapshot path backing the entry
    /// (which makes it eligible for manifest persistence).
    pub fn insert_with_path(
        &self,
        name: &str,
        graph: CsrGraph,
        mode: LoadMode,
        source_path: Option<String>,
    ) -> Result<Arc<GraphEntry>, CatalogError> {
        let entry = {
            let mut inner = self.locked();
            if inner.by_id.values().any(|e| e.name == name) {
                return Err(CatalogError::NameTaken(name.to_string()));
            }
            let id = inner.next_id;
            inner.next_id += 1;
            let entry = GraphEntry::new(id, name.to_string(), graph, mode, source_path);
            inner.by_id.insert(id, Arc::clone(&entry));
            entry
        };
        self.persist();
        Ok(entry)
    }

    /// Opens `path` as a [`SnapshotView`] (zero-copy for `PSNAPv2`, mapped
    /// with the catalog's [`MapOptions`]) and inserts it under `name`.
    ///
    /// # Errors
    ///
    /// Duplicate names and snapshot open/validation failures.
    pub fn load(&self, name: &str, path: &str) -> Result<Arc<GraphEntry>, CatalogError> {
        // Check the name before paying for the load; the insert re-checks
        // under the lock, so a racing duplicate still loses cleanly.
        if self.by_name(name).is_some() {
            return Err(CatalogError::NameTaken(name.to_string()));
        }
        let view = SnapshotView::open_with(path, self.map_options)
            .map_err(|e| CatalogError::Load(e.to_string()))?;
        let mode = view.mode();
        self.insert_with_path(name, view.into_graph(), mode, Some(path.to_string()))
    }

    /// Removes the graph named `name`. In-flight queries holding the entry
    /// finish; the arrays free when the last `Arc` drops.
    ///
    /// # Errors
    ///
    /// Unknown names.
    pub fn unload(&self, name: &str) -> Result<Arc<GraphEntry>, CatalogError> {
        let entry = {
            let mut inner = self.locked();
            let id = inner
                .by_id
                .values()
                .find(|e| e.name == name)
                .map(|e| e.id)
                .ok_or_else(|| CatalogError::UnknownName(name.to_string()))?;
            // lint: allow-panic the id was resolved from this same locked map two lines up
            inner.by_id.remove(&id).expect("id just resolved")
        };
        self.persist();
        Ok(entry)
    }

    /// Every resident entry, ordered by id (stable listing for operators).
    pub fn list(&self) -> Vec<Arc<GraphEntry>> {
        let inner = self.locked();
        let mut entries: Vec<_> = inner.by_id.values().cloned().collect();
        entries.sort_by_key(|e| e.id);
        entries
    }

    /// Number of resident graphs.
    pub fn len(&self) -> usize {
        self.locked().by_id.len()
    }

    /// True when no graph is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when `id` is resident — the dispatcher's engine-state GC uses
    /// this to drop per-graph engines for evicted graphs.
    pub fn contains(&self, id: GraphId) -> bool {
        self.locked().by_id.contains_key(&id)
    }

    /// Attaches a manifest file: every later catalog or plan change is
    /// persisted to `path`, and — if the file already exists — the graphs
    /// and tuned plans it records are restored now (skipping names already
    /// resident, e.g. the startup graph). Restore is deliberately lenient:
    /// a snapshot that moved or rotted is reported in the
    /// [`crate::manifest::RestoreReport`], not fatal — a serving process
    /// must boot with the residency it *can* restore.
    pub fn attach_manifest(
        &self,
        path: impl Into<std::path::PathBuf>,
    ) -> crate::manifest::RestoreReport {
        let path = path.into();
        let report = crate::manifest::restore(self, &path);
        *self.manifest_locked() = Some(path);
        // Write back immediately so the manifest reflects reality (startup
        // graphs with paths, entries whose snapshots vanished).
        self.persist();
        report
    }

    /// Rewrites the attached manifest (no-op without one). Failures are
    /// reported to stderr, never propagated: persistence must not take the
    /// serving path down.
    pub fn persist(&self) {
        let manifest = self.manifest_locked();
        let Some(path) = manifest.as_ref() else {
            return;
        };
        if let Err(e) = crate::manifest::write(self, path) {
            eprintln!(
                "priograph-serve: manifest write to {} failed: {e}",
                path.display()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priograph_graph::gen::GraphGen;
    use priograph_graph::GraphSnapshot;

    fn grid(side: usize, seed: u64) -> CsrGraph {
        GraphGen::road_grid(side, side).seed(seed).build()
    }

    #[test]
    fn ids_are_stable_and_never_reused() {
        let catalog = Catalog::new(vec![("default".to_string(), grid(4, 1), LoadMode::Owned)]);
        assert_eq!(catalog.get(0).unwrap().name, "default");
        let a = catalog.insert("a", grid(5, 2), LoadMode::Owned).unwrap();
        assert_eq!(a.id, 1);
        catalog.unload("a").unwrap();
        let b = catalog.insert("b", grid(5, 3), LoadMode::Owned).unwrap();
        assert_eq!(b.id, 2, "ids advance past unloaded entries");
        assert!(catalog.get(1).is_none());
        assert!(catalog.contains(2) && !catalog.contains(1));
        assert_eq!(catalog.len(), 2);
        assert!(!catalog.is_empty());
    }

    #[test]
    fn duplicate_names_are_refused() {
        let catalog = Catalog::new(vec![("g".to_string(), grid(4, 1), LoadMode::Owned)]);
        let err = catalog
            .insert("g", grid(4, 2), LoadMode::Owned)
            .unwrap_err();
        assert!(matches!(err, CatalogError::NameTaken(_)), "{err}");
        assert!(matches!(
            catalog.unload("nope").unwrap_err(),
            CatalogError::UnknownName(_)
        ));
    }

    #[test]
    fn load_from_snapshot_reports_mode_and_footprint() {
        let g = grid(6, 4);
        let path = std::env::temp_dir().join("priograph_catalog_load.snap");
        GraphSnapshot::write(&g, &path).unwrap();
        let catalog = Catalog::default();
        let entry = catalog.load("roads", path.to_str().unwrap()).unwrap();
        let _ = std::fs::remove_file(&path);
        let info = entry.info();
        assert_eq!(info.vertices, 36);
        assert_eq!(info.resident_bytes, g.resident_bytes());
        #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
        assert_eq!(info.mode, LoadMode::Mapped, "v2 snapshots load zero-copy");
        // Same name again: refused before any IO.
        assert!(matches!(
            catalog.load("roads", "/nonexistent.snap").unwrap_err(),
            CatalogError::NameTaken(_)
        ));
        // Bad path: surfaced as a load failure.
        assert!(matches!(
            catalog.load("other", "/nonexistent.snap").unwrap_err(),
            CatalogError::Load(_)
        ));
    }

    #[test]
    fn unloaded_entries_survive_while_referenced() {
        let catalog = Catalog::new(vec![("g".to_string(), grid(5, 1), LoadMode::Owned)]);
        let held = catalog.get(0).unwrap();
        catalog.unload("g").unwrap();
        assert!(catalog.is_empty());
        // The in-flight reference still traverses fine.
        assert!(held.graph.num_edges() > 0);
        assert_eq!(held.sym_graph().num_vertices(), 25);
    }

    #[test]
    fn sym_graph_is_shared_when_already_symmetric() {
        let catalog = Catalog::new(vec![("g".to_string(), grid(4, 1), LoadMode::Owned)]);
        let entry = catalog.get(0).unwrap();
        assert!(entry.graph.is_symmetric());
        assert!(Arc::ptr_eq(&entry.sym_graph(), &entry.graph));
        let rmat = GraphGen::rmat(5, 4).seed(9).weights_uniform(1, 10).build();
        assert!(!rmat.is_symmetric());
        let entry = catalog.insert("rmat", rmat, LoadMode::Owned).unwrap();
        assert!(!Arc::ptr_eq(&entry.sym_graph(), &entry.graph));
        assert!(entry.sym_graph().is_symmetric());
    }
}
