//! The `priograph-serve` wire protocol: length-prefixed binary frames over a
//! plain TCP stream.
//!
//! **The normative byte-level specification lives in
//! [`docs/PROTOCOL.md`](https://github.com/priograph/priograph/blob/main/docs/PROTOCOL.md)**
//! (frame layout, version negotiation, every message with examples, limits);
//! this module is its reference implementation and must match it.
//!
//! Every message is one frame: a `u32` little-endian payload length followed
//! by the payload. Payloads open with a protocol version byte and a message
//! tag; all integers are little-endian, vectors and strings carry a `u64`
//! length prefix. The format is hand-rolled for the same reason the bench
//! JSON is (no crates.io access, so no serde), and the decoder accepts
//! exactly the subset the encoder produces.
//!
//! Protocol **version 5** (this one) adds the self-describing telemetry
//! surface: [`Request::StatsV2`] answers with [`Response::StatsV2`], a
//! frame of *named* counters plus per-series latency digests
//! ([`SeriesSummary`]: count, p50/p90/p99/p999/max in microseconds) — the
//! extensible replacement for the fixed 13-counter [`ServerStats`] blob,
//! which is kept byte-exact for old clients. Version 4 gave every query an
//! explicit failure budget: [`Query`] carries an optional `deadline_ms`
//! (0 = none) measured from admission, the §5 error table grows typed
//! [`ErrorKind::Timeout`] and [`ErrorKind::Overloaded`] rows, and
//! `Shutdown` means *graceful drain* (stop accepting, finish or time out
//! in-flight work, flush the manifest). Version 3 made schedule selection
//! a server-side decision:
//! [`Request::TuneGraph`] runs the autotuner against a resident graph and
//! installs the winning [`WirePlan`], [`GraphInfo`] reports each graph's
//! installed plans, and [`Response::Busy`] carries a `retry_after_ms` hint
//! plus the [`BusyScope`] (per-graph quota vs. global budget) that refused
//! the request. Version 2 introduced multi-tenancy: graph ids on queries,
//! the catalog messages (`LoadGraph` / `UnloadGraph` / `ListGraphs`), typed
//! errors ([`ErrorKind`]). Lower-version peers receive an in-band error
//! *shaped in their own version* (see [`legacy_error_payload`]) telling
//! them to upgrade, then the connection closes.
//!
//! Frames are capped at [`MAX_FRAME_LEN`]; a peer announcing a larger frame
//! is rejected before any allocation, so a corrupt or hostile length prefix
//! cannot OOM the server.

use priograph_core::plan::{AlgoFamily, PlanOrigin, QueryPlan};
use priograph_core::schedule::{PriorityUpdateStrategy, Schedule};
use priograph_graph::LoadMode;
use std::fmt;
use std::io::{Read, Write};

/// Protocol version carried in every frame. Bump on any wire change.
pub const PROTOCOL_VERSION: u8 = 5;

/// Hard cap on a frame payload (64 MiB) — larger than any distance vector
/// the bundled workloads produce, small enough to bound a malicious peer.
pub const MAX_FRAME_LEN: usize = 1 << 26;

/// Longest accepted graph name (bytes). Names are operator-chosen labels;
/// the cap keeps listings and logs sane.
pub const MAX_NAME_LEN: usize = 255;

/// Longest accepted snapshot path in a `LoadGraph` request (bytes).
pub const MAX_PATH_LEN: usize = 4096;

/// Why a frame could not be read, written, or decoded.
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket failure.
    Io(std::io::Error),
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Version byte received.
        got: u8,
    },
    /// The frame length prefix exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// Declared payload length.
        declared: usize,
    },
    /// The payload does not decode as any known message.
    Malformed(String),
    /// The server answered with an in-band typed error.
    Remote {
        /// Error category the server reported.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
    /// The server refused the request over an admission budget; retry after
    /// `retry_after_ms` (see `docs/PROTOCOL.md` §Backpressure).
    Busy {
        /// Which admission budget refused the request.
        scope: BusyScope,
        /// Queries currently pending against that budget.
        pending: u64,
        /// The refusing budget's capacity.
        budget: u64,
        /// The server's drain estimate: retrying sooner is likely wasted.
        retry_after_ms: u64,
    },
    /// Client-side refusal: the circuit breaker is open after consecutive
    /// failures, so the request was not sent at all (see
    /// [`crate::client::CircuitBreaker`]).
    CircuitOpen {
        /// Milliseconds until the breaker will allow a half-open probe.
        retry_after_ms: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io error: {e}"),
            WireError::VersionMismatch { got } => {
                write!(
                    f,
                    "protocol version mismatch: got {got}, want {PROTOCOL_VERSION}"
                )
            }
            WireError::FrameTooLarge { declared } => {
                write!(f, "frame of {declared} bytes exceeds cap {MAX_FRAME_LEN}")
            }
            WireError::Malformed(why) => write!(f, "malformed frame: {why}"),
            WireError::Remote { kind, message } => write!(f, "server error ({kind}): {message}"),
            WireError::Busy {
                scope,
                pending,
                budget,
                retry_after_ms,
            } => {
                write!(
                    f,
                    "server busy ({scope}): {pending} pending of a {budget} budget, \
                     retry after {retry_after_ms}ms"
                )
            }
            WireError::CircuitOpen { retry_after_ms } => {
                write!(
                    f,
                    "circuit breaker open: request not sent, next probe in {retry_after_ms}ms"
                )
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

fn malformed(why: impl Into<String>) -> WireError {
    WireError::Malformed(why.into())
}

/// Category of an in-band [`Response::Error`]. Stable on the wire — new
/// kinds append, existing discriminants never change.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// Unclassified server-side failure.
    Internal,
    /// The request decoded but is semantically invalid.
    BadRequest,
    /// A query endpoint is out of range for its graph.
    BadVertex,
    /// The graph id (or name) names no resident graph.
    UnknownGraph,
    /// The client spoke an unsupported protocol version.
    UnsupportedVersion,
    /// The requested schedule was rejected by validation.
    ScheduleRejected,
    /// The response would exceed the frame cap; split the request.
    TooLarge,
    /// The server is shutting down.
    ShuttingDown,
    /// A `LoadGraph` snapshot failed to open or validate.
    LoadFailed,
    /// The query's `deadline_ms` budget expired before execution.
    Timeout,
    /// The server shed the connection or request to protect itself
    /// (connection cap, not an admission-budget `Busy`).
    Overloaded,
}

impl ErrorKind {
    /// Every kind, in wire-discriminant order — lets audits and the
    /// `StatsV2` error breakdown walk the full table without a hand-kept
    /// copy.
    pub const ALL: [ErrorKind; 11] = [
        ErrorKind::Internal,
        ErrorKind::BadRequest,
        ErrorKind::BadVertex,
        ErrorKind::UnknownGraph,
        ErrorKind::UnsupportedVersion,
        ErrorKind::ScheduleRejected,
        ErrorKind::TooLarge,
        ErrorKind::ShuttingDown,
        ErrorKind::LoadFailed,
        ErrorKind::Timeout,
        ErrorKind::Overloaded,
    ];

    pub(crate) fn to_u8(self) -> u8 {
        match self {
            ErrorKind::Internal => 0,
            ErrorKind::BadRequest => 1,
            ErrorKind::BadVertex => 2,
            ErrorKind::UnknownGraph => 3,
            ErrorKind::UnsupportedVersion => 4,
            ErrorKind::ScheduleRejected => 5,
            ErrorKind::TooLarge => 6,
            ErrorKind::ShuttingDown => 7,
            ErrorKind::LoadFailed => 8,
            ErrorKind::Timeout => 9,
            ErrorKind::Overloaded => 10,
        }
    }

    fn from_u8(b: u8) -> Result<Self, WireError> {
        Ok(match b {
            0 => ErrorKind::Internal,
            1 => ErrorKind::BadRequest,
            2 => ErrorKind::BadVertex,
            3 => ErrorKind::UnknownGraph,
            4 => ErrorKind::UnsupportedVersion,
            5 => ErrorKind::ScheduleRejected,
            6 => ErrorKind::TooLarge,
            7 => ErrorKind::ShuttingDown,
            8 => ErrorKind::LoadFailed,
            9 => ErrorKind::Timeout,
            10 => ErrorKind::Overloaded,
            other => return Err(malformed(format!("unknown error kind {other}"))),
        })
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ErrorKind::Internal => "internal",
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::BadVertex => "bad-vertex",
            ErrorKind::UnknownGraph => "unknown-graph",
            ErrorKind::UnsupportedVersion => "unsupported-version",
            ErrorKind::ScheduleRejected => "schedule-rejected",
            ErrorKind::TooLarge => "too-large",
            ErrorKind::ShuttingDown => "shutting-down",
            ErrorKind::LoadFailed => "load-failed",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Overloaded => "overloaded",
        })
    }
}

/// The ordered algorithm a [`Query`] runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum QueryOp {
    /// Point-to-point shortest path (early-terminating; served by the
    /// per-worker serial engine so whole batches run concurrently).
    Ppsp,
    /// Full single-source shortest paths (parallel Δ-stepping engine).
    Sssp,
    /// Weighted BFS — Δ-stepping with Δ forced to 1.
    Wbfs,
    /// k-core decomposition over the symmetrized resident graph.
    KCore,
}

impl QueryOp {
    fn to_u8(self) -> u8 {
        match self {
            QueryOp::Ppsp => 0,
            QueryOp::Sssp => 1,
            QueryOp::Wbfs => 2,
            QueryOp::KCore => 3,
        }
    }

    fn from_u8(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(QueryOp::Ppsp),
            1 => Ok(QueryOp::Sssp),
            2 => Ok(QueryOp::Wbfs),
            3 => Ok(QueryOp::KCore),
            other => Err(malformed(format!("unknown query op {other}"))),
        }
    }

    /// The plannable algorithm family behind this op, or `None` for PPSP —
    /// point queries run on the strict-priority serial engine, which has no
    /// schedule knobs to plan (it is the Δ → 0 limit of every plan).
    pub fn family(self) -> Option<AlgoFamily> {
        match self {
            QueryOp::Ppsp => None,
            QueryOp::Sssp => Some(AlgoFamily::Sssp),
            QueryOp::Wbfs => Some(AlgoFamily::Wbfs),
            QueryOp::KCore => Some(AlgoFamily::KCore),
        }
    }

    /// The op whose plan-cache slot serves `family` queries.
    pub fn from_family(family: AlgoFamily) -> QueryOp {
        match family {
            AlgoFamily::Sssp => QueryOp::Sssp,
            AlgoFamily::Wbfs => QueryOp::Wbfs,
            AlgoFamily::KCore => QueryOp::KCore,
        }
    }

    /// The lowercase command/wire spelling (`ppsp`, or the family's
    /// spelling — one table, owned by [`AlgoFamily`]).
    pub fn as_str(self) -> &'static str {
        match self.family() {
            None => "ppsp",
            Some(family) => family.as_str(),
        }
    }

    /// Parses [`QueryOp::as_str`] spellings (plus [`AlgoFamily::parse`]'s
    /// aliases, e.g. `k-core`).
    ///
    /// # Errors
    ///
    /// Returns the unrecognized spelling.
    pub fn parse(text: &str) -> Result<Self, String> {
        if text == "ppsp" {
            return Ok(QueryOp::Ppsp);
        }
        AlgoFamily::parse(text).map(QueryOp::from_family)
    }
}

impl fmt::Display for QueryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Bucket strategy requested for a query, mirroring
/// [`priograph_core::schedule::PriorityUpdateStrategy`] plus a "server
/// default" sentinel so clients need not know the resident graph's family.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum WireStrategy {
    /// Use whatever schedule the server was started with.
    #[default]
    ServerDefault,
    /// `lazy` bucket updates.
    Lazy,
    /// `eager_no_fusion`.
    Eager,
    /// `eager_with_fusion`.
    EagerFusion,
    /// `lazy_constant_sum` (k-core's preferred schedule).
    LazyConstantSum,
}

impl WireStrategy {
    fn to_u8(self) -> u8 {
        match self {
            WireStrategy::ServerDefault => 0,
            WireStrategy::Lazy => 1,
            WireStrategy::Eager => 2,
            WireStrategy::EagerFusion => 3,
            WireStrategy::LazyConstantSum => 4,
        }
    }

    fn from_u8(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(WireStrategy::ServerDefault),
            1 => Ok(WireStrategy::Lazy),
            2 => Ok(WireStrategy::Eager),
            3 => Ok(WireStrategy::EagerFusion),
            4 => Ok(WireStrategy::LazyConstantSum),
            other => Err(malformed(format!("unknown strategy {other}"))),
        }
    }

    /// Parses the scheduling-language spelling (`lazy`, `eager`,
    /// `eager-fusion`/`eager_with_fusion`, `lazy-constant-sum`, `default`).
    ///
    /// # Errors
    ///
    /// Returns the unrecognized spelling.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "default" => Ok(WireStrategy::ServerDefault),
            "lazy" => Ok(WireStrategy::Lazy),
            "eager" | "eager_no_fusion" => Ok(WireStrategy::Eager),
            "eager-fusion" | "eager_with_fusion" => Ok(WireStrategy::EagerFusion),
            "lazy-constant-sum" | "lazy_constant_sum" => Ok(WireStrategy::LazyConstantSum),
            other => Err(format!("unknown schedule {other:?}")),
        }
    }

    /// The wire spelling of a concrete engine strategy (never
    /// `ServerDefault`) — how installed plans project onto the wire.
    pub fn of_strategy(strategy: PriorityUpdateStrategy) -> WireStrategy {
        match strategy {
            PriorityUpdateStrategy::Lazy => WireStrategy::Lazy,
            PriorityUpdateStrategy::EagerNoFusion => WireStrategy::Eager,
            PriorityUpdateStrategy::EagerWithFusion => WireStrategy::EagerFusion,
            PriorityUpdateStrategy::LazyConstantSum => WireStrategy::LazyConstantSum,
        }
    }

    /// Short listing spelling (`default`, `lazy`, `eager`, `eager+f`,
    /// `lazy-cs`) for the client's graph table.
    pub fn short_str(self) -> &'static str {
        match self {
            WireStrategy::ServerDefault => "default",
            WireStrategy::Lazy => "lazy",
            WireStrategy::Eager => "eager",
            WireStrategy::EagerFusion => "eager+f",
            WireStrategy::LazyConstantSum => "lazy-cs",
        }
    }
}

/// Schedule selection carried by a query: a strategy plus Δ (`0` = keep the
/// server default's Δ).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct WireSchedule {
    /// Requested bucket strategy.
    pub strategy: WireStrategy,
    /// Requested coarsening factor; `0` defers to the server default.
    pub delta: i64,
}

impl WireSchedule {
    /// Resolves the wire selection against the server's default schedule.
    pub fn resolve(&self, default: &Schedule) -> Schedule {
        let mut schedule = match self.strategy {
            WireStrategy::ServerDefault => default.clone(),
            WireStrategy::Lazy => Schedule::lazy(default.delta),
            WireStrategy::Eager => Schedule::eager(default.delta),
            WireStrategy::EagerFusion => Schedule::eager_with_fusion(default.delta),
            WireStrategy::LazyConstantSum => Schedule::lazy_constant_sum(),
        };
        if self.delta > 0 && self.strategy != WireStrategy::LazyConstantSum {
            schedule.delta = self.delta;
        }
        schedule
    }
}

/// The id of a resident graph in the serving catalog. Id `0` is the graph
/// the server was started with (named `default` unless renamed); ids are
/// assigned at `LoadGraph` time and never reused within a server's life.
pub type GraphId = u32;

/// Which admission budget refused a request with [`Response::Busy`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BusyScope {
    /// The server-wide pending budget (every graph is saturated).
    Global,
    /// One graph's admission quota; other graphs are still admitting — a
    /// client holding work for several graphs should keep submitting the
    /// rest (per-graph fairness, `docs/ARCHITECTURE.md` §Admission).
    Graph(GraphId),
}

impl BusyScope {
    fn encode(self, out: &mut Vec<u8>) {
        match self {
            BusyScope::Global => {
                out.push(0);
                out.extend_from_slice(&0u32.to_le_bytes());
            }
            BusyScope::Graph(id) => {
                out.push(1);
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
    }

    fn decode(r: &mut Cursor<'_>) -> Result<Self, WireError> {
        let tag = r.u8()?;
        let id = r.u32()?;
        match tag {
            0 => Ok(BusyScope::Global),
            1 => Ok(BusyScope::Graph(id)),
            other => Err(malformed(format!("unknown busy scope {other}"))),
        }
    }
}

impl fmt::Display for BusyScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusyScope::Global => f.write_str("global budget"),
            BusyScope::Graph(id) => write!(f, "graph {id} quota"),
        }
    }
}

/// Provenance of a [`WirePlan`], mirroring
/// [`priograph_core::plan::PlanOrigin`] on the wire.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WirePlanOrigin {
    /// Seeded from graph-shape heuristics at load time.
    Heuristic,
    /// Installed by a `TuneGraph` run; carries the trial count spent.
    Tuned {
        /// Trials the winning search spent.
        trials: u32,
    },
}

impl WirePlanOrigin {
    /// Short listing spelling (`heur` / `tuned/N`).
    pub fn short_string(self) -> String {
        match self {
            WirePlanOrigin::Heuristic => "heur".to_string(),
            WirePlanOrigin::Tuned { trials } => format!("tuned/{trials}"),
        }
    }
}

/// One installed per-graph plan as reported by [`GraphInfo`] and
/// [`Response::Tuned`]: the wire projection of a
/// [`priograph_core::plan::QueryPlan`] (strategy and Δ; the representation
/// knobs — fusion threshold, bucket count, grain — stay server-side, same
/// as they are inexpressible in a [`WireSchedule`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WirePlan {
    /// The algorithm family the plan serves, as its query op.
    pub algo: QueryOp,
    /// Engine strategy queries under this plan run with.
    pub strategy: WireStrategy,
    /// Coarsening factor Δ.
    pub delta: i64,
    /// Where the plan came from.
    pub origin: WirePlanOrigin,
}

/// Encoded size of one [`WirePlan`]: algo + strategy + delta + origin tag +
/// trials.
const WIRE_PLAN_LEN: usize = 1 + 1 + 8 + 1 + 4;

impl WirePlan {
    /// Projects an installed core plan onto the wire.
    pub fn of_plan(plan: &QueryPlan) -> WirePlan {
        WirePlan {
            algo: QueryOp::from_family(plan.family),
            strategy: WireStrategy::of_strategy(plan.schedule.priority_update),
            delta: plan.schedule.delta,
            origin: match plan.origin {
                PlanOrigin::Tuned { trials } => WirePlanOrigin::Tuned { trials },
                // Pinned plans never reach a cache/listing; anything else
                // reads as the seeded default.
                PlanOrigin::Heuristic | PlanOrigin::Pinned => WirePlanOrigin::Heuristic,
            },
        }
    }

    /// Compact listing form, e.g. `sssp:lazy@4096(tuned/24)`.
    pub fn summary(&self) -> String {
        format!(
            "{}:{}@{}({})",
            self.algo.as_str(),
            self.strategy.short_str(),
            self.delta,
            self.origin.short_string()
        )
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.algo.to_u8());
        out.push(self.strategy.to_u8());
        out.extend_from_slice(&self.delta.to_le_bytes());
        let (tag, trials) = match self.origin {
            WirePlanOrigin::Heuristic => (0u8, 0u32),
            WirePlanOrigin::Tuned { trials } => (1u8, trials),
        };
        out.push(tag);
        out.extend_from_slice(&trials.to_le_bytes());
    }

    fn decode(r: &mut Cursor<'_>) -> Result<Self, WireError> {
        let algo = QueryOp::from_u8(r.u8()?)?;
        let strategy = WireStrategy::from_u8(r.u8()?)?;
        let delta = r.i64()?;
        let tag = r.u8()?;
        let trials = r.u32()?;
        let origin = match tag {
            0 => WirePlanOrigin::Heuristic,
            1 => WirePlanOrigin::Tuned { trials },
            other => return Err(malformed(format!("unknown plan origin {other}"))),
        };
        Ok(WirePlan {
            algo,
            strategy,
            delta,
            origin,
        })
    }
}

/// Result of a [`Request::TuneGraph`] run, carried by [`Response::Tuned`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TuneOutcome {
    /// The graph the plan was installed on.
    pub graph: GraphId,
    /// The installed winning plan.
    pub plan: WirePlan,
    /// Trials the search executed (= the budget unless the time cap hit).
    pub trials_run: u32,
    /// Measured cost of the winning schedule, in microseconds.
    pub best_cost_micros: u64,
}

impl TuneOutcome {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.graph.to_le_bytes());
        self.plan.encode(out);
        out.extend_from_slice(&self.trials_run.to_le_bytes());
        out.extend_from_slice(&self.best_cost_micros.to_le_bytes());
    }

    fn decode(r: &mut Cursor<'_>) -> Result<Self, WireError> {
        Ok(TuneOutcome {
            graph: r.u32()?,
            plan: WirePlan::decode(r)?,
            trials_run: r.u32()?,
            best_cost_micros: r.u64()?,
        })
    }
}

/// Encoded size of one [`Query`]: op + graph + source + target + strategy +
/// delta + deadline.
const QUERY_WIRE_LEN: usize = 1 + 4 + 4 + 4 + 1 + 8 + 4;

/// One typed query against a resident graph.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Query {
    /// Which algorithm to run.
    pub op: QueryOp,
    /// Which resident graph to run it on (`0` = the startup graph).
    pub graph: GraphId,
    /// Source vertex (ignored by k-core).
    pub source: u32,
    /// Target vertex (PPSP only; ignored elsewhere).
    pub target: u32,
    /// Schedule selection.
    pub schedule: WireSchedule,
    /// Deadline budget in milliseconds, measured from admission; `0` means
    /// no deadline. An expired query is dropped before execution and
    /// answered with [`ErrorKind::Timeout`].
    pub deadline_ms: u32,
}

impl Query {
    /// A PPSP query with the server-default schedule, on graph 0.
    pub fn ppsp(source: u32, target: u32) -> Self {
        Query {
            op: QueryOp::Ppsp,
            graph: 0,
            source,
            target,
            schedule: WireSchedule::default(),
            deadline_ms: 0,
        }
    }

    /// A full SSSP query with the server-default schedule, on graph 0.
    pub fn sssp(source: u32) -> Self {
        Query {
            op: QueryOp::Sssp,
            graph: 0,
            source,
            target: 0,
            schedule: WireSchedule::default(),
            deadline_ms: 0,
        }
    }

    /// A wBFS query with the server-default schedule, on graph 0.
    pub fn wbfs(source: u32) -> Self {
        Query {
            op: QueryOp::Wbfs,
            graph: 0,
            source,
            target: 0,
            schedule: WireSchedule::default(),
            deadline_ms: 0,
        }
    }

    /// A k-core query on graph 0, unpinned: it runs under the graph's
    /// installed plan (the heuristic seed is `lazy_constant_sum`, the
    /// paper's preferred k-core schedule; a tuned plan replaces it).
    pub fn kcore() -> Self {
        Query {
            op: QueryOp::KCore,
            graph: 0,
            source: 0,
            target: 0,
            schedule: WireSchedule::default(),
            deadline_ms: 0,
        }
    }

    /// Retargets the query at another resident graph.
    pub fn on_graph(mut self, graph: GraphId) -> Self {
        self.graph = graph;
        self
    }

    /// Gives the query a deadline budget (milliseconds from admission;
    /// `0` removes any deadline).
    pub fn with_deadline(mut self, deadline_ms: u32) -> Self {
        self.deadline_ms = deadline_ms;
        self
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.op.to_u8());
        out.extend_from_slice(&self.graph.to_le_bytes());
        out.extend_from_slice(&self.source.to_le_bytes());
        out.extend_from_slice(&self.target.to_le_bytes());
        out.push(self.schedule.strategy.to_u8());
        out.extend_from_slice(&self.schedule.delta.to_le_bytes());
        out.extend_from_slice(&self.deadline_ms.to_le_bytes());
    }

    fn decode(r: &mut Cursor<'_>) -> Result<Self, WireError> {
        Ok(Query {
            op: QueryOp::from_u8(r.u8()?)?,
            graph: r.u32()?,
            source: r.u32()?,
            target: r.u32()?,
            schedule: WireSchedule {
                strategy: WireStrategy::from_u8(r.u8()?)?,
                delta: r.i64()?,
            },
            deadline_ms: r.u32()?,
        })
    }
}

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// One query.
    Query(Query),
    /// Several queries answered as one ordered [`Response::Batch`].
    Batch(Vec<Query>),
    /// Ask for [`Response::Stats`].
    Stats,
    /// Ask the server to stop accepting connections and exit.
    Shutdown,
    /// Load a snapshot file (server-side path) as a named resident graph;
    /// answered with [`Response::Loaded`].
    LoadGraph {
        /// Catalog name for the new graph (at most [`MAX_NAME_LEN`] bytes).
        name: String,
        /// Snapshot path on the server's filesystem (at most
        /// [`MAX_PATH_LEN`] bytes); `PSNAPv2` files load zero-copy.
        path: String,
    },
    /// Evict a resident graph by name; answered with
    /// [`Response::Unloaded`]. In-flight queries against it finish.
    UnloadGraph {
        /// Name the graph was loaded under.
        name: String,
    },
    /// List every resident graph; answered with [`Response::GraphList`].
    ListGraphs,
    /// Run the autotuner for one algorithm family against a resident graph
    /// on the server's own pool, install the winning plan in the graph's
    /// plan cache, and answer with [`Response::Tuned`]. All subsequent
    /// queries for that (graph, family) execute under the installed plan
    /// unless the client pins an explicit schedule.
    TuneGraph {
        /// The resident graph to tune against.
        graph: GraphId,
        /// The algorithm family to tune (`Ppsp` is rejected: point queries
        /// run on the strict-priority serial engine, which has no plan).
        algo: QueryOp,
        /// Trial budget for the search (the paper's §6.2: 30–40 usually
        /// suffice; CI smoke runs use single digits).
        budget: u32,
    },
    /// Ask for [`Response::StatsV2`], the self-describing telemetry frame
    /// (protocol v5).
    StatsV2,
}

impl Request {
    /// Serializes the request payload (version byte included, frame prefix
    /// excluded).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![PROTOCOL_VERSION];
        match self {
            Request::Query(q) => {
                out.push(0);
                q.encode(&mut out);
            }
            Request::Batch(qs) => {
                out.push(1);
                out.extend_from_slice(&(qs.len() as u64).to_le_bytes());
                for q in qs {
                    q.encode(&mut out);
                }
            }
            Request::Stats => out.push(2),
            Request::Shutdown => out.push(3),
            Request::LoadGraph { name, path } => {
                out.push(4);
                encode_str(name, &mut out);
                encode_str(path, &mut out);
            }
            Request::UnloadGraph { name } => {
                out.push(5);
                encode_str(name, &mut out);
            }
            Request::ListGraphs => out.push(6),
            Request::TuneGraph {
                graph,
                algo,
                budget,
            } => {
                out.push(7);
                out.extend_from_slice(&graph.to_le_bytes());
                out.push(algo.to_u8());
                out.extend_from_slice(&budget.to_le_bytes());
            }
            Request::StatsV2 => out.push(8),
        }
        out
    }

    /// Decodes a request payload.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for version mismatches and malformed bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Cursor::open(bytes)?;
        let req = match r.u8()? {
            0 => Request::Query(Query::decode(&mut r)?),
            1 => {
                let count = r.len_prefix(QUERY_WIRE_LEN)?;
                let mut qs = Vec::with_capacity(count);
                for _ in 0..count {
                    qs.push(Query::decode(&mut r)?);
                }
                Request::Batch(qs)
            }
            2 => Request::Stats,
            3 => Request::Shutdown,
            4 => Request::LoadGraph {
                name: r.string(MAX_NAME_LEN, "graph name")?,
                path: r.string(MAX_PATH_LEN, "snapshot path")?,
            },
            5 => Request::UnloadGraph {
                name: r.string(MAX_NAME_LEN, "graph name")?,
            },
            6 => Request::ListGraphs,
            7 => Request::TuneGraph {
                graph: r.u32()?,
                algo: QueryOp::from_u8(r.u8()?)?,
                budget: r.u32()?,
            },
            8 => Request::StatsV2,
            other => return Err(malformed(format!("unknown request tag {other}"))),
        };
        r.finish()?;
        Ok(req)
    }
}

/// Server-side counters reported by [`Response::Stats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Vertices in graph 0 (the startup graph), 0 if it was unloaded.
    pub num_vertices: u64,
    /// Directed edges in graph 0, 0 if it was unloaded.
    pub num_edges: u64,
    /// Worker threads in the serving pool.
    pub threads: u64,
    /// Queries answered (successes and errors).
    pub queries: u64,
    /// Dispatcher rounds (each groups one or more concurrent queries).
    pub batch_rounds: u64,
    /// Point queries served by the per-worker serial engines.
    pub point_queries: u64,
    /// Full-vector queries served by the parallel engines.
    pub full_queries: u64,
    /// Queries that produced an in-band error.
    pub errors: u64,
    /// Graphs currently resident in the catalog.
    pub graphs: u64,
    /// Requests refused with [`Response::Busy`] over an admission budget
    /// (global or per-graph).
    pub busy_rejections: u64,
    /// `TuneGraph` runs completed (each installed a plan).
    pub tune_runs: u64,
    /// Queries dropped before execution because their `deadline_ms`
    /// budget expired ([`ErrorKind::Timeout`]).
    pub timeouts: u64,
    /// Connections refused at accept over the connection cap
    /// ([`ErrorKind::Overloaded`]).
    pub rejected_connections: u64,
}

impl ServerStats {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in [
            self.num_vertices,
            self.num_edges,
            self.threads,
            self.queries,
            self.batch_rounds,
            self.point_queries,
            self.full_queries,
            self.errors,
            self.graphs,
            self.busy_rejections,
            self.tune_runs,
            self.timeouts,
            self.rejected_connections,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn decode(r: &mut Cursor<'_>) -> Result<Self, WireError> {
        Ok(ServerStats {
            num_vertices: r.u64()?,
            num_edges: r.u64()?,
            threads: r.u64()?,
            queries: r.u64()?,
            batch_rounds: r.u64()?,
            point_queries: r.u64()?,
            full_queries: r.u64()?,
            errors: r.u64()?,
            graphs: r.u64()?,
            busy_rejections: r.u64()?,
            tune_runs: r.u64()?,
            timeouts: r.u64()?,
            rejected_connections: r.u64()?,
        })
    }
}

/// One resident graph as reported by [`Response::GraphList`] /
/// [`Response::Loaded`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphInfo {
    /// Catalog id queries address the graph by.
    pub id: GraphId,
    /// Operator-chosen name.
    pub name: String,
    /// Vertices.
    pub vertices: u64,
    /// Directed edges.
    pub edges: u64,
    /// Bytes of CSR data resident for this graph (heap or page cache).
    pub resident_bytes: u64,
    /// How the arrays are resident: owned heap or a zero-copy mapping.
    pub mode: LoadMode,
    /// Queries answered against this graph so far.
    pub queries: u64,
    /// Installed plans, one per plannable family (op order) — the schedule
    /// unpinned queries for this graph execute under.
    pub plans: Vec<WirePlan>,
}

/// Minimum encoded size of a [`GraphInfo`]: id + empty name + four u64
/// counters + the mode byte + an empty plan vector.
const GRAPH_INFO_MIN_WIRE_LEN: usize = 4 + 8 + 8 + 8 + 8 + 1 + 8 + 8;

impl GraphInfo {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.id.to_le_bytes());
        encode_str(&self.name, out);
        out.extend_from_slice(&self.vertices.to_le_bytes());
        out.extend_from_slice(&self.edges.to_le_bytes());
        out.extend_from_slice(&self.resident_bytes.to_le_bytes());
        out.push(match self.mode {
            LoadMode::Owned => 0,
            LoadMode::Mapped => 1,
        });
        out.extend_from_slice(&self.queries.to_le_bytes());
        out.extend_from_slice(&(self.plans.len() as u64).to_le_bytes());
        for plan in &self.plans {
            plan.encode(out);
        }
    }

    fn decode(r: &mut Cursor<'_>) -> Result<Self, WireError> {
        Ok(GraphInfo {
            id: r.u32()?,
            name: r.string(MAX_NAME_LEN, "graph name")?,
            vertices: r.u64()?,
            edges: r.u64()?,
            resident_bytes: r.u64()?,
            mode: match r.u8()? {
                0 => LoadMode::Owned,
                1 => LoadMode::Mapped,
                other => return Err(malformed(format!("unknown load mode {other}"))),
            },
            queries: r.u64()?,
            plans: {
                let count = r.len_prefix(WIRE_PLAN_LEN)?;
                let mut plans = Vec::with_capacity(count);
                for _ in 0..count {
                    plans.push(WirePlan::decode(r)?);
                }
                plans
            },
        })
    }

    /// The installed plan serving `algo` queries, if the family is
    /// plannable and reported.
    pub fn plan_for(&self, algo: QueryOp) -> Option<&WirePlan> {
        self.plans.iter().find(|p| p.algo == algo)
    }
}

/// One named latency series in a [`StatsV2`] frame: a five-point digest
/// (all values microseconds) of a server-side histogram.
///
/// Series names are dotted paths (see `docs/PROTOCOL.md` §4.3): the global
/// per-phase series are `phase.<queued|planned|executed|responded|total>`,
/// per-graph-per-op breakdowns are `graph.<id>.<op>.<phase>`, and engine
/// profile series use the `engine.` prefix.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SeriesSummary {
    /// Dotted series name (at most [`MAX_NAME_LEN`] bytes).
    pub name: String,
    /// Events recorded into the series.
    pub count: u64,
    /// Median, microseconds.
    pub p50_us: u64,
    /// 90th percentile, microseconds.
    pub p90_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// 99.9th percentile, microseconds.
    pub p999_us: u64,
    /// Exact maximum, microseconds.
    pub max_us: u64,
}

/// Minimum encoded size of a [`SeriesSummary`]: an empty name's length
/// prefix plus six u64 fields.
const SERIES_SUMMARY_MIN_WIRE_LEN: usize = 8 + 6 * 8;

impl SeriesSummary {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_str(&self.name, out);
        for v in [
            self.count,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.p999_us,
            self.max_us,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn decode(r: &mut Cursor<'_>) -> Result<Self, WireError> {
        Ok(SeriesSummary {
            name: r.string(MAX_NAME_LEN, "series name")?,
            count: r.u64()?,
            p50_us: r.u64()?,
            p90_us: r.u64()?,
            p99_us: r.u64()?,
            p999_us: r.u64()?,
            max_us: r.u64()?,
        })
    }
}

/// Minimum encoded size of a named counter in [`StatsV2`]: an empty
/// name's length prefix plus the u64 value.
const NAMED_COUNTER_MIN_WIRE_LEN: usize = 8 + 8;

/// The self-describing telemetry frame answered to [`Request::StatsV2`]
/// (protocol v5, see `docs/PROTOCOL.md` §4.3).
///
/// Unlike the positional [`ServerStats`] blob, every datum carries its
/// name on the wire: servers can add counters and series without a
/// protocol bump, and clients render what they receive. Both vectors are
/// sorted by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsV2 {
    /// Named monotonic counters (e.g. `queries`, `errors.timeout`,
    /// `engine.rounds`).
    pub counters: Vec<(String, u64)>,
    /// Named latency digests (phases, per-graph breakdowns, engine
    /// profile).
    pub series: Vec<SeriesSummary>,
}

impl StatsV2 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.counters.len() as u64).to_le_bytes());
        for (name, value) in &self.counters {
            encode_str(name, out);
            out.extend_from_slice(&value.to_le_bytes());
        }
        out.extend_from_slice(&(self.series.len() as u64).to_le_bytes());
        for series in &self.series {
            series.encode(out);
        }
    }

    fn decode(r: &mut Cursor<'_>) -> Result<Self, WireError> {
        let counter_count = r.len_prefix(NAMED_COUNTER_MIN_WIRE_LEN)?;
        let mut counters = Vec::with_capacity(counter_count);
        for _ in 0..counter_count {
            let name = r.string(MAX_NAME_LEN, "counter name")?;
            let value = r.u64()?;
            counters.push((name, value));
        }
        let series_count = r.len_prefix(SERIES_SUMMARY_MIN_WIRE_LEN)?;
        let mut series = Vec::with_capacity(series_count);
        for _ in 0..series_count {
            series.push(SeriesSummary::decode(r)?);
        }
        Ok(StatsV2 { counters, series })
    }

    /// The value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The digest of series `name`, if present.
    pub fn series(&self, name: &str) -> Option<&SeriesSummary> {
        self.series.iter().find(|s| s.name == name)
    }

    /// One-line JSON rendering (hand-rolled like the bench JSON — no
    /// serde offline), shared by `--metrics-log` and the client's
    /// `stats --json`. Names are emitted verbatim: series names are
    /// server-chosen dotted identifiers, counter names likewise, neither
    /// ever contains characters needing JSON escapes.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(64 * (self.counters.len() + self.series.len()) + 32);
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{value}");
        }
        out.push_str("},\"series\":{");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"p999_us\":{},\"max_us\":{}}}",
                s.name, s.count, s.p50_us, s.p90_us, s.p99_us, s.p999_us, s.max_us
            );
        }
        out.push_str("}}");
        out
    }
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Answer to a PPSP query: the distance (if connected) and the
    /// relaxations the early-terminating engine performed.
    Distance {
        /// Shortest distance, `None` when the target is unreachable.
        distance: Option<i64>,
        /// Edge relaxations performed.
        relaxations: u64,
    },
    /// Full distance vector (SSSP / wBFS).
    DistVec(Vec<i64>),
    /// Coreness vector (k-core).
    Coreness(Vec<i64>),
    /// Server counters.
    Stats(ServerStats),
    /// Per-query answers of a [`Request::Batch`], in request order.
    Batch(Vec<Response>),
    /// The request failed, with a typed category and human-readable detail.
    Error {
        /// What category of failure this is.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
    /// Acknowledgement of [`Request::Shutdown`].
    Bye,
    /// Backpressure: the request was refused because it would exceed an
    /// admission budget (per-graph quota or the global pending budget —
    /// see [`BusyScope`]). Nothing was executed; retry after the hint.
    Busy {
        /// Which budget refused the request.
        scope: BusyScope,
        /// Queries pending against that budget when the request arrived.
        pending: u64,
        /// The refusing budget's capacity.
        budget: u64,
        /// The server's estimate of when capacity frees (milliseconds);
        /// clients honoring it avoid retry storms.
        retry_after_ms: u64,
    },
    /// Answer to [`Request::ListGraphs`].
    GraphList(Vec<GraphInfo>),
    /// Answer to [`Request::LoadGraph`]: the freshly loaded graph.
    Loaded(GraphInfo),
    /// Acknowledgement of [`Request::UnloadGraph`].
    Unloaded,
    /// Answer to [`Request::TuneGraph`]: the installed winning plan.
    Tuned(TuneOutcome),
    /// Answer to [`Request::StatsV2`]: named counters + latency digests.
    StatsV2(StatsV2),
}

impl Response {
    /// Builds a typed error response.
    pub fn error(kind: ErrorKind, message: impl Into<String>) -> Self {
        Response::Error {
            kind,
            message: message.into(),
        }
    }

    /// Serializes the response payload (version byte included).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![PROTOCOL_VERSION];
        self.encode_body(&mut out);
        out
    }

    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Response::Distance {
                distance,
                relaxations,
            } => {
                out.push(0);
                match distance {
                    Some(d) => {
                        out.push(1);
                        out.extend_from_slice(&d.to_le_bytes());
                    }
                    None => {
                        out.push(0);
                        out.extend_from_slice(&0i64.to_le_bytes());
                    }
                }
                out.extend_from_slice(&relaxations.to_le_bytes());
            }
            Response::DistVec(dist) => {
                out.push(1);
                encode_i64_vec(dist, out);
            }
            Response::Coreness(core) => {
                out.push(2);
                encode_i64_vec(core, out);
            }
            Response::Stats(stats) => {
                out.push(3);
                stats.encode(out);
            }
            Response::Batch(items) => {
                out.push(4);
                out.extend_from_slice(&(items.len() as u64).to_le_bytes());
                for item in items {
                    item.encode_body(out);
                }
            }
            Response::Error { kind, message } => {
                out.push(5);
                out.push(kind.to_u8());
                encode_str(message, out);
            }
            Response::Bye => out.push(6),
            Response::Busy {
                scope,
                pending,
                budget,
                retry_after_ms,
            } => {
                out.push(7);
                scope.encode(out);
                out.extend_from_slice(&pending.to_le_bytes());
                out.extend_from_slice(&budget.to_le_bytes());
                out.extend_from_slice(&retry_after_ms.to_le_bytes());
            }
            Response::GraphList(graphs) => {
                out.push(8);
                out.extend_from_slice(&(graphs.len() as u64).to_le_bytes());
                for g in graphs {
                    g.encode(out);
                }
            }
            Response::Loaded(info) => {
                out.push(9);
                info.encode(out);
            }
            Response::Unloaded => out.push(10),
            Response::Tuned(outcome) => {
                out.push(11);
                outcome.encode(out);
            }
            Response::StatsV2(stats) => {
                out.push(12);
                stats.encode(out);
            }
        }
    }

    /// Decodes a response payload.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for version mismatches and malformed bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Cursor::open(bytes)?;
        let resp = Self::decode_body(&mut r, 0)?;
        r.finish()?;
        Ok(resp)
    }

    fn decode_body(r: &mut Cursor<'_>, depth: u8) -> Result<Self, WireError> {
        match r.u8()? {
            0 => {
                let present = r.u8()?;
                let d = r.i64()?;
                let relaxations = r.u64()?;
                Ok(Response::Distance {
                    distance: (present != 0).then_some(d),
                    relaxations,
                })
            }
            1 => Ok(Response::DistVec(decode_i64_vec(r)?)),
            2 => Ok(Response::Coreness(decode_i64_vec(r)?)),
            3 => Ok(Response::Stats(ServerStats::decode(r)?)),
            4 => {
                if depth > 0 {
                    return Err(malformed("nested batch responses are not allowed"));
                }
                // Responses are 1 byte minimum on the wire but much larger
                // in memory, so growth is left to push (bounded by items
                // actually decoded) instead of a count-sized preallocation.
                let count = r.len_prefix(1)?;
                let mut items = Vec::new();
                for _ in 0..count {
                    items.push(Self::decode_body(r, depth + 1)?);
                }
                Ok(Response::Batch(items))
            }
            5 => Ok(Response::Error {
                kind: ErrorKind::from_u8(r.u8()?)?,
                message: r.string(MAX_FRAME_LEN, "error message")?,
            }),
            6 => Ok(Response::Bye),
            7 => Ok(Response::Busy {
                scope: BusyScope::decode(r)?,
                pending: r.u64()?,
                budget: r.u64()?,
                retry_after_ms: r.u64()?,
            }),
            8 => {
                let count = r.len_prefix(GRAPH_INFO_MIN_WIRE_LEN)?;
                let mut graphs = Vec::with_capacity(count);
                for _ in 0..count {
                    graphs.push(GraphInfo::decode(r)?);
                }
                Ok(Response::GraphList(graphs))
            }
            9 => Ok(Response::Loaded(GraphInfo::decode(r)?)),
            10 => Ok(Response::Unloaded),
            11 => Ok(Response::Tuned(TuneOutcome::decode(r)?)),
            12 => Ok(Response::StatsV2(StatsV2::decode(r)?)),
            other => Err(malformed(format!("unknown response tag {other}"))),
        }
    }
}

/// Payload (version byte included) of an `Error` response **shaped in an
/// older protocol version**, so the outdated peer can decode and render it.
///
/// A lower-version client rejects any current-version reply at its version
/// check before reading the message — so the server answers the session's
/// first mismatched frame with an error in *the client's* shape, then
/// closes the connection:
///
/// * version 1: `01 05 <len: u64> <utf-8>` (v1 had untyped errors);
/// * versions 2–4: `0V 05 <kind: u8> <len: u64> <utf-8>` with
///   `kind = unsupported-version` (v2 introduced [`ErrorKind`]; v3 and v4
///   kept the same Error body).
///
/// Returns `None` for versions this server never spoke (0, or ≥ current —
/// a *newer* peer gets a current-version in-band error instead).
pub fn legacy_error_payload(version: u8, message: &str) -> Option<Vec<u8>> {
    match version {
        1 => {
            let mut out = vec![1u8, 5u8]; // v1 version byte, v1 Error tag
            encode_str(message, &mut out);
            Some(out)
        }
        2..=4 => {
            // The Error body has been kind + message since v2, identical
            // to v5's — only the version byte differs.
            let mut out = vec![version, 5u8, ErrorKind::UnsupportedVersion.to_u8()];
            encode_str(message, &mut out);
            Some(out)
        }
        _ => None,
    }
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn encode_i64_vec(values: &[i64], out: &mut Vec<u8>) {
    out.extend_from_slice(&(values.len() as u64).to_le_bytes());
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn decode_i64_vec(r: &mut Cursor<'_>) -> Result<Vec<i64>, WireError> {
    let len = r.len_prefix(8)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(r.i64()?);
    }
    Ok(out)
}

/// Writes `payload` as one length-prefixed frame.
///
/// # Errors
///
/// Rejects payloads over [`MAX_FRAME_LEN`] and propagates IO failures.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge {
            declared: payload.len(),
        });
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame, returning `None` on a clean EOF at a
/// frame boundary (the peer hung up between requests).
///
/// # Errors
///
/// Rejects oversized length prefixes before allocating and propagates IO
/// failures (including EOF mid-frame).
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    // Fill the length prefix byte-by-byte so that EOF *before* the first
    // byte reads as a clean hangup while EOF *inside* the prefix surfaces
    // as truncation, like EOF inside the payload does.
    let mut len_bytes = [0u8; 4];
    let mut filled = 0usize;
    while filled < len_bytes.len() {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside a frame length prefix",
                )))
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge { declared: len });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Outcome of [`read_frame_or_idle`].
#[derive(Debug)]
pub enum FrameIn {
    /// One complete frame payload.
    Payload(Vec<u8>),
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// The socket's read timeout elapsed before the peer sent *any* byte
    /// of a new frame — the connection is idle, not stuck.
    Idle,
}

/// [`read_frame`] for sockets with a read timeout configured: an idle
/// connection (timeout with no frame started) is reported as
/// [`FrameIn::Idle`] so the caller can re-check shutdown flags and keep
/// waiting, while a timeout *inside* a frame — a slow-loris peer trickling
/// bytes, or stalling mid-payload — is an error that drops the connection.
///
/// # Errors
///
/// Everything [`read_frame`] rejects, plus timeouts after the first byte
/// of a frame has arrived.
pub fn read_frame_or_idle(r: &mut impl Read) -> Result<FrameIn, WireError> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0usize;
    while filled < len_bytes.len() {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(FrameIn::Closed),
            Ok(0) => {
                return Err(WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside a frame length prefix",
                )))
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if filled == 0
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                return Ok(FrameIn::Idle)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(WireError::Io(std::io::Error::new(
                    e.kind(),
                    "read timeout inside a frame length prefix (slow-loris peer)",
                )))
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge { declared: len });
    }
    // A timeout in here (read_exact surfaces it as WouldBlock/TimedOut) is
    // mid-frame by definition: the length prefix was already consumed.
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(FrameIn::Payload(payload))
}

/// Bounds-checked little-endian cursor that also enforces the leading
/// protocol version byte.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Opens a payload, consuming and checking the version byte.
    fn open(bytes: &'a [u8]) -> Result<Self, WireError> {
        let mut c = Cursor { bytes, pos: 0 };
        let version = c.u8()?;
        if version != PROTOCOL_VERSION {
            return Err(WireError::VersionMismatch { got: version });
        }
        Ok(c)
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| malformed("payload truncated"))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        // lint: allow-panic take(4) yields exactly 4 bytes, conversion is infallible
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        // lint: allow-panic take(8) yields exactly 8 bytes, conversion is infallible
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        // lint: allow-panic take(8) yields exactly 8 bytes, conversion is infallible
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string of at most `max` bytes.
    fn string(&mut self, max: usize, what: &str) -> Result<String, WireError> {
        let len = self.len_prefix(1)?;
        if len > max {
            return Err(malformed(format!(
                "{what} of {len} bytes exceeds cap {max}"
            )));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| malformed(format!("{what} is not utf-8")))
    }

    /// Reads a `u64` element count and bounds it by the bytes actually
    /// remaining divided by the element's minimum encoded size, so a lying
    /// count cannot trigger an outsized `Vec::with_capacity` (a 64 MiB
    /// frame must not be able to demand a multi-GiB allocation).
    fn len_prefix(&mut self, min_elem_size: usize) -> Result<usize, WireError> {
        let len = self.u64()?;
        let remaining = self.bytes.len() - self.pos;
        let max = remaining / min_elem_size.max(1);
        if len > max as u64 {
            return Err(malformed(format!(
                "length prefix {len} exceeds the {remaining} remaining bytes \
                 ({min_elem_size} per element)"
            )));
        }
        Ok(len as usize)
    }

    /// Asserts the payload was fully consumed.
    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(malformed(format!(
                "{} trailing bytes after message",
                self.bytes.len() - self.pos
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    fn sample_info() -> GraphInfo {
        GraphInfo {
            id: 3,
            name: "roads-de".to_string(),
            vertices: 1000,
            edges: 4000,
            resident_bytes: 80_000,
            mode: LoadMode::Mapped,
            queries: 17,
            plans: vec![
                WirePlan {
                    algo: QueryOp::Sssp,
                    strategy: WireStrategy::Lazy,
                    delta: 4096,
                    origin: WirePlanOrigin::Tuned { trials: 24 },
                },
                WirePlan {
                    algo: QueryOp::KCore,
                    strategy: WireStrategy::LazyConstantSum,
                    delta: 1,
                    origin: WirePlanOrigin::Heuristic,
                },
            ],
        }
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::ListGraphs);
        roundtrip_request(Request::Query(Query::ppsp(3, 99)));
        roundtrip_request(Request::Query(Query::ppsp(3, 99).on_graph(7)));
        roundtrip_request(Request::Query(Query {
            op: QueryOp::Sssp,
            graph: 2,
            source: 7,
            target: 0,
            schedule: WireSchedule {
                strategy: WireStrategy::EagerFusion,
                delta: 4096,
            },
            deadline_ms: 0,
        }));
        roundtrip_request(Request::Query(Query::sssp(4).with_deadline(250)));
        roundtrip_request(Request::Batch(vec![
            Query::ppsp(0, 1),
            Query::sssp(2).on_graph(1),
            Query::wbfs(3).with_deadline(u32::MAX),
            Query::kcore().on_graph(u32::MAX),
        ]));
        roundtrip_request(Request::Batch(Vec::new()));
        roundtrip_request(Request::LoadGraph {
            name: "twitter".to_string(),
            path: "/data/twitter.snap".to_string(),
        });
        roundtrip_request(Request::UnloadGraph {
            name: String::new(),
        });
        roundtrip_request(Request::TuneGraph {
            graph: 5,
            algo: QueryOp::Sssp,
            budget: 40,
        });
        roundtrip_request(Request::TuneGraph {
            graph: 0,
            algo: QueryOp::KCore,
            budget: 0,
        });
        roundtrip_request(Request::StatsV2);
    }

    fn sample_stats_v2() -> StatsV2 {
        StatsV2 {
            counters: vec![
                ("engine.rounds".to_string(), 321),
                ("errors.timeout".to_string(), 2),
                ("queries".to_string(), 12_345),
            ],
            series: vec![
                SeriesSummary {
                    name: "graph.0.ppsp.total".to_string(),
                    count: 11_000,
                    p50_us: 180,
                    p90_us: 420,
                    p99_us: 950,
                    p999_us: 2_100,
                    max_us: 9_876,
                },
                SeriesSummary {
                    name: "phase.queued".to_string(),
                    count: 12_345,
                    p50_us: 90,
                    p90_us: 240,
                    p99_us: 610,
                    p999_us: 1_500,
                    max_us: 4_200,
                },
            ],
        }
    }

    #[test]
    fn stats_v2_roundtrips() {
        roundtrip_response(Response::StatsV2(StatsV2::default()));
        roundtrip_response(Response::StatsV2(sample_stats_v2()));
        roundtrip_response(Response::StatsV2(StatsV2 {
            counters: vec![(String::new(), u64::MAX)],
            series: vec![SeriesSummary::default()],
        }));
    }

    #[test]
    fn stats_v2_lookups_find_by_name() {
        let stats = sample_stats_v2();
        assert_eq!(stats.counter("queries"), Some(12_345));
        assert_eq!(stats.counter("missing"), None);
        assert_eq!(stats.series("phase.queued").unwrap().p99_us, 610);
        assert!(stats.series("phase.missing").is_none());
    }

    #[test]
    fn stats_v2_json_is_one_line_and_well_formed() {
        let json = sample_stats_v2().to_json();
        assert!(!json.contains('\n'));
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"queries\":12345"));
        assert!(json.contains("\"phase.queued\":{\"count\":12345,\"p50_us\":90,"));
        assert!(json.ends_with("}}"));
        // Balanced braces (no serde to parse it; structural sanity check).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        let empty = StatsV2::default().to_json();
        assert_eq!(empty, "{\"counters\":{},\"series\":{}}");
    }

    #[test]
    fn stats_v2_rejects_oversized_series_names() {
        let stats = StatsV2 {
            counters: Vec::new(),
            series: vec![SeriesSummary {
                name: "x".repeat(MAX_NAME_LEN + 1),
                ..SeriesSummary::default()
            }],
        };
        let bytes = Response::StatsV2(stats).encode();
        assert!(matches!(
            Response::decode(&bytes).unwrap_err(),
            WireError::Malformed(_)
        ));
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Distance {
            distance: Some(41),
            relaxations: 17,
        });
        roundtrip_response(Response::Distance {
            distance: None,
            relaxations: 0,
        });
        roundtrip_response(Response::DistVec(vec![0, 5, i64::MAX / 4]));
        roundtrip_response(Response::Coreness(vec![2, 2, 1]));
        roundtrip_response(Response::Stats(ServerStats {
            num_vertices: 100,
            num_edges: 400,
            threads: 4,
            queries: 9,
            batch_rounds: 3,
            point_queries: 6,
            full_queries: 3,
            errors: 1,
            graphs: 2,
            busy_rejections: 5,
            tune_runs: 1,
            timeouts: 2,
            rejected_connections: 3,
        }));
        roundtrip_response(Response::Batch(vec![
            Response::Distance {
                distance: Some(1),
                relaxations: 2,
            },
            Response::error(ErrorKind::BadVertex, "nope"),
            Response::DistVec(vec![7]),
        ]));
        roundtrip_response(Response::error(ErrorKind::Internal, ""));
        roundtrip_response(Response::Bye);
        roundtrip_response(Response::Busy {
            scope: BusyScope::Global,
            pending: 900,
            budget: 1024,
            retry_after_ms: 12,
        });
        roundtrip_response(Response::Busy {
            scope: BusyScope::Graph(7),
            pending: 64,
            budget: 64,
            retry_after_ms: 1,
        });
        roundtrip_response(Response::GraphList(vec![]));
        roundtrip_response(Response::GraphList(vec![
            sample_info(),
            GraphInfo {
                id: 0,
                name: "default".to_string(),
                mode: LoadMode::Owned,
                plans: Vec::new(),
                ..sample_info()
            },
        ]));
        roundtrip_response(Response::Loaded(sample_info()));
        roundtrip_response(Response::Unloaded);
        roundtrip_response(Response::Tuned(TuneOutcome {
            graph: 3,
            plan: WirePlan {
                algo: QueryOp::Sssp,
                strategy: WireStrategy::EagerFusion,
                delta: 32,
                origin: WirePlanOrigin::Tuned { trials: 40 },
            },
            trials_run: 40,
            best_cost_micros: 1234,
        }));
    }

    #[test]
    fn every_error_kind_roundtrips() {
        for kind in [
            ErrorKind::Internal,
            ErrorKind::BadRequest,
            ErrorKind::BadVertex,
            ErrorKind::UnknownGraph,
            ErrorKind::UnsupportedVersion,
            ErrorKind::ScheduleRejected,
            ErrorKind::TooLarge,
            ErrorKind::ShuttingDown,
            ErrorKind::LoadFailed,
            ErrorKind::Timeout,
            ErrorKind::Overloaded,
        ] {
            roundtrip_response(Response::error(kind, kind.to_string()));
        }
        // Unknown kinds are malformed, not silently remapped.
        let mut bytes = Response::error(ErrorKind::Internal, "x").encode();
        bytes[2] = 200;
        assert!(matches!(
            Response::decode(&bytes).unwrap_err(),
            WireError::Malformed(_)
        ));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut bytes = Request::Stats.encode();
        bytes[0] = PROTOCOL_VERSION + 1;
        assert!(matches!(
            Request::decode(&bytes).unwrap_err(),
            WireError::VersionMismatch { got } if got == PROTOCOL_VERSION + 1
        ));
        // A v1 frame is the expected legacy case.
        bytes[0] = 1;
        assert!(matches!(
            Request::decode(&bytes).unwrap_err(),
            WireError::VersionMismatch { got: 1 }
        ));
    }

    #[test]
    fn legacy_error_payloads_match_their_version_shapes() {
        // v1: untyped error — version byte, tag, message.
        let payload = legacy_error_payload(1, "upgrade to v5").unwrap();
        assert_eq!(payload[0], 1, "v1 version byte");
        assert_eq!(payload[1], 5, "v1 Error tag");
        let len = u64::from_le_bytes(payload[2..10].try_into().unwrap()) as usize;
        assert_eq!(&payload[10..10 + len], b"upgrade to v5");
        assert_eq!(payload.len(), 10 + len, "nothing after the message");

        // v2 through v4: typed error — version byte, tag, kind, message.
        for version in [2u8, 3, 4] {
            let payload = legacy_error_payload(version, "upgrade to v5").unwrap();
            assert_eq!(payload[0], version, "v{version} version byte");
            assert_eq!(payload[1], 5, "v{version} Error tag");
            assert_eq!(
                payload[2],
                ErrorKind::UnsupportedVersion.to_u8(),
                "v{version} errors carry a kind byte"
            );
            let len = u64::from_le_bytes(payload[3..11].try_into().unwrap()) as usize;
            assert_eq!(&payload[11..11 + len], b"upgrade to v5");
            assert_eq!(payload.len(), 11 + len);
        }

        // The current decoder rejects all as version mismatches, which is
        // exactly what a *new* client pointed at an old server should see.
        for got in [1u8, 2, 3, 4] {
            let payload = legacy_error_payload(got, "x").unwrap();
            assert!(matches!(
                Response::decode(&payload).unwrap_err(),
                WireError::VersionMismatch { got: g } if g == got
            ));
        }

        // Versions this server never spoke get no legacy shape.
        assert!(legacy_error_payload(0, "x").is_none());
        assert!(legacy_error_payload(PROTOCOL_VERSION, "x").is_none());
        assert!(legacy_error_payload(200, "x").is_none());
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        for bytes in [
            Request::Query(Query::ppsp(1, 2)).encode(),
            Request::LoadGraph {
                name: "g".to_string(),
                path: "/tmp/g.snap".to_string(),
            }
            .encode(),
            Request::ListGraphs.encode(),
        ] {
            for cut in 0..bytes.len() {
                assert!(Request::decode(&bytes[..cut]).is_err(), "cut at {cut}");
            }
            let mut extended = bytes.clone();
            extended.push(0);
            assert!(matches!(
                Request::decode(&extended).unwrap_err(),
                WireError::Malformed(_)
            ));
        }
        for bytes in [
            Response::Loaded(sample_info()).encode(),
            Response::Busy {
                scope: BusyScope::Graph(1),
                pending: 1,
                budget: 2,
                retry_after_ms: 3,
            }
            .encode(),
            Response::Tuned(TuneOutcome {
                graph: 1,
                plan: WirePlan {
                    algo: QueryOp::Wbfs,
                    strategy: WireStrategy::Lazy,
                    delta: 1,
                    origin: WirePlanOrigin::Heuristic,
                },
                trials_run: 6,
                best_cost_micros: 99,
            })
            .encode(),
        ] {
            for cut in 1..bytes.len() {
                assert!(Response::decode(&bytes[..cut]).is_err(), "cut at {cut}");
            }
        }
    }

    #[test]
    fn lying_batch_count_cannot_demand_a_huge_allocation() {
        let mut bytes = Request::Batch(vec![Query::ppsp(0, 1)]).encode();
        // The count sits right after version + tag.
        bytes[2..10].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Request::decode(&bytes).unwrap_err(),
            WireError::Malformed(_)
        ));
    }

    #[test]
    fn batch_count_is_bounded_by_element_size() {
        // Two queries encoded, count rewritten to 3: a one-byte-per-element
        // bound would accept this and overshoot the preallocation; the
        // element-size bound rejects it up front.
        let mut bytes = Request::Batch(vec![Query::ppsp(0, 1), Query::ppsp(1, 2)]).encode();
        bytes[2..10].copy_from_slice(&3u64.to_le_bytes());
        assert!(matches!(
            Request::decode(&bytes).unwrap_err(),
            WireError::Malformed(_)
        ));
    }

    #[test]
    fn oversized_names_and_paths_are_rejected() {
        let long_name = "n".repeat(MAX_NAME_LEN + 1);
        let bytes = Request::UnloadGraph { name: long_name }.encode();
        assert!(matches!(
            Request::decode(&bytes).unwrap_err(),
            WireError::Malformed(_)
        ));
        let ok_name = "n".repeat(MAX_NAME_LEN);
        roundtrip_request(Request::UnloadGraph { name: ok_name });
        let bytes = Request::LoadGraph {
            name: "g".to_string(),
            path: "p".repeat(MAX_PATH_LEN + 1),
        }
        .encode();
        assert!(matches!(
            Request::decode(&bytes).unwrap_err(),
            WireError::Malformed(_)
        ));
    }

    #[test]
    fn non_utf8_names_are_malformed() {
        let mut bytes = Request::UnloadGraph {
            name: "ab".to_string(),
        }
        .encode();
        let name_start = bytes.len() - 2;
        bytes[name_start] = 0xFF;
        bytes[name_start + 1] = 0xFE;
        assert!(matches!(
            Request::decode(&bytes).unwrap_err(),
            WireError::Malformed(why) if why.contains("utf-8")
        ));
    }

    #[test]
    fn nested_batch_response_is_rejected() {
        let inner = Response::Batch(vec![Response::Bye]);
        let outer = Response::Batch(vec![inner]);
        assert!(matches!(
            Response::decode(&outer.encode()).unwrap_err(),
            WireError::Malformed(_)
        ));
    }

    #[test]
    fn frames_roundtrip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");

        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut &huge[..]).unwrap_err(),
            WireError::FrameTooLarge { .. }
        ));
        assert!(matches!(
            write_frame(&mut Vec::new(), &vec![0u8; MAX_FRAME_LEN + 1]).unwrap_err(),
            WireError::FrameTooLarge { .. }
        ));
    }

    #[test]
    fn mid_frame_eof_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2); // inside the payload
        assert!(matches!(
            read_frame(&mut &buf[..]).unwrap_err(),
            WireError::Io(_)
        ));
        // EOF inside the 4-byte length prefix is truncation too, not a
        // clean close.
        for cut in 1..4 {
            let partial = &[0u8; 4][..cut];
            assert!(matches!(
                read_frame(&mut &partial[..]).unwrap_err(),
                WireError::Io(_)
            ));
        }
    }

    /// A scripted reader: replays byte chunks and timeout errors in order,
    /// standing in for a socket with a read timeout configured.
    struct ScriptedRead(std::collections::VecDeque<Result<Vec<u8>, std::io::ErrorKind>>);

    impl Read for ScriptedRead {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.0.pop_front() {
                None => Ok(0),
                Some(Ok(bytes)) => {
                    let n = bytes.len().min(buf.len());
                    buf[..n].copy_from_slice(&bytes[..n]);
                    if n < bytes.len() {
                        self.0.push_front(Ok(bytes[n..].to_vec()));
                    }
                    Ok(n)
                }
                Some(Err(kind)) => Err(std::io::Error::new(kind, "scripted")),
            }
        }
    }

    #[test]
    fn idle_timeouts_and_slow_loris_are_told_apart() {
        use std::io::ErrorKind as IoKind;
        // Timeout before any byte of a frame: idle, keep waiting.
        let mut idle = ScriptedRead([Err(IoKind::WouldBlock)].into_iter().collect());
        assert!(matches!(
            read_frame_or_idle(&mut idle).unwrap(),
            FrameIn::Idle
        ));

        // Timeout after a partial length prefix: a slow-loris peer.
        let mut loris = ScriptedRead(
            [Ok(vec![5u8, 0]), Err(IoKind::TimedOut)]
                .into_iter()
                .collect(),
        );
        assert!(matches!(
            read_frame_or_idle(&mut loris).unwrap_err(),
            WireError::Io(_)
        ));

        // Timeout inside the payload is mid-frame too.
        let mut frame = Vec::new();
        write_frame(&mut frame, b"hello").unwrap();
        let mut stalled = ScriptedRead(
            [Ok(frame[..6].to_vec()), Err(IoKind::WouldBlock)]
                .into_iter()
                .collect(),
        );
        assert!(matches!(
            read_frame_or_idle(&mut stalled).unwrap_err(),
            WireError::Io(_)
        ));

        // A whole frame and a clean close still behave like `read_frame`.
        let mut whole = ScriptedRead([Ok(frame.clone())].into_iter().collect());
        match read_frame_or_idle(&mut whole).unwrap() {
            FrameIn::Payload(p) => assert_eq!(p, b"hello"),
            other => panic!("expected a payload, got {other:?}"),
        }
        let mut closed = ScriptedRead(std::collections::VecDeque::new());
        assert!(matches!(
            read_frame_or_idle(&mut closed).unwrap(),
            FrameIn::Closed
        ));
    }

    #[test]
    fn wire_schedule_resolves_against_default() {
        let default = Schedule::lazy(512);
        let keep = WireSchedule::default().resolve(&default);
        assert_eq!(keep, default);
        let eager = WireSchedule {
            strategy: WireStrategy::EagerFusion,
            delta: 32,
        }
        .resolve(&default);
        assert_eq!(eager.delta, 32);
        assert!(eager.is_eager());
        let inherit_delta = WireSchedule {
            strategy: WireStrategy::Lazy,
            delta: 0,
        }
        .resolve(&default);
        assert_eq!(inherit_delta.delta, 512);
        let kcore = WireSchedule {
            strategy: WireStrategy::LazyConstantSum,
            delta: 99,
        }
        .resolve(&default);
        assert_eq!(kcore.delta, 1, "constant-sum forbids coarsening");
    }

    #[test]
    fn wire_plans_project_core_plans() {
        use priograph_core::plan::GraphProfile;
        let profile = GraphProfile {
            vertices: 100,
            edges: 400,
            avg_degree: 4.0,
            max_weight: 1 << 12,
            has_coords: true,
            symmetric: true,
        };
        let plan = QueryPlan::heuristic(AlgoFamily::Sssp, &profile);
        let wire = WirePlan::of_plan(&plan);
        assert_eq!(wire.algo, QueryOp::Sssp);
        assert_eq!(wire.strategy, WireStrategy::Lazy);
        assert_eq!(wire.delta, plan.schedule.delta);
        assert_eq!(wire.origin, WirePlanOrigin::Heuristic);
        assert!(wire.summary().starts_with("sssp:lazy@"));

        let tuned = QueryPlan::new(
            AlgoFamily::KCore,
            Schedule::lazy_constant_sum(),
            PlanOrigin::Tuned { trials: 9 },
        );
        let wire = WirePlan::of_plan(&tuned);
        assert_eq!(wire.origin, WirePlanOrigin::Tuned { trials: 9 });
        assert_eq!(wire.strategy, WireStrategy::LazyConstantSum);

        let info = sample_info();
        assert_eq!(info.plan_for(QueryOp::Sssp).unwrap().delta, 4096);
        assert!(info.plan_for(QueryOp::Wbfs).is_none());
        assert!(info.plan_for(QueryOp::Ppsp).is_none(), "ppsp has no plan");
    }

    #[test]
    fn query_op_spellings_and_families() {
        for op in [QueryOp::Ppsp, QueryOp::Sssp, QueryOp::Wbfs, QueryOp::KCore] {
            assert_eq!(QueryOp::parse(op.as_str()), Ok(op));
        }
        assert!(QueryOp::parse("bogus").is_err());
        assert_eq!(QueryOp::Ppsp.family(), None);
        for family in AlgoFamily::ALL {
            assert_eq!(QueryOp::from_family(family).family(), Some(family));
        }
    }

    #[test]
    fn strategy_spellings_parse() {
        assert_eq!(WireStrategy::parse("lazy"), Ok(WireStrategy::Lazy));
        assert_eq!(
            WireStrategy::parse("eager-fusion"),
            Ok(WireStrategy::EagerFusion)
        );
        assert_eq!(
            WireStrategy::parse("eager_with_fusion"),
            Ok(WireStrategy::EagerFusion)
        );
        assert_eq!(
            WireStrategy::parse("default"),
            Ok(WireStrategy::ServerDefault)
        );
        assert!(WireStrategy::parse("bogus").is_err());
    }
}
