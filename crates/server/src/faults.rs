//! Deterministic, seed-driven fault injection for chaos testing, compiled
//! only under the `fault-inject` feature (never in release serving
//! builds).
//!
//! A process-global [`FaultConfig`] arms the layer; the server then wraps
//! every accepted connection's stream in a [`FaultyStream`], which
//! xorshift-schedules torn reads, stalls, delayed/short writes, and
//! mid-stream disconnects at a configured rate. Snapshot loads can be
//! truncated the same way ([`maybe_truncate_snapshot`]), driving torn
//! files through the real open/validate path. Everything is derived from
//! one seed plus a per-connection counter, so a chaos failure reproduces
//! from its seed alone (ISSUE 7).
//!
//! The injected faults are exactly the shapes a hostile or flaky network
//! produces — partial reads, stalled sockets, resets, short writes — so a
//! server surviving a chaos run has demonstrated its handler threads
//! neither panic nor wedge on them.

use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What fraction of stream operations misbehave, and how, for one chaos
/// run.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Master seed; every injected fault derives from it deterministically.
    pub seed: u64,
    /// Percent of stream reads/writes that draw a fault (0–100).
    pub rate_percent: u8,
    /// Also truncate snapshot files on `LoadGraph` (at the same rate),
    /// exercising the typed `load-failed` path.
    pub truncate_snapshot_loads: bool,
}

/// The armed configuration, if any. A plain std `Mutex` (not parking_lot)
/// so the layer has no dependencies beyond std.
static CONFIG: Mutex<Option<FaultConfig>> = Mutex::new(None);

/// Monotone connection counter: each wrapped stream gets its own rng
/// stream derived from (seed, connection index).
static CONN_SEQ: AtomicU64 = AtomicU64::new(0);

/// Counter feeding the snapshot-truncation rng and temp-file names.
static LOAD_SEQ: AtomicU64 = AtomicU64::new(0);

/// Arms fault injection process-wide and resets the connection counter,
/// so a run is reproducible from `config.seed` alone.
pub fn install(config: FaultConfig) {
    CONN_SEQ.store(0, Ordering::SeqCst);
    LOAD_SEQ.store(0, Ordering::SeqCst);
    *lock_config() = Some(config);
}

/// Disarms fault injection; already-wrapped streams keep their schedule.
pub fn clear() {
    *lock_config() = None;
}

fn lock_config() -> std::sync::MutexGuard<'static, Option<FaultConfig>> {
    match CONFIG.lock() {
        Ok(guard) => guard,
        // A panicking holder cannot leave the Option invalid; keep going.
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// splitmix64: the standard 64-bit finalizer, good enough to decorrelate
/// sequential counters into fault schedules.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One injected misbehavior on a stream operation.
#[derive(Debug, Clone, Copy)]
enum Fault {
    /// Sleep briefly before the real operation (a slow peer).
    Stall,
    /// Serve at most one byte (a torn read / short write).
    Torn,
    /// Fail the operation as if the peer vanished mid-stream.
    Disconnect,
}

/// A stream wrapper that injects faults (stalls, torn reads/writes,
/// disconnects) on a deterministic
/// per-connection xorshift schedule. When no [`FaultConfig`] is armed the
/// wrapper is a transparent pass-through.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    rng: u64,
    rate_percent: u8,
}

impl<S> FaultyStream<S> {
    /// Wraps `inner`, drawing this connection's schedule from the armed
    /// seed and the connection counter.
    pub fn wrap(inner: S) -> FaultyStream<S> {
        let (rng, rate_percent) = match *lock_config() {
            Some(config) => {
                let conn = CONN_SEQ.fetch_add(1, Ordering::SeqCst);
                let state = splitmix64(config.seed ^ splitmix64(conn)) | 1;
                (state, config.rate_percent.min(100))
            }
            None => (0, 0),
        };
        FaultyStream {
            inner,
            rng,
            rate_percent,
        }
    }

    /// xorshift64 step; the schedule is this stream's alone.
    fn next(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Draws whether (and which) fault hits the current operation.
    fn draw(&mut self) -> Option<Fault> {
        if self.rate_percent == 0 {
            return None;
        }
        let roll = self.next();
        if roll % 100 >= u64::from(self.rate_percent) {
            return None;
        }
        Some(match self.next() % 3 {
            0 => Fault::Stall,
            1 => Fault::Torn,
            _ => Fault::Disconnect,
        })
    }

    /// A short deterministic stall (5–20ms): long enough to reorder
    /// thread interleavings, short enough to keep chaos runs fast.
    fn stall(&mut self) {
        let ms = 5 + self.next() % 16;
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.draw() {
            Some(Fault::Stall) => self.stall(),
            Some(Fault::Torn) if !buf.is_empty() => {
                return self.inner.read(&mut buf[..1]);
            }
            Some(Fault::Disconnect) => {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "fault-inject: connection reset mid-read",
                ));
            }
            Some(Fault::Torn) | None => {}
        }
        self.inner.read(buf)
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.draw() {
            Some(Fault::Stall) => self.stall(),
            Some(Fault::Torn) if !buf.is_empty() => {
                return self.inner.write(&buf[..1]);
            }
            Some(Fault::Disconnect) => {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "fault-inject: connection reset mid-write",
                ));
            }
            Some(Fault::Torn) | None => {}
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A truncated temp copy of a snapshot, deleted on drop.
#[derive(Debug)]
pub struct TruncatedSnapshot {
    path: String,
}

impl TruncatedSnapshot {
    /// The temp copy's path, to feed through the real load path.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for TruncatedSnapshot {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// When armed with `truncate_snapshot_loads`, sometimes (at the
/// configured rate) substitutes a truncated temp copy for the snapshot at
/// `path`, so torn files exercise the real open/validate path and its
/// typed `load-failed` error. Returns `None` (load the real file) when
/// disarmed, not drawn, or on any filesystem hiccup.
pub fn maybe_truncate_snapshot(path: &str) -> Option<TruncatedSnapshot> {
    let config = (*lock_config())?;
    if !config.truncate_snapshot_loads {
        return None;
    }
    let draw = LOAD_SEQ.fetch_add(1, Ordering::SeqCst);
    let roll = splitmix64(config.seed ^ splitmix64(draw ^ 0x10AD));
    if roll % 100 >= u64::from(config.rate_percent.min(100)) {
        return None;
    }
    let bytes = std::fs::read(Path::new(path)).ok()?;
    // Keep 0–90% of the file: always torn, never whole.
    let keep = (bytes.len() as u64).saturating_mul(splitmix64(roll) % 91) / 100;
    let out = std::env::temp_dir().join(format!(
        "priograph-fault-{}-{draw}.snap",
        std::process::id()
    ));
    std::fs::write(&out, &bytes[..keep as usize]).ok()?;
    Some(TruncatedSnapshot {
        path: out.to_string_lossy().into_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test, three phases: the config is process-global state, so
    /// running these as separate (parallel) tests would race.
    #[test]
    fn fault_layer_passes_through_reproduces_and_truncates() {
        // Phase 1: unarmed streams are transparent.
        clear();
        let data = b"hello frame".to_vec();
        let mut stream = FaultyStream::wrap(io::Cursor::new(data.clone()));
        let mut out = Vec::new();
        stream.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);

        // Phase 2: same seed + same connection index ⇒ identical draws.
        install(FaultConfig {
            seed: 99,
            rate_percent: 50,
            truncate_snapshot_loads: false,
        });
        let mut a = FaultyStream::wrap(io::Cursor::new(vec![0u8; 64]));
        install(FaultConfig {
            seed: 99,
            rate_percent: 50,
            truncate_snapshot_loads: false,
        });
        let mut b = FaultyStream::wrap(io::Cursor::new(vec![0u8; 64]));
        for _ in 0..32 {
            assert_eq!(
                format!("{:?}", a.draw()),
                format!("{:?}", b.draw()),
                "schedules must reproduce from the seed"
            );
        }

        // Phase 3: truncated snapshot copies are strict prefixes and the
        // temp file cleans up on drop.
        let src =
            std::env::temp_dir().join(format!("priograph-fault-src-{}.snap", std::process::id()));
        std::fs::write(&src, vec![7u8; 4096]).unwrap();
        install(FaultConfig {
            seed: 5,
            rate_percent: 100,
            truncate_snapshot_loads: true,
        });
        let truncated =
            maybe_truncate_snapshot(src.to_str().unwrap()).expect("rate 100 always draws");
        let copy = std::fs::read(truncated.path()).unwrap();
        assert!(copy.len() < 4096, "must be torn, got {} bytes", copy.len());
        assert!(copy.iter().all(|&b| b == 7), "must be a prefix");
        let path = truncated.path().to_string();
        drop(truncated);
        assert!(!Path::new(&path).exists(), "temp copy cleans up on drop");
        clear();
        let _ = std::fs::remove_file(&src);
    }
}
