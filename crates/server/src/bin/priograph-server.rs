//! The `priograph-server` binary: load (or generate) a graph, optionally
//! persist it as a snapshot, and serve queries over TCP.
//!
//! ```text
//! priograph-server --snapshot g.snap                 [--listen 127.0.0.1:7411]
//! priograph-server --graph edges.el                  [--threads N]
//! priograph-server --gen grid:60 --save-snapshot g.snap
//!                  [--schedule lazy|eager|eager-fusion] [--delta N]
//!                  [--manifest state.manifest] [--mmap-populate]
//!                  [--graph-budget N] [--pending-budget N]
//!                  [--metrics-log SECS]
//! ```
//!
//! `--metrics-log SECS` emits one JSON line to stderr every tick: the full
//! `StatsV2` snapshot (named counters + latency series) plus the current
//! slow-query ring — greppable structured telemetry with no scrape
//! endpoint needed.
//!
//! `--manifest` makes residency declarative: wire-loaded graphs and tuned
//! plans are written to the file on every change and restored at boot.
//! `--mmap-populate` pre-faults snapshot mappings (`MAP_POPULATE` +
//! sequential advice) so cold-cache first queries do not stall on page-in.
//!
//! Once bound it prints `listening on ADDR` to stdout (scripts wait for
//! that line) and serves until a client sends the shutdown request or the
//! process receives SIGINT/SIGTERM — both route into the graceful drain
//! (stop accepting, answer admitted queries, flush the manifest, exit 0;
//! `docs/PROTOCOL.md` §6.2), so a supervisor's `kill` can no longer leave
//! a stale manifest behind.

use priograph_core::schedule::Schedule;
use priograph_graph::GraphSnapshot;
use priograph_serve::protocol::{WireSchedule, WireStrategy};
use priograph_serve::server::{serve, ServerConfig};
use priograph_serve::spec::GraphSource;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

struct Args {
    listen: String,
    source: GraphSource,
    save_snapshot: Option<String>,
    threads: usize,
    schedule: String,
    delta: Option<i64>,
    manifest: Option<String>,
    mmap_populate: bool,
    pending_budget: Option<usize>,
    graph_budget: Option<usize>,
    metrics_log_secs: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: "127.0.0.1:7411".to_string(),
        source: GraphSource::default(),
        save_snapshot: None,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        schedule: "lazy".to_string(),
        delta: None,
        manifest: None,
        mmap_populate: false,
        pending_budget: None,
        graph_budget: None,
        metrics_log_secs: 0,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut take = |what: &str| -> String {
            argv.next()
                .unwrap_or_else(|| fail(&format!("{what} expects a value")))
        };
        match flag.as_str() {
            "--listen" => args.listen = take("--listen"),
            "--snapshot" => args.source.snapshot = Some(take("--snapshot")),
            "--graph" => args.source.graph = Some(take("--graph")),
            "--gen" => args.source.gen_spec = Some(take("--gen")),
            "--save-snapshot" => args.save_snapshot = Some(take("--save-snapshot")),
            "--threads" => {
                args.threads = take("--threads")
                    .parse()
                    .unwrap_or_else(|_| fail("--threads expects a positive integer"));
            }
            "--schedule" => args.schedule = take("--schedule"),
            "--delta" => {
                args.delta = Some(
                    take("--delta")
                        .parse()
                        .unwrap_or_else(|_| fail("--delta expects an integer >= 1")),
                );
            }
            "--manifest" => args.manifest = Some(take("--manifest")),
            "--mmap-populate" => {
                args.mmap_populate = true;
                args.source.mmap_populate = true;
            }
            "--pending-budget" => {
                args.pending_budget = Some(
                    take("--pending-budget")
                        .parse()
                        .unwrap_or_else(|_| fail("--pending-budget expects a positive integer")),
                );
            }
            "--graph-budget" => {
                args.graph_budget = Some(
                    take("--graph-budget")
                        .parse()
                        .unwrap_or_else(|_| fail("--graph-budget expects a positive integer")),
                );
            }
            "--metrics-log" => {
                args.metrics_log_secs = take("--metrics-log")
                    .parse()
                    .unwrap_or_else(|_| fail("--metrics-log expects seconds (0 = off)"));
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --snapshot PATH | --graph PATH | --gen SPEC (one required)\n\
                     \x20      --listen ADDR  --threads N  --save-snapshot PATH\n\
                     \x20      --schedule lazy|eager|eager-fusion|lazy-constant-sum  --delta N\n\
                     \x20      --manifest PATH  --mmap-populate\n\
                     \x20      --pending-budget N (global)  --graph-budget N (per graph)\n\
                     \x20      --metrics-log SECS (one StatsV2 JSON line to stderr per tick)"
                );
                std::process::exit(0);
            }
            other => fail(&format!("unknown flag {other}; see --help")),
        }
    }
    args
}

fn fail(why: &str) -> ! {
    eprintln!("priograph-server: {why}");
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    let graph = args
        .source
        .load()
        .unwrap_or_else(|e| fail(&format!("loading graph: {e}")));
    eprintln!(
        "resident graph: |V| = {}, |E| = {}, symmetric = {}, coords = {}, load = {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.is_symmetric(),
        graph.coords().is_some(),
        if graph.is_mapped() { "mmap" } else { "owned" }
    );
    if let Some(path) = &args.save_snapshot {
        GraphSnapshot::write(&graph, path)
            .unwrap_or_else(|e| fail(&format!("writing snapshot {path}: {e}")));
        eprintln!("wrote snapshot {path}");
    }

    // Road graphs (recognizable by coordinates) want a large Δ, social
    // graphs a small one (paper §6.2); --delta overrides the guess.
    let delta = args
        .delta
        .unwrap_or(if graph.coords().is_some() {
            1 << 12
        } else {
            32
        })
        .max(1);
    // One spelling set for --schedule and the wire: WireStrategy::parse.
    // "default" (= ServerDefault) resolves to lazy, the family-agnostic
    // choice.
    let strategy = WireStrategy::parse(&args.schedule).unwrap_or_else(|e| fail(&e));
    let default_schedule = WireSchedule { strategy, delta }.resolve(&Schedule::lazy(delta));

    let defaults = ServerConfig::default();
    let handle = serve(
        graph,
        ServerConfig {
            addr: args.listen.clone(),
            threads: args.threads.max(1),
            default_schedule,
            pending_budget: args.pending_budget.unwrap_or(defaults.pending_budget),
            graph_pending_budget: args.graph_budget.unwrap_or(defaults.graph_pending_budget),
            manifest: args.manifest.as_ref().map(std::path::PathBuf::from),
            mmap_populate: args.mmap_populate,
            metrics_log_ms: args.metrics_log_secs.saturating_mul(1_000),
            ..defaults
        },
    )
    .unwrap_or_else(|e| fail(&format!("binding {}: {e}", args.listen)));

    // SIGINT/SIGTERM route into the graceful drain: the handler only sets
    // a flag (the one async-signal-safe thing), a watcher thread polls it
    // and fires the drain trigger, and join() below returns once the
    // drain completes — so the process exits 0 with the manifest flushed.
    let term_flag = Arc::new(AtomicBool::new(false));
    for signal in [signal_hook::consts::SIGINT, signal_hook::consts::SIGTERM] {
        if let Err(e) = signal_hook::flag::register(signal, Arc::clone(&term_flag)) {
            eprintln!("priograph-server: signal {signal} handler not installed: {e}");
        }
    }
    let trigger = handle.drain_trigger();
    let watcher_flag = Arc::clone(&term_flag);
    let _ = std::thread::Builder::new()
        .name("priograph-signal".to_string())
        .spawn(move || loop {
            if watcher_flag.load(Ordering::Acquire) {
                eprintln!("priograph-server: signal received, draining");
                trigger.drain();
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        });

    // Scripts block on this exact line to know the port is live.
    println!("listening on {}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.join();
    eprintln!("priograph-server: shut down");
}
