//! The `priograph-client` binary: issue queries against a running
//! `priograph-server`, optionally verifying every distance against a
//! locally computed serial Dijkstra reference (the CI smoke test's gate).
//!
//! ```text
//! priograph-client --connect 127.0.0.1:7411 stats
//! priograph-client --connect ADDR ppsp 0 99
//! priograph-client --connect ADDR sssp 0
//! priograph-client --connect ADDR shutdown
//! priograph-client --connect ADDR --random 120 --seed 7 \
//!                  --snapshot g.snap --verify
//! ```
//!
//! `--random N` sends one batch of N mixed PPSP/SSSP queries; with
//! `--verify` the client loads the same graph (via --snapshot/--graph/--gen)
//! and exits nonzero unless every served distance matches Dijkstra.

use priograph_algorithms::serial::dijkstra;
use priograph_algorithms::UNREACHABLE;
use priograph_serve::client::Client;
use priograph_serve::protocol::{Query, Response};
use priograph_serve::server::fmt_distance;
use priograph_serve::spec::GraphSource;
use std::collections::HashMap;

struct Args {
    connect: String,
    source: GraphSource,
    random: usize,
    seed: u64,
    verify: bool,
    command: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        connect: "127.0.0.1:7411".to_string(),
        source: GraphSource::default(),
        random: 0,
        seed: 1,
        verify: false,
        command: Vec::new(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut take = |what: &str| -> String {
            argv.next()
                .unwrap_or_else(|| fail(&format!("{what} expects a value")))
        };
        match flag.as_str() {
            "--connect" => args.connect = take("--connect"),
            "--snapshot" => args.source.snapshot = Some(take("--snapshot")),
            "--graph" => args.source.graph = Some(take("--graph")),
            "--gen" => args.source.gen_spec = Some(take("--gen")),
            "--random" => {
                args.random = take("--random")
                    .parse()
                    .unwrap_or_else(|_| fail("--random expects a count"));
            }
            "--seed" => {
                args.seed = take("--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("--seed expects an integer"));
            }
            "--verify" => args.verify = true,
            "--help" | "-h" => {
                eprintln!(
                    "flags: --connect ADDR  [--random N --seed S --verify]\n\
                     \x20      [--snapshot PATH | --graph PATH | --gen SPEC]\n\
                     commands: stats | ppsp SRC DST | sssp SRC | shutdown"
                );
                std::process::exit(0);
            }
            other => args.command.push(other.to_string()),
        }
    }
    args
}

fn fail(why: &str) -> ! {
    eprintln!("priograph-client: {why}");
    std::process::exit(2);
}

/// Deterministic mixed query batch: mostly point queries, a sprinkling of
/// full SSSP — the serving mix the batching dispatcher is built for.
fn random_batch(n_vertices: u32, count: usize, seed: u64) -> Vec<Query> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = move || {
        // xorshift64* — deterministic and dependency-free.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    (0..count)
        .map(|i| {
            let source = (next() % n_vertices as u64) as u32;
            if i % 5 == 4 {
                Query::sssp(source)
            } else {
                let target = (next() % n_vertices as u64) as u32;
                Query::ppsp(source, target)
            }
        })
        .collect()
}

/// Checks one served response against the reference distance vector.
fn check(query: &Query, response: &Response, dist: &[i64]) -> Result<(), String> {
    match (query, response) {
        (q, Response::Distance { distance, .. }) => {
            let expected =
                (dist[q.target as usize] < UNREACHABLE).then_some(dist[q.target as usize]);
            if *distance == expected {
                Ok(())
            } else {
                Err(format!(
                    "ppsp {}->{}: served {distance:?}, reference {expected:?}",
                    q.source, q.target
                ))
            }
        }
        (q, Response::DistVec(served)) => {
            if served == dist {
                Ok(())
            } else {
                let bad = served.iter().zip(dist).filter(|(a, b)| a != b).count();
                Err(format!(
                    "sssp from {}: {bad} of {} distances differ",
                    q.source,
                    dist.len()
                ))
            }
        }
        (q, Response::Error(why)) => Err(format!("query {q:?} failed: {why}")),
        (q, other) => Err(format!("query {q:?} got unexpected response {other:?}")),
    }
}

fn main() {
    let args = parse_args();
    let mut client = Client::connect(&args.connect)
        .unwrap_or_else(|e| fail(&format!("connecting {}: {e}", args.connect)));

    if args.random > 0 {
        let stats = client
            .stats()
            .unwrap_or_else(|e| fail(&format!("stats: {e}")));
        let n = stats.num_vertices as u32;
        if n == 0 {
            fail("server graph is empty");
        }
        let queries = random_batch(n, args.random, args.seed);
        let started = std::time::Instant::now();
        let responses = client
            .batch(queries.clone())
            .unwrap_or_else(|e| fail(&format!("batch: {e}")));
        let elapsed = started.elapsed();
        println!(
            "batch of {} served in {elapsed:.3?} ({:.1} queries/s)",
            queries.len(),
            queries.len() as f64 / elapsed.as_secs_f64().max(1e-9)
        );
        if args.verify {
            let graph = args
                .source
                .load()
                .unwrap_or_else(|e| fail(&format!("--verify needs the graph: {e}")));
            if graph.num_vertices() as u64 != stats.num_vertices
                || graph.num_edges() as u64 != stats.num_edges
            {
                fail("local graph differs from the server's resident graph");
            }
            // One Dijkstra per distinct source covers every query on it.
            let mut references: HashMap<u32, Vec<i64>> = HashMap::new();
            let mut mismatches = 0usize;
            for (query, response) in queries.iter().zip(&responses) {
                let dist = references
                    .entry(query.source)
                    .or_insert_with(|| dijkstra(&graph, query.source));
                if let Err(why) = check(query, response, dist) {
                    eprintln!("MISMATCH: {why}");
                    mismatches += 1;
                }
            }
            if mismatches > 0 {
                fail(&format!("{mismatches} mismatches against serial Dijkstra"));
            }
            println!(
                "verified {} responses against serial Dijkstra ({} distinct sources): all match",
                responses.len(),
                references.len()
            );
        }
        return;
    }

    match args.command.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["stats"] => {
            let s = client
                .stats()
                .unwrap_or_else(|e| fail(&format!("stats: {e}")));
            println!(
                "graph |V|={} |E|={} threads={}\nqueries={} rounds={} point={} full={} errors={}",
                s.num_vertices,
                s.num_edges,
                s.threads,
                s.queries,
                s.batch_rounds,
                s.point_queries,
                s.full_queries,
                s.errors
            );
        }
        ["ppsp", src, dst] => {
            let source = src.parse().unwrap_or_else(|_| fail("bad source vertex"));
            let target = dst.parse().unwrap_or_else(|_| fail("bad target vertex"));
            match client.query(Query::ppsp(source, target)) {
                Ok(Response::Distance {
                    distance,
                    relaxations,
                }) => match distance {
                    Some(d) => {
                        println!("distance {source} -> {target}: {d} ({relaxations} relaxations)")
                    }
                    None => println!("{target} unreachable from {source}"),
                },
                Ok(other) => fail(&format!("unexpected response {other:?}")),
                Err(e) => fail(&format!("ppsp: {e}")),
            }
        }
        ["sssp", src] => {
            let source: u32 = src.parse().unwrap_or_else(|_| fail("bad source vertex"));
            match client.query(Query::sssp(source)) {
                Ok(Response::DistVec(dist)) => {
                    let reached = dist.iter().filter(|&&d| d < UNREACHABLE).count();
                    println!("sssp from {source}: {reached}/{} reached", dist.len());
                    for (v, d) in dist.iter().enumerate().take(10) {
                        println!("  {v}: {}", fmt_distance(*d));
                    }
                    if dist.len() > 10 {
                        println!("  ... ({} more)", dist.len() - 10);
                    }
                }
                Ok(other) => fail(&format!("unexpected response {other:?}")),
                Err(e) => fail(&format!("sssp: {e}")),
            }
        }
        ["shutdown"] => {
            client
                .shutdown()
                .unwrap_or_else(|e| fail(&format!("shutdown: {e}")));
            println!("server acknowledged shutdown");
        }
        [] => fail("no command; see --help"),
        _ => fail(&format!(
            "unrecognized command {:?}; see --help",
            args.command
        )),
    }
}
