//! The `priograph-client` binary: issue queries against a running
//! `priograph-server`, optionally verifying every distance against a
//! locally computed serial Dijkstra reference (the CI smoke test's gate).
//!
//! ```text
//! priograph-client --connect 127.0.0.1:7411 stats [--watch SECS] [--json]
//! priograph-client --connect ADDR list
//! priograph-client --connect ADDR load roads-de /data/de.snap
//! priograph-client --connect ADDR --graph-name roads-de ppsp 0 99
//! priograph-client --connect ADDR sssp 0
//! priograph-client --connect ADDR unload roads-de
//! priograph-client --connect ADDR shutdown
//! priograph-client --connect ADDR --graph-name roads-de --random 120 \
//!                  --seed 7 --snapshot g.snap --verify
//! ```
//!
//! `--random N` sends one batch of N mixed PPSP/SSSP queries; with
//! `--verify` the client loads the same graph (via --snapshot/--graph/--gen)
//! and exits nonzero unless every served distance matches Dijkstra.
//! `--graph-name` targets a named resident graph (default: the catalog's
//! graph 0). `tune ALGO [BUDGET]` runs the server-side autotuner against
//! the target graph and installs the winning plan (visible in `list`'s
//! plans column).
//!
//! Every query path retries `Busy` refusals under a jittered exponential
//! backoff ([`Backoff`], up to 4 attempts), honoring the reply's
//! `retry_after_ms` hint as the floor of each sleep so a fleet of clients
//! does not re-converge on the server in lockstep (docs/PROTOCOL.md §6).
//! `--deadline MS` stamps a per-query deadline budget on every query sent;
//! queries the server cannot start within the budget come back as typed
//! `Timeout` errors instead of occupying the dispatcher.

use priograph_algorithms::serial::dijkstra;
use priograph_algorithms::UNREACHABLE;
use priograph_serve::client::{Backoff, Client};
use priograph_serve::protocol::{GraphId, GraphInfo, Query, QueryOp, Response, StatsV2, WireError};
use priograph_serve::server::fmt_distance;
use priograph_serve::spec::GraphSource;
use std::collections::HashMap;

struct Args {
    connect: String,
    source: GraphSource,
    graph_name: Option<String>,
    random: usize,
    seed: u64,
    verify: bool,
    deadline_ms: u32,
    watch_secs: u64,
    json: bool,
    command: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        connect: "127.0.0.1:7411".to_string(),
        source: GraphSource::default(),
        graph_name: None,
        random: 0,
        seed: 1,
        verify: false,
        deadline_ms: 0,
        watch_secs: 0,
        json: false,
        command: Vec::new(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut take = |what: &str| -> String {
            argv.next()
                .unwrap_or_else(|| fail(&format!("{what} expects a value")))
        };
        match flag.as_str() {
            "--connect" => args.connect = take("--connect"),
            "--snapshot" => args.source.snapshot = Some(take("--snapshot")),
            "--graph" => args.source.graph = Some(take("--graph")),
            "--gen" => args.source.gen_spec = Some(take("--gen")),
            "--graph-name" => args.graph_name = Some(take("--graph-name")),
            "--random" => {
                args.random = take("--random")
                    .parse()
                    .unwrap_or_else(|_| fail("--random expects a count"));
            }
            "--seed" => {
                args.seed = take("--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("--seed expects an integer"));
            }
            "--verify" => args.verify = true,
            "--watch" => {
                args.watch_secs = take("--watch")
                    .parse()
                    .unwrap_or_else(|_| fail("--watch expects seconds"));
            }
            "--json" => args.json = true,
            "--deadline" => {
                args.deadline_ms = take("--deadline")
                    .parse()
                    .unwrap_or_else(|_| fail("--deadline expects milliseconds (0 = none)"));
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --connect ADDR  [--graph-name NAME]  [--deadline MS]\n\
                     \x20      [--random N --seed S --verify]\n\
                     \x20      [--watch SECS] [--json]  (stats only)\n\
                     \x20      [--snapshot PATH | --graph PATH | --gen SPEC]\n\
                     commands: stats [--watch SECS] [--json] | list\n\
                     \x20         ppsp SRC DST | sssp SRC\n\
                     \x20         tune sssp|wbfs|kcore [BUDGET]\n\
                     \x20         load NAME PATH | unload NAME | shutdown"
                );
                std::process::exit(0);
            }
            other => args.command.push(other.to_string()),
        }
    }
    args
}

fn fail(why: &str) -> ! {
    eprintln!("priograph-client: {why}");
    std::process::exit(2);
}

/// How many times a query path attempts an operation before surfacing the
/// server's `Busy` refusal (1 initial try + 3 backed-off retries).
const RETRY_ATTEMPTS: u32 = 4;

/// Runs `op` under a jittered exponential backoff. `Busy` refusals retry
/// up to [`RETRY_ATTEMPTS`] times, each sleep taking the reply's
/// `retry_after_ms` hint as a floor; the jitter keeps concurrent clients
/// from re-converging in lockstep. Any other outcome — including typed
/// `Timeout`/`ShuttingDown` errors, which retrying cannot fix — surfaces
/// immediately.
fn retry_on_busy<T>(
    client: &mut Client,
    mut op: impl FnMut(&mut Client) -> Result<T, WireError>,
) -> Result<T, WireError> {
    let mut backoff = Backoff::new(10, 2_000, u64::from(std::process::id()) | 1);
    let mut attempt = 0u32;
    loop {
        match op(client) {
            Err(WireError::Busy {
                scope,
                pending,
                budget,
                retry_after_ms,
            }) if attempt + 1 < RETRY_ATTEMPTS => {
                let wait = backoff.delay(attempt, retry_after_ms);
                eprintln!(
                    "server busy ({scope}): {pending}/{budget} pending; \
                     retry {} of {} in {wait:?}",
                    attempt + 1,
                    RETRY_ATTEMPTS - 1,
                );
                std::thread::sleep(wait);
                attempt += 1;
            }
            other => return other,
        }
    }
}

/// [`Client::query`] with the in-band `Busy` reply lifted into
/// [`WireError::Busy`], so [`retry_on_busy`] sees it.
fn query_busy_as_error(client: &mut Client, query: Query) -> Result<Response, WireError> {
    match client.query(query)? {
        Response::Busy {
            scope,
            pending,
            budget,
            retry_after_ms,
        } => Err(WireError::Busy {
            scope,
            pending,
            budget,
            retry_after_ms,
        }),
        other => Ok(other),
    }
}

/// Graph id for the simple query commands: 0 (the constructors' default)
/// unless `--graph-name` forces a catalog round-trip to resolve the name.
fn target_graph_id(client: &mut Client, name: Option<&str>) -> GraphId {
    match name {
        Some(name) => {
            client
                .resolve_graph(name)
                .unwrap_or_else(|e| fail(&format!("resolving graph {name:?}: {e}")))
                .id
        }
        None => 0,
    }
}

/// Resolves `--graph-name` against the server's catalog (default: graph 0).
/// Used by `--random`, which needs the vertex count as well as the id.
fn target_graph(client: &mut Client, name: Option<&str>) -> GraphInfo {
    match name {
        Some(name) => client
            .resolve_graph(name)
            .unwrap_or_else(|e| fail(&format!("resolving graph {name:?}: {e}"))),
        None => {
            let graphs = client
                .list_graphs()
                .unwrap_or_else(|e| fail(&format!("listing graphs: {e}")));
            graphs
                .into_iter()
                .find(|g| g.id == 0)
                .unwrap_or_else(|| fail("the server has no graph 0; use --graph-name"))
        }
    }
}

/// Deterministic mixed query batch: mostly point queries, a sprinkling of
/// full SSSP — the serving mix the batching dispatcher is built for.
fn random_batch(n_vertices: u32, graph: GraphId, count: usize, seed: u64) -> Vec<Query> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = move || {
        // xorshift64* — deterministic and dependency-free.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    (0..count)
        .map(|i| {
            let source = (next() % n_vertices as u64) as u32;
            let q = if i % 5 == 4 {
                Query::sssp(source)
            } else {
                let target = (next() % n_vertices as u64) as u32;
                Query::ppsp(source, target)
            };
            q.on_graph(graph)
        })
        .collect()
}

/// Checks one served response against the reference distance vector.
fn check(query: &Query, response: &Response, dist: &[i64]) -> Result<(), String> {
    match (query, response) {
        (q, Response::Distance { distance, .. }) => {
            let expected =
                (dist[q.target as usize] < UNREACHABLE).then_some(dist[q.target as usize]);
            if *distance == expected {
                Ok(())
            } else {
                Err(format!(
                    "ppsp {}->{}: served {distance:?}, reference {expected:?}",
                    q.source, q.target
                ))
            }
        }
        (q, Response::DistVec(served)) => {
            if served == dist {
                Ok(())
            } else {
                let bad = served.iter().zip(dist).filter(|(a, b)| a != b).count();
                Err(format!(
                    "sssp from {}: {bad} of {} distances differ",
                    q.source,
                    dist.len()
                ))
            }
        }
        (q, Response::Error { kind, message }) => {
            Err(format!("query {q:?} failed ({kind}): {message}"))
        }
        (q, other) => Err(format!("query {q:?} got unexpected response {other:?}")),
    }
}

/// Renders a `StatsV2` frame as two aligned tables: named counters, then
/// every latency series with its percentile summary. Series names are
/// self-describing (`phase.executed`, `graph.0.sssp.total`,
/// `engine.frontier`), so per-graph rows group together lexically.
fn print_stats_v2(stats: &StatsV2) {
    let name_width = stats
        .counters
        .iter()
        .map(|(n, _)| n.len())
        .chain(stats.series.iter().map(|s| s.name.len()))
        .max()
        .unwrap_or(8)
        .max("series".len());
    println!("{:<name_width$} {:>14}", "counter", "value");
    for (name, value) in &stats.counters {
        println!("{name:<name_width$} {value:>14}");
    }
    if stats.series.is_empty() {
        return;
    }
    println!();
    println!(
        "{:<name_width$} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "series", "count", "p50us", "p90us", "p99us", "p999us", "maxus"
    );
    for s in &stats.series {
        println!(
            "{:<name_width$} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}",
            s.name, s.count, s.p50_us, s.p90_us, s.p99_us, s.p999_us, s.max_us
        );
    }
}

fn print_graph_table(graphs: &[GraphInfo]) {
    println!(
        "{:>4}  {:<24} {:>12} {:>12} {:>12}  {:<5} {:>10}  plans",
        "id", "name", "vertices", "edges", "resident", "mode", "queries"
    );
    for g in graphs {
        let plans = g
            .plans
            .iter()
            .map(|p| p.summary())
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:>4}  {:<24} {:>12} {:>12} {:>12}  {:<5} {:>10}  {}",
            g.id,
            g.name,
            g.vertices,
            g.edges,
            format!("{:.1}MiB", g.resident_bytes as f64 / (1 << 20) as f64),
            g.mode.as_str(),
            g.queries,
            plans
        );
    }
}

fn main() {
    let args = parse_args();
    let mut client = Client::connect(&args.connect)
        .unwrap_or_else(|e| fail(&format!("connecting {}: {e}", args.connect)));

    if args.random > 0 {
        let info = target_graph(&mut client, args.graph_name.as_deref());
        let n = info.vertices as u32;
        if n == 0 {
            fail("target graph is empty");
        }
        let queries: Vec<Query> = random_batch(n, info.id, args.random, args.seed)
            .into_iter()
            .map(|q| q.with_deadline(args.deadline_ms))
            .collect();
        let started = std::time::Instant::now();
        let responses = retry_on_busy(&mut client, |c| c.batch(queries.clone()))
            .unwrap_or_else(|e| fail(&format!("batch: {e}")));
        let elapsed = started.elapsed();
        println!(
            "batch of {} against graph {:?} ({}) served in {elapsed:.3?} ({:.1} queries/s)",
            queries.len(),
            info.name,
            info.mode.as_str(),
            queries.len() as f64 / elapsed.as_secs_f64().max(1e-9)
        );
        if args.verify {
            let graph = args
                .source
                .load()
                .unwrap_or_else(|e| fail(&format!("--verify needs the graph: {e}")));
            if graph.num_vertices() as u64 != info.vertices
                || graph.num_edges() as u64 != info.edges
            {
                fail("local graph differs from the server's resident graph");
            }
            // One Dijkstra per distinct source covers every query on it.
            let mut references: HashMap<u32, Vec<i64>> = HashMap::new();
            let mut mismatches = 0usize;
            for (query, response) in queries.iter().zip(&responses) {
                let dist = references
                    .entry(query.source)
                    .or_insert_with(|| dijkstra(&graph, query.source));
                if let Err(why) = check(query, response, dist) {
                    eprintln!("MISMATCH: {why}");
                    mismatches += 1;
                }
            }
            if mismatches > 0 {
                fail(&format!("{mismatches} mismatches against serial Dijkstra"));
            }
            println!(
                "verified {} responses against serial Dijkstra ({} distinct sources): all match",
                responses.len(),
                references.len()
            );
        }
        return;
    }

    match args.command.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["stats"] => loop {
            let s = client
                .stats_v2()
                .unwrap_or_else(|e| fail(&format!("stats: {e}")));
            if args.json {
                println!("{}", s.to_json());
            } else {
                print_stats_v2(&s);
            }
            if args.watch_secs == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_secs(args.watch_secs));
            if !args.json {
                println!("{}", "-".repeat(40));
            }
        },
        ["list"] => {
            let graphs = client
                .list_graphs()
                .unwrap_or_else(|e| fail(&format!("list: {e}")));
            print_graph_table(&graphs);
        }
        ["load", name, path] => {
            let info = client
                .load_graph(name, path)
                .unwrap_or_else(|e| fail(&format!("load: {e}")));
            println!(
                "loaded {:?} as graph {} ({} vertices, {} edges, {} mode)",
                info.name,
                info.id,
                info.vertices,
                info.edges,
                info.mode.as_str()
            );
        }
        ["unload", name] => {
            client
                .unload_graph(name)
                .unwrap_or_else(|e| fail(&format!("unload: {e}")));
            println!("unloaded {name:?}");
        }
        ["tune", algo] | ["tune", algo, _] => {
            let graph_id = target_graph_id(&mut client, args.graph_name.as_deref());
            let algo = QueryOp::parse(algo).unwrap_or_else(|e| fail(&e));
            let budget = match args.command.get(2) {
                Some(b) => b
                    .parse()
                    .unwrap_or_else(|_| fail("tune budget expects a trial count")),
                None => 40, // the paper's §6.2: 30–40 trials usually suffice
            };
            let outcome = retry_on_busy(&mut client, |c| c.tune_graph(graph_id, algo, budget))
                .unwrap_or_else(|e| fail(&format!("tune: {e}")));
            println!(
                "tuned graph {} for {}: installed {} after {} trials (best {}us)",
                outcome.graph,
                algo.as_str(),
                outcome.plan.summary(),
                outcome.trials_run,
                outcome.best_cost_micros
            );
        }
        ["ppsp", src, dst] => {
            let graph_id = target_graph_id(&mut client, args.graph_name.as_deref());
            let source = src.parse().unwrap_or_else(|_| fail("bad source vertex"));
            let target = dst.parse().unwrap_or_else(|_| fail("bad target vertex"));
            match retry_on_busy(&mut client, |c| {
                query_busy_as_error(
                    c,
                    Query::ppsp(source, target)
                        .on_graph(graph_id)
                        .with_deadline(args.deadline_ms),
                )
            }) {
                Ok(Response::Distance {
                    distance,
                    relaxations,
                }) => match distance {
                    Some(d) => {
                        println!("distance {source} -> {target}: {d} ({relaxations} relaxations)")
                    }
                    None => println!("{target} unreachable from {source}"),
                },
                Ok(other) => fail(&format!("unexpected response {other:?}")),
                Err(e) => fail(&format!("ppsp: {e}")),
            }
        }
        ["sssp", src] => {
            let graph_id = target_graph_id(&mut client, args.graph_name.as_deref());
            let source: u32 = src.parse().unwrap_or_else(|_| fail("bad source vertex"));
            match retry_on_busy(&mut client, |c| {
                query_busy_as_error(
                    c,
                    Query::sssp(source)
                        .on_graph(graph_id)
                        .with_deadline(args.deadline_ms),
                )
            }) {
                Ok(Response::DistVec(dist)) => {
                    let reached = dist.iter().filter(|&&d| d < UNREACHABLE).count();
                    println!("sssp from {source}: {reached}/{} reached", dist.len());
                    for (v, d) in dist.iter().enumerate().take(10) {
                        println!("  {v}: {}", fmt_distance(*d));
                    }
                    if dist.len() > 10 {
                        println!("  ... ({} more)", dist.len() - 10);
                    }
                }
                Ok(other) => fail(&format!("unexpected response {other:?}")),
                Err(e) => fail(&format!("sssp: {e}")),
            }
        }
        ["shutdown"] => {
            client
                .shutdown()
                .unwrap_or_else(|e| fail(&format!("shutdown: {e}")));
            println!("server acknowledged shutdown");
        }
        [] => fail("no command; see --help"),
        _ => fail(&format!(
            "unrecognized command {:?}; see --help",
            args.command
        )),
    }
}
